//! Property tests: the executable content of Theorem 1.
//!
//! For randomly generated C-logic databases and queries, every evaluation
//! strategy — direct resolution over complex objects, and the translated
//! first-order route under SLD, naive/semi-naive bottom-up, tabling and
//! magic sets — must produce identical answer sets. Also: parser ⇄
//! printer round-trips, and decomposition/recombination laws on random
//! molecules.

use clogic::core::decompose::{atoms, normalize, recombine};
use clogic::core::program::Program;
use clogic::core::{Atomic, DefiniteClause, LabelSpec, Term};
use clogic::session::{Session, Strategy};
use clogic_parser::{parse_program, parse_query};
use proptest::prelude::*;

// ---------- generators ----------

fn const_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["c1", "c2", "c3", "c4", "c5", "c6"]).prop_map(str::to_string)
}

fn type_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["t1", "t2", "t3", "object"]).prop_map(str::to_string)
}

fn label_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["l1", "l2", "l3"]).prop_map(str::to_string)
}

use proptest::strategy::Strategy as ProptestStrategy;

fn value() -> impl ProptestStrategy<Value = Term> {
    prop_oneof![
        const_name().prop_map(|c| Term::constant(c.as_str())),
        (0i64..4).prop_map(Term::int),
    ]
}

/// A ground molecule fact: `ty: id[label ⇒ value, …]`.
fn fact() -> impl ProptestStrategy<Value = DefiniteClause> {
    (
        type_name(),
        const_name(),
        prop::collection::vec((label_name(), value()), 0..3),
    )
        .prop_map(|(ty, id, pairs)| {
            let specs: Vec<LabelSpec> = pairs
                .into_iter()
                .map(|(l, v)| LabelSpec::one(l.as_str(), v))
                .collect();
            let head = if specs.is_empty() {
                Term::typed_constant(ty.as_str(), id.as_str())
            } else {
                Term::molecule(Term::typed_constant(ty.as_str(), id.as_str()), specs).unwrap()
            };
            DefiniteClause::fact(Atomic::term(head))
        })
}

/// A safe non-recursive rule: `tr: X[m ⇒ V] :- tsrc: X[lsrc ⇒ V].`
///
/// Head labels (`m1`, `m2`) are disjoint from body labels (`l1`–`l3`) so
/// no rule feeds its own body — the direct engine is top-down without
/// tabling and, like Prolog, diverges on label-level self-recursion
/// (bottom-up and tabled strategies handle it; see DESIGN.md).
fn simple_rule() -> impl ProptestStrategy<Value = DefiniteClause> {
    (
        prop::sample::select(vec!["r1", "r2"]),
        prop::sample::select(vec!["m1", "m2"]).prop_map(str::to_string),
        prop::sample::select(vec!["t1", "t2", "t3"]),
        label_name(),
    )
        .prop_map(|(rty, rlabel, sty, slabel)| {
            let head = Atomic::term(
                Term::molecule(
                    Term::typed_var(rty, "X"),
                    vec![LabelSpec::one(rlabel.as_str(), Term::var("V"))],
                )
                .unwrap(),
            );
            let body = vec![Atomic::term(
                Term::molecule(
                    Term::typed_var(sty, "X"),
                    vec![LabelSpec::one(slabel.as_str(), Term::var("V"))],
                )
                .unwrap(),
            )];
            DefiniteClause::rule(head, body)
        })
}

fn extensional_program() -> impl ProptestStrategy<Value = Program> {
    prop::collection::vec(fact(), 1..10).prop_map(|clauses| {
        let mut p = Program::new();
        for c in clauses {
            p.push(c);
        }
        p
    })
}

fn program_with_rules() -> impl ProptestStrategy<Value = Program> {
    (
        prop::collection::vec(fact(), 1..8),
        prop::collection::vec(simple_rule(), 1..3),
        prop::bool::ANY,
    )
        .prop_map(|(facts, rules, declare)| {
            let mut p = Program::new();
            if declare {
                p.declare_subtype("t1", "t2");
            }
            for c in facts.into_iter().chain(rules) {
                p.push(c);
            }
            p
        })
}

/// A query molecule: possibly-variable identity, 0..2 label pieces with
/// variable or constant values.
fn query_src() -> impl ProptestStrategy<Value = String> {
    (
        prop::sample::select(vec!["t1", "t2", "t3", "r1", "r2", "object"]).prop_map(str::to_string),
        prop_oneof![Just("X".to_string()), const_name()],
        prop::collection::vec(
            (
                prop::sample::select(vec!["l1", "l2", "l3", "m1", "m2"]).prop_map(str::to_string),
                prop_oneof![Just("V".to_string()), Just("W".to_string()), const_name()],
            ),
            0..3,
        ),
    )
        .prop_map(|(ty, id, pairs)| {
            let mut s = format!("{ty}: {id}");
            if !pairs.is_empty() {
                let specs: Vec<String> = pairs.iter().map(|(l, v)| format!("{l} => {v}")).collect();
                s.push_str(&format!("[{}]", specs.join(", ")));
            }
            s
        })
}

fn answers_for(p: &Program, query: &str, strategy: Strategy) -> Vec<String> {
    let mut s = Session::new();
    s.load_program(p.clone());
    let r = s.query(query, strategy).unwrap();
    assert!(r.complete, "{strategy:?} truncated on {query}");
    r.rendered()
}

/// Like [`answers_for`] but tolerating a `complete = false` report: the
/// direct engine's variant loop check conservatively marks runs that
/// pruned a repeated goal, even when (as in the fixed-shape negation
/// property, whose rule ranges over `object: X`) no answer can be lost.
/// The answer-set equality assertion still catches real omissions.
fn answers_for_lenient(p: &Program, query: &str, strategy: Strategy) -> Vec<String> {
    let mut s = Session::new();
    s.load_program(p.clone());
    s.query(query, strategy).unwrap().rendered()
}

// ---------- properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_strategies_agree_on_extensional_databases(
        p in extensional_program(),
        q in query_src(),
    ) {
        let reference = answers_for(&p, &q, Strategy::BottomUpSemiNaive);
        for strategy in Strategy::ALL {
            prop_assert_eq!(
                answers_for(&p, &q, strategy),
                reference.clone(),
                "strategy {:?} disagrees on query {} over\n{}",
                strategy, q, p
            );
        }
    }

    #[test]
    fn non_sld_strategies_agree_with_rules(
        p in program_with_rules(),
        q in query_src(),
    ) {
        let reference = answers_for(&p, &q, Strategy::BottomUpSemiNaive);
        for strategy in [
            Strategy::Direct,
            Strategy::BottomUpNaive,
            Strategy::Tabled,
            Strategy::Magic,
        ] {
            prop_assert_eq!(
                answers_for(&p, &q, strategy),
                reference.clone(),
                "strategy {:?} disagrees on query {} over\n{}",
                strategy, q, p
            );
        }
    }

    #[test]
    fn parser_printer_roundtrip(p in program_with_rules()) {
        let printed = p.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(reparsed, p);
    }

    #[test]
    fn query_printer_roundtrip(q in query_src()) {
        let parsed = parse_query(&q).unwrap();
        let printed = parsed.to_string();
        let reparsed = parse_query(&printed).unwrap();
        prop_assert_eq!(reparsed, parsed);
    }

    #[test]
    fn decomposition_recombination_roundtrip(f in fact()) {
        let Atomic::Term(t) = &f.head else { unreachable!() };
        let pieces = atoms(t);
        // recombining all pieces (skipping the bare head when specs exist)
        // gives the normal form of the original
        let merged = recombine(&pieces).unwrap();
        prop_assert_eq!(merged, normalize(t));
    }

    #[test]
    fn normalization_is_idempotent_and_order_insensitive(
        ty in type_name(),
        id in const_name(),
        mut pairs in prop::collection::vec((label_name(), value()), 1..4),
    ) {
        let mk = |pairs: &[(String, Term)]| {
            Term::molecule(
                Term::typed_constant(ty.as_str(), id.as_str()),
                pairs.iter().map(|(l, v)| LabelSpec::one(l.as_str(), v.clone())).collect(),
            )
            .unwrap()
        };
        let original = mk(&pairs);
        pairs.reverse();
        let reversed = mk(&pairs);
        prop_assert_eq!(normalize(&original), normalize(&reversed));
        let n = normalize(&original);
        prop_assert_eq!(normalize(&n), n.clone());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Negation as failure: the strategies supporting it agree on a
    /// stratified program with one negated rule over random facts.
    #[test]
    fn negation_strategies_agree(
        p in extensional_program(),
        neg_label in label_name(),
        neg_value in const_name(),
    ) {
        let mut program = p.clone();
        // flag: X :- t1: X, \+ X[neg_label => neg_value].
        // Ranging over the extensional type t1 rather than the literal
        // active-domain `object: X` generator, which makes depth-first
        // SLD recurse through the rule's own object axiom.
        let rule = clogic::core::DefiniteClause::rule_with_negation(
            Atomic::term(Term::typed_var("flag", "X")),
            vec![Atomic::term(Term::typed_var("t1", "X"))],
            vec![Atomic::term(
                Term::molecule(
                    Term::var("X"),
                    vec![LabelSpec::one(neg_label.as_str(), Term::constant(neg_value.as_str()))],
                )
                .unwrap(),
            )],
        );
        program.push(rule);
        let reference = answers_for(&program, "flag: X", Strategy::BottomUpSemiNaive);
        for strategy in [Strategy::Direct, Strategy::Sld, Strategy::BottomUpNaive] {
            prop_assert_eq!(
                answers_for_lenient(&program, "flag: X", strategy),
                reference.clone(),
                "strategy {:?} disagrees on
{}",
                strategy,
                program
            );
        }
    }
}

#[test]
fn regression_empty_query_answers() {
    // a query about a type that exists but with an unmatched label
    let p = parse_program("t1: c1[l1 => c2].").unwrap();
    for strategy in Strategy::ALL {
        assert!(
            answers_for(&p, "t1: c1[l2 => V]", strategy).is_empty(),
            "{strategy:?}"
        );
    }
}

#[test]
fn regression_subtype_flows_into_queries() {
    let p = parse_program("t1 < t2.\nt1: c1[l1 => c2].").unwrap();
    for strategy in Strategy::ALL {
        assert_eq!(
            answers_for(&p, "t2: X[l1 => c2]", strategy),
            vec!["X = c1"],
            "{strategy:?}"
        );
    }
}
