//! Theorem 1, exercised end-to-end: the transformation preserves
//! satisfaction in both directions, the generalized-clause machinery
//! matches the paper's §4 walk-through, and the built-in handling is the
//! only (documented) deviation.

use clogic::core::fol::GeneralizedClause;
use clogic::core::structure::{Assignment, Structure};
use clogic::core::transform::{Transformer, DEFAULT_BUILTINS};
use clogic::core::{object_type, Atomic, Program};
use clogic_parser::{parse_program, parse_query, parse_term};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

fn least_model(p: &Program) -> folog::Evaluation {
    let fo = Transformer::new().program(p);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    evaluate(&compiled, FixpointOptions::default()).unwrap()
}

#[test]
fn translation_direction_1_structure_to_fo() {
    // M ⊨ α iff M* ⊨ α*: build a structure by hand, check a batch of
    // atomic formulas against both readings.
    let mut st = Structure::new();
    let john = st.add_named_constant("john");
    let bob = st.add_named_constant("bob");
    st.add_type_member(object_type(), john);
    st.add_type_member(object_type(), bob);
    st.add_type_member("person", john);
    st.add_label_pair("children", john, bob);

    let _ = (john, bob);
    // The FO reading of the same structure is the set of atoms
    // { object(john), object(bob), person(john), children(john, bob) };
    // M ⊨ α must coincide with "every conjunct of α* is in that set".
    let fo_atoms: std::collections::BTreeSet<String> = [
        "object(john)",
        "object(bob)",
        "person(john)",
        "children(john, bob)",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let tr = Transformer::new();
    let cases = [
        ("person: john[children => bob]", true),
        ("person: bob", false),
        ("john[children => bob]", true),
        ("john[children => john]", false),
        ("object: bob", true),
    ];
    for (text, expected) in cases {
        let t = parse_term(text).unwrap();
        let a = Atomic::term(t);
        assert_eq!(
            st.satisfies_atomic(&a, &Assignment::new()),
            expected,
            "{text}"
        );
        let all_hold = tr
            .atomic(&a)
            .iter()
            .all(|c| fo_atoms.contains(&c.to_string()));
        assert_eq!(all_hold, expected, "FO reading of {text}");
    }
}

#[test]
fn translation_direction_2_least_model_to_structure() {
    // Any FO model of the translation satisfying the type axioms
    // corresponds to a structure of L; the least model is such a model.
    let p = parse_program(
        r#"
        student < person.
        student: ann[score => 90].
        honors: X :- student: X[score => S], S >= 85.
        "#,
    )
    .unwrap();
    let ev = least_model(&p);
    let mut sig = p.signature();
    sig.types.insert(object_type());
    let st = Structure::from_ground_atoms(&ev.ground_atoms(), &sig);
    // the corresponding structure respects the hierarchy…
    assert!(st.respects(&p.hierarchy()));
    // …and satisfies the program
    assert!(st.satisfies_program(&p));
    // spot checks
    let s = Assignment::new();
    assert!(st.satisfies_term(&parse_term("honors: ann").unwrap(), &s));
    assert!(st.satisfies_term(&parse_term("person: ann").unwrap(), &s));
}

#[test]
fn generalized_clause_split_count_matches_head_conjuncts() {
    let p = parse_program("propernp: X[pers => 3, num => singular, def => definite] :- name: X.")
        .unwrap();
    let tr = Transformer::new();
    let gc: GeneralizedClause = tr.clause(&p.clauses[0]);
    assert_eq!(gc.heads.len(), 7);
    assert_eq!(gc.split().len(), 7);
    // every split clause shares the body
    for c in gc.split() {
        assert_eq!(c.body, gc.body);
    }
}

#[test]
fn multiple_head_occurrences_are_independent() {
    // §4: "multiple occurrences of the same variable in the head are
    // independent" after splitting — each split clause is universally
    // quantified on its own.
    let p = parse_program("pair: X[a => X] :- seed: X.\nseed: s1.\nseed: s2.").unwrap();
    let ev = least_model(&p);
    // derived: pair(s1), a(s1,s1), pair(s2), a(s2,s2) — plus seeds/objects
    let q = parse_query("pair: X[a => X]").unwrap();
    let goals = Transformer::new().query(&q);
    assert_eq!(ev.query(&goals).len(), 2);
    // crucially NOT a(s1, s2): the head occurrences were linked in the
    // molecule, so the tuples stay consistent per derivation
    let cross = parse_query("pair: s1[a => s2]").unwrap();
    assert!(ev.query(&Transformer::new().query(&cross)).is_empty());
}

#[test]
fn builtin_positions_are_untyped_by_default_and_typed_when_pure() {
    let p = parse_program("n: 1.\nsucc: Y :- n: X, Y is X + 1.").unwrap();
    let tr = Transformer::new();
    let gc = tr.clause(&p.clauses[1]);
    let body: Vec<String> = gc.body.iter().map(|a| a.to_string()).collect();
    assert_eq!(body, vec!["n(X)", "is(Y, +(X, 1))"]);
    // the pure transformer (no built-ins) types everything, as the
    // literal Theorem 1 map would
    let pure = Transformer::pure();
    let gc2 = pure.clause(&p.clauses[1]);
    assert!(gc2.body.iter().any(|a| a.to_string() == "object(+(X, 1))"));
    // DEFAULT_BUILTINS is the documented deviation list
    assert!(DEFAULT_BUILTINS.contains(&"is"));
}

#[test]
fn type_axioms_only_for_occurring_types() {
    // §4: axioms are added only for the finitely many type symbols in the
    // program, not "an infinite number of first-order clauses".
    let p = parse_program("alpha: a.\nbeta: b.\n").unwrap();
    let tr = Transformer::new();
    let axioms = tr.type_axioms(&p);
    let shown: Vec<String> = axioms.iter().map(|c| c.to_string()).collect();
    assert_eq!(shown.len(), 2);
    assert!(shown.contains(&"object(X) :- alpha(X).".to_string()));
    assert!(shown.contains(&"object(X) :- beta(X).".to_string()));
}

#[test]
fn object_is_the_active_domain() {
    // §4: "object is essentially the active domain which includes every
    // individual object in the database".
    let p = parse_program("person: john[likes => mary].\nitem: np(a, b).").unwrap();
    let ev = least_model(&p);
    let q = parse_query("object: X").unwrap();
    let answers = ev.query(&Transformer::new().query(&q));
    let xs: Vec<String> = answers
        .iter()
        .map(|a| a.values().next().unwrap().to_string())
        .collect();
    assert_eq!(xs.len(), 5); // john, mary, np(a,b), a, b
    assert!(xs.contains(&"np(a, b)".to_string()));
    assert!(xs.contains(&"mary".to_string()));
}
