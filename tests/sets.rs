//! X6 — §5: set manipulation through multi-valued labels.

use clogic::session::{Session, Strategy};

#[test]
fn subset_query_enumerates_pairs() {
    // person: john[children => {bob, bill, joe}].
    // :- person: john[children => {X, Y}].
    // X and Y each range over all three children: 9 bindings.
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load("person: john[children => {bob, bill, joe}].")
            .unwrap();
        let r = s
            .query("person: john[children => {X, Y}]", strategy)
            .unwrap();
        assert_eq!(r.rows.len(), 9, "{strategy:?}");
        // every answer binds both X and Y to children
        for row in &r.rows {
            for v in ["X", "Y"] {
                let b = row.get(v).unwrap();
                assert!(["bob", "bill", "joe"].contains(&b.as_str()), "{b}");
            }
        }
    }
}

#[test]
fn collection_fact_equals_repeated_single_facts() {
    // §5: the collection fact and its decomposition are equivalent.
    let collected = "person: john[children => {bob, bill, joe}].";
    let repeated = "person: john[children => bob, children => bill, children => joe].";
    let split = "person: john[children => bob].\n\
                 person: john[children => bill].\n\
                 person: john[children => joe].";
    for strategy in Strategy::ALL {
        let mut answers = Vec::new();
        for src in [collected, repeated, split] {
            let mut s = Session::new();
            s.load(src).unwrap();
            answers.push(
                s.query("person: john[children => X]", strategy)
                    .unwrap()
                    .rows,
            );
        }
        assert_eq!(answers[0], answers[1], "{strategy:?}");
        assert_eq!(answers[1], answers[2], "{strategy:?}");
        assert_eq!(answers[0].len(), 3, "{strategy:?}");
    }
}

#[test]
fn set_union_through_separate_rules() {
    // §5: "definitions in separate rules support set union".
    let src = r#"
        employee: ann[project => alpha].
        contractor: ann[project => beta].
        worker: X[assignment => P] :- employee: X[project => P].
        worker: X[assignment => P] :- contractor: X[project => P].
    "#;
    // Sld excluded: the translated program recurses through the type
    // axioms for the intensional type `worker` (see paper_examples.rs).
    for strategy in [
        Strategy::Direct,
        Strategy::BottomUpNaive,
        Strategy::BottomUpSemiNaive,
        Strategy::Tabled,
        Strategy::Magic,
    ] {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s.query("worker: ann[assignment => P]", strategy).unwrap();
        let ps: Vec<String> = r.rows.iter().map(|row| row.get("P").unwrap()).collect();
        assert_eq!(ps, vec!["alpha", "beta"], "{strategy:?}");
        // subset query over the union
        let both = s
            .query("worker: ann[assignment => {alpha, beta}]", strategy)
            .unwrap();
        assert!(both.holds(), "{strategy:?}");
    }
}

#[test]
fn membership_via_passing_the_identity_around() {
    // §5: "by passing john around, the set associated with john by
    // children can be indirectly accessed through object john".
    let src = r#"
        person: john[children => {bob, bill}].
        person: sue[children => {bill, joe}].
        common_child(P1, P2, C) :-
            person: P1[children => C],
            person: P2[children => C],
            P1 \= P2.
    "#;
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s.query("common_child(john, sue, C)", strategy).unwrap();
        assert_eq!(r.rows.len(), 1, "{strategy:?}");
        assert_eq!(r.rows[0].get("C").unwrap(), "bill");
    }
}

#[test]
fn intersection_via_unification() {
    // §5: "unification supports certain aspects of set intersection" —
    // asking for a value under two labels at once.
    let src = "team: t[members => {ann, bob}, leads => {bob, carol}].";
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s
            .query("team: t[members => X, leads => X]", strategy)
            .unwrap();
        assert_eq!(r.rows.len(), 1, "{strategy:?}");
        assert_eq!(r.rows[0].get("X").unwrap(), "bob");
    }
}

#[test]
fn multi_valued_labels_never_clash() {
    // Unlike O-logic, multiply-defined labels are consistent: john can
    // have two names and the program still has a model.
    let src = "john[name => \"John\"].\njohn[name => \"John Smith\"].";
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s.query("john[name => N]", strategy).unwrap();
        assert_eq!(r.rows.len(), 2, "{strategy:?}");
        // and the conjunction of both names holds of the same object
        assert!(s
            .query("john[name => \"John\", name => \"John Smith\"]", strategy)
            .unwrap()
            .holds());
        // but a never-asserted name does not follow (no top element is
        // introduced; contrast the lattice-based proposals in §2.2)
        assert!(!s
            .query("john[name => \"David\"]", strategy)
            .unwrap()
            .holds());
    }
}
