//! The negation extension (§4: "Negation can also be added although we
//! do not include it in this paper"), end to end: negation as failure in
//! rule bodies and queries, stratified bottom-up semantics, agreement
//! across the strategies that support it, and the documented rejections.

use clogic::session::{Session, SessionError, Strategy};

/// The strategies that support negation.
const NEG_STRATEGIES: [Strategy; 4] = [
    Strategy::Direct,
    Strategy::Sld,
    Strategy::BottomUpNaive,
    Strategy::BottomUpSemiNaive,
];

const ORPHANS: &str = r#"
    person: john[children => {bob, bill}].
    person: sue[children => bob].
    person: bob.
    person: bill.
    person: ada.
    childless: X :- person: X, \+ parent_of(X).
    parent_of(X) :- person: X[children => C].
"#;

#[test]
fn negation_in_rule_bodies() {
    for strategy in NEG_STRATEGIES {
        let mut s = Session::new();
        s.load(ORPHANS).unwrap();
        let r = s.query("childless: X", strategy).unwrap();
        let xs: Vec<String> = r.rows.iter().map(|row| row.get("X").unwrap()).collect();
        assert_eq!(xs, vec!["ada", "bill", "bob"], "{strategy:?}");
    }
}

#[test]
fn negation_in_queries_over_predicates() {
    for strategy in NEG_STRATEGIES {
        let mut s = Session::new();
        s.load(ORPHANS).unwrap();
        let r = s.query("person: X, \\+ parent_of(X)", strategy).unwrap();
        assert_eq!(r.rows.len(), 3, "{strategy:?}");
    }
}

#[test]
fn negated_molecule_goals_use_aux_translation() {
    // \+ of a molecule has a conjunction-shaped translation; the FO
    // strategies go through an auxiliary predicate.
    let src = "person: john[age => 28].\nperson: bob.";
    for strategy in NEG_STRATEGIES {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s
            .query("person: X, \\+ person: X[age => 28]", strategy)
            .unwrap();
        assert_eq!(r.rows.len(), 1, "{strategy:?}");
        assert_eq!(r.rows[0].get("X").unwrap(), "bob", "{strategy:?}");
    }
}

#[test]
fn negation_over_derived_types() {
    // The negated relation is itself rule-derived (a second stratum).
    let src = r#"
        item: a[price => 5].
        item: b[price => 50].
        item: c[price => 20].
        pricey: X :- item: X[price => P], P >= 30.
        affordable: X :- item: X, \+ pricey: X.
    "#;
    for strategy in NEG_STRATEGIES {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s.query("affordable: X", strategy).unwrap();
        let xs: Vec<String> = r.rows.iter().map(|row| row.get("X").unwrap()).collect();
        assert_eq!(xs, vec!["a", "c"], "{strategy:?}");
    }
}

#[test]
fn negated_builtins_in_queries() {
    let src = "n: 1.\nn: 5.\nn: 9.";
    for strategy in NEG_STRATEGIES {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s.query("n: X, \\+ X >= 5", strategy).unwrap();
        assert_eq!(r.rows.len(), 1, "{strategy:?}");
        assert_eq!(r.rows[0].get("X").unwrap(), "1");
    }
}

#[test]
fn unstratifiable_program_rejected_by_bottom_up() {
    let src = "seed: s.\np: X :- seed: X, \\+ q: X.\nq: X :- seed: X, \\+ p: X.";
    let mut s = Session::new();
    s.load(src).unwrap();
    let err = s.query("p: X", Strategy::BottomUpSemiNaive).unwrap_err();
    assert!(matches!(
        err,
        SessionError::Eval(folog::bottom_up::EvalError::Unstratifiable(_))
    ));
}

#[test]
fn tabled_and_magic_reject_negation() {
    let mut s = Session::new();
    s.load(ORPHANS).unwrap();
    for strategy in [Strategy::Tabled, Strategy::Magic] {
        let err = s
            .query("person: X, \\+ parent_of(X)", strategy)
            .unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("negation"), "{strategy:?}: {shown}");
    }
}

#[test]
fn floundering_query_is_an_error() {
    let mut s = Session::new();
    s.load("q: z.").unwrap();
    for strategy in [Strategy::Direct, Strategy::Sld, Strategy::BottomUpSemiNaive] {
        let err = s.query("\\+ q: Y", strategy).unwrap_err();
        let shown = err.to_string();
        assert!(
            shown.contains("ground") || shown.contains("flounder"),
            "{strategy:?}: {shown}"
        );
    }
}

#[test]
fn closed_world_reading() {
    // NAF is the closed-world assumption: absence is falsity, and adding
    // the fact flips the answer (nonmonotonicity).
    let mut before = Session::new();
    before
        .load("bird: tweety.\nflies: X :- bird: X, \\+ penguin: X.")
        .unwrap();
    let mut after = Session::new();
    after
        .load("bird: tweety.\npenguin: tweety.\nflies: X :- bird: X, \\+ penguin: X.")
        .unwrap();
    for strategy in NEG_STRATEGIES {
        assert!(
            before.query("flies: tweety", strategy).unwrap().holds(),
            "{strategy:?}"
        );
        assert!(
            !after.query("flies: tweety", strategy).unwrap().holds(),
            "{strategy:?}"
        );
    }
}

#[test]
fn negation_parses_and_prints() {
    use clogic_parser::{parse_program, parse_query};
    let p = parse_program("p: X :- q: X, \\+ r: X[l => 1].").unwrap();
    assert_eq!(p.clauses[0].neg_body.len(), 1);
    let printed = p.to_string();
    assert!(printed.contains("\\+ r: X[l => 1]"), "{printed}");
    let reparsed = parse_program(&printed).unwrap();
    assert_eq!(reparsed, p);
    let q = parse_query("q: X, \\+ r: X").unwrap();
    assert_eq!(q.neg_goals.len(), 1);
    assert!(q.is_safe());
    let unsafe_q = parse_query("\\+ r: X").unwrap();
    assert!(!unsafe_q.is_safe());
}
