//! X5 — §4 redundancy elimination over the whole pipeline: the paper's
//! optimized `common_np` clause, program-size effects, and semantic
//! preservation.

use clogic::core::optimize::{typing_atom_count, Optimizer};
use clogic::core::transform::Transformer;
use clogic_parser::parse_program;

const GRAMMAR: &str = r#"
    name: john.
    name: bob.
    determiner: the[num => {singular, plural}, def => definite].
    determiner: a[num => singular, def => indef].
    determiner: all[num => plural, def => indef].
    noun: student[num => singular].
    noun: students[num => plural].
    propernp: X[pers => 3, num => singular, def => definite] :- name: X.
    commonnp: np(Det, Noun)[pers => 3, num => N, def => D] :-
        determiner: Det[num => N, def => D],
        noun: Noun[num => N].
    propernp < noun_phrase.
    commonnp < noun_phrase.
"#;

#[test]
fn paper_optimized_common_np_clause() {
    let p = parse_program(GRAMMAR).unwrap();
    let tr = Transformer::new();
    let opt = Optimizer::new(&p);
    // clause index 8 is the commonnp rule
    let gc = tr.clause(&p.clauses[8]);
    let optimized = opt.optimize_clause(&gc).unwrap();
    assert_eq!(
        optimized.to_string(),
        "commonnp(np(Det, Noun)), object(3), pers(np(Det, Noun), 3), \
         num(np(Det, Noun), N), def(np(Det, Noun), D) :- \
         determiner(Det), object(N), num(Det, N), object(D), def(Det, D), \
         noun(Noun), num(Noun, N)."
    );
}

#[test]
fn rule2_drops_head_typing_guaranteed_by_body() {
    let p = parse_program(GRAMMAR).unwrap();
    let tr = Transformer::new();
    let opt = Optimizer::new(&p);
    // propernp rule: head object(X)? The translation types X via name(X)
    // in the body, so no object(X) survives in the head.
    let gc = tr.clause(&p.clauses[7]);
    let optimized = opt.optimize_clause(&gc).unwrap();
    let heads: Vec<String> = optimized.heads.iter().map(|a| a.to_string()).collect();
    assert!(!heads.iter().any(|h| h == "object(X)"), "{heads:?}");
    assert!(heads.contains(&"propernp(X)".to_string()));
    // object(3) is kept — nothing else types the constant 3 (paper).
    assert!(heads.contains(&"object(3)".to_string()));
}

#[test]
fn optimization_reduces_program_and_typing_atoms() {
    let p = parse_program(GRAMMAR).unwrap();
    let tr = Transformer::new();
    let opt = Optimizer::new(&p);
    let plain = tr.program(&p);
    let optimized = opt.optimized_program(&tr, &p);
    assert!(optimized.len() < plain.len());
    assert!(optimized.atom_count() < plain.atom_count());
    let types = p.signature().types;
    assert!(typing_atom_count(&optimized, &types) < typing_atom_count(&plain, &types));
}

#[test]
fn optimization_preserves_the_least_model_answers() {
    use folog::builtins::builtin_symbols;
    use folog::{evaluate, CompiledProgram, FixpointOptions};
    let p = parse_program(GRAMMAR).unwrap();
    let tr = Transformer::new();
    let opt = Optimizer::new(&p);
    let plain = CompiledProgram::compile(&tr.program(&p), builtin_symbols());
    let optimized = CompiledProgram::compile(&opt.optimized_program(&tr, &p), builtin_symbols());
    let ev_plain = evaluate(&plain, FixpointOptions::default()).unwrap();
    let ev_opt = evaluate(&optimized, FixpointOptions::default()).unwrap();
    // The optimized program derives the same least model (the §4 rules
    // are equivalence-preserving relative to the type axioms).
    assert_eq!(ev_plain.ground_atoms(), ev_opt.ground_atoms());
    // …while doing strictly less matching work.
    assert!(ev_opt.stats.match_attempts < ev_plain.stats.match_attempts);
}

#[test]
fn subtype_rule_clause_subsumed_by_axiom_is_removed() {
    let src = "propernp < noun_phrase.\n\
               propernp: john.\n\
               noun_phrase: X :- propernp: X.";
    let p = parse_program(src).unwrap();
    let tr = Transformer::new();
    let opt = Optimizer::new(&p);
    let optimized = opt.optimized_program(&tr, &p);
    // the explicit rule duplicates the type axiom and is dropped: exactly
    // one clause with head noun_phrase remains (the axiom)
    let noun_phrase_rules: Vec<String> = optimized
        .clauses
        .iter()
        .filter(|c| c.head.pred == clogic::core::sym("noun_phrase"))
        .map(|c| c.to_string())
        .collect();
    assert_eq!(noun_phrase_rules, vec!["noun_phrase(X) :- propernp(X)."]);
}

#[test]
fn dead_type_axioms_are_pruned() {
    // `ghost` appears only in a subtype declaration; nothing derives it,
    // so its axioms die.
    let src = "ghost < person.\nperson: ann.";
    let p = parse_program(src).unwrap();
    let tr = Transformer::new();
    let opt = Optimizer::new(&p);
    let optimized = opt.optimized_program(&tr, &p);
    let shown = optimized.to_string();
    assert!(!shown.contains("ghost"), "{shown}");
    assert!(shown.contains("person(ann)."));
}
