//! The epoch-versioned incremental pipeline: cumulative loading must be
//! indistinguishable from loading everything at once — across all six
//! strategies, with and without entity-creating (skolemized) rules — and
//! the caches that make re-querying cheap must never change answers.

use clogic::core::program::Program;
use clogic::core::{Atomic, DefiniteClause, LabelSpec, Term};
use clogic::session::{Session, SessionOptions, Strategy};
use proptest::prelude::*;
use proptest::strategy::Strategy as ProptestStrategy;

// ---------- generators ----------

fn const_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["c1", "c2", "c3", "c4", "c5"]).prop_map(str::to_string)
}

fn type_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["t1", "t2", "t3"]).prop_map(str::to_string)
}

fn label_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["l1", "l2"]).prop_map(str::to_string)
}

/// A ground molecule fact: `ty: id[label ⇒ value, …]`.
fn fact() -> impl ProptestStrategy<Value = DefiniteClause> {
    (
        type_name(),
        const_name(),
        prop::collection::vec((label_name(), const_name()), 0..3),
    )
        .prop_map(|(ty, id, pairs)| {
            let specs: Vec<LabelSpec> = pairs
                .into_iter()
                .map(|(l, v)| LabelSpec::one(l.as_str(), Term::constant(v.as_str())))
                .collect();
            let head = if specs.is_empty() {
                Term::typed_constant(ty.as_str(), id.as_str())
            } else {
                Term::molecule(Term::typed_constant(ty.as_str(), id.as_str()), specs).unwrap()
            };
            DefiniteClause::fact(Atomic::term(head))
        })
}

/// A small pool of rules, including an entity-creating one whose
/// head-only variable `C` is auto-skolemized on load — the identity
/// `skN(…)` must come out the same whether the program is loaded in one
/// piece or two.
fn rule(entity_creating: bool) -> impl ProptestStrategy<Value = DefiniteClause> {
    let plain = vec![
        // p(X) :- t1: X[l1 => Y].
        DefiniteClause::rule(
            Atomic::pred("p", vec![Term::var("X")]),
            vec![Atomic::term(
                Term::molecule(
                    Term::typed_var("t1", "X"),
                    vec![LabelSpec::one("l1", Term::var("Y"))],
                )
                .unwrap(),
            )],
        ),
        // t3: X :- t2: X.
        DefiniteClause::rule(
            Atomic::term(Term::typed_var("t3", "X")),
            vec![Atomic::term(Term::typed_var("t2", "X"))],
        ),
    ];
    let creating = vec![
        // t3: C[l2 => X] :- t1: X.  (C is head-only: skolemized)
        DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("t3", "C"),
                    vec![LabelSpec::one("l2", Term::var("X"))],
                )
                .unwrap(),
            ),
            vec![Atomic::term(Term::typed_var("t1", "X"))],
        ),
        // t3: D[l1 => X] :- t2: X[l2 => Y].  (non-recursive: t3 occurs
        // in no body, so SLD terminates and the guard stays quiet)
        DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("t3", "D"),
                    vec![LabelSpec::one("l1", Term::var("X"))],
                )
                .unwrap(),
            ),
            vec![Atomic::term(
                Term::molecule(
                    Term::typed_var("t2", "X"),
                    vec![LabelSpec::one("l2", Term::var("Y"))],
                )
                .unwrap(),
            )],
        ),
    ];
    let pool = if entity_creating {
        let mut all = plain;
        all.extend(creating);
        all
    } else {
        plain
    };
    prop::sample::select(pool)
}

fn program(entity_creating: bool) -> impl ProptestStrategy<Value = Program> {
    (
        prop::collection::vec(fact(), 1..6),
        prop::collection::vec(rule(entity_creating), 0..3),
        prop::bool::ANY,
    )
        .prop_map(|(facts, rules, subtype)| {
            let mut p = Program::new();
            if subtype {
                p.declare_subtype("t1", "t2");
            }
            for f in facts {
                p.push(f);
            }
            for r in rules {
                p.push(r);
            }
            p
        })
}

const QUERIES: &[&str] = &["t2: X", "t3: O[l2 => V]", "p(X)", "t1: X[l1 => Y]"];

/// `load(a); load(b)` must answer exactly like `load(a + b)`, for every
/// strategy and query — the cumulative-loading soundness property of the
/// incremental pipeline (delta translation, resumed fixpoints, merged
/// object stores, threaded skolem numbering all sit behind this).
fn assert_split_load_equivalent(a: Program, b: Program) {
    let mut combined_program = a.clone();
    combined_program
        .subtype_decls
        .extend(b.subtype_decls.clone());
    combined_program.clauses.extend(b.clauses.clone());

    let mut split = Session::new();
    split.load_program(a);
    // Saturate bottom-up models at the intermediate epoch so the second
    // load exercises resumption rather than a cold start.
    for q in QUERIES {
        let _ = split.query(q, Strategy::BottomUpSemiNaive);
        let _ = split.query(q, Strategy::BottomUpNaive);
    }
    split.load_program(b);

    let mut combined = Session::new();
    combined.load_program(combined_program);

    for strategy in Strategy::ALL {
        for q in QUERIES {
            let s = split.query(q, strategy).unwrap();
            let c = combined.query(q, strategy).unwrap();
            assert_eq!(
                s.rendered(),
                c.rendered(),
                "{strategy:?} on {q}: split load must equal combined load"
            );
            assert!(s.complete, "{strategy:?} on {q} must saturate");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn split_load_equals_combined_load(a in program(false), b in program(false)) {
        assert_split_load_equivalent(a, b);
    }

    #[test]
    fn split_load_equals_combined_load_with_entity_creating_rules(
        a in program(true),
        b in program(true),
    ) {
        assert_split_load_equivalent(a, b);
    }
}

// ---------- delta translation ----------

/// The translated program as a sorted clause multiset: split and
/// combined loads interleave type axioms differently (each delta emits
/// the axioms *it* introduced right after its own clauses), but the set
/// of clauses must coincide.
fn clause_set(s: &mut Session) -> Vec<String> {
    let mut out: Vec<String> = s
        .translated()
        .clauses
        .iter()
        .map(|c| c.to_string())
        .collect();
    out.sort();
    out
}

/// Without the optimizer, extending the cached translation with a delta
/// must produce exactly the clauses a from-scratch translation of the
/// combined text produces.
#[test]
fn delta_translation_equals_full_translation_unoptimized() {
    let first = "t1: c1[l1 => c2].\np(X) :- t1: X[l1 => Y].";
    let second = "t2: c3.\nt1 < t2.\nq(X) :- t2: X, p(X).";
    let mut split = Session::with_options(SessionOptions {
        optimize_translation: false,
        ..SessionOptions::default()
    });
    split.load(first).unwrap();
    let _ = split.translated(); // force the epoch-1 artifact
    split.load(second).unwrap();

    let mut combined = Session::with_options(SessionOptions {
        optimize_translation: false,
        ..SessionOptions::default()
    });
    combined.load(&format!("{first}\n{second}")).unwrap();

    assert_eq!(clause_set(&mut split), clause_set(&mut combined));
}

/// With the §4 optimizer on, a delta that adds a subtype declaration
/// falls back to full re-translation (the hierarchy feeds rules 1–2), so
/// the result again matches the combined translation exactly.
#[test]
fn delta_translation_with_subtype_delta_falls_back_to_full() {
    let first = "t1: c1[l1 => c2].\np(X) :- t1: X[l1 => Y].";
    let second = "t1 < t2.\nt2: c3.";
    let mut split = Session::new();
    split.load(first).unwrap();
    let _ = split.translated();
    split.load(second).unwrap();

    let mut combined = Session::new();
    combined.load(&format!("{first}\n{second}")).unwrap();

    assert_eq!(split.translated(), combined.translated());
}

/// With the optimizer on and a hierarchy-neutral delta, the translation
/// is extended in place and must still cover the same clauses as the
/// combined translation.
#[test]
fn delta_translation_extends_in_place_when_optimized() {
    let first = "t1 < t2.\nt1: c1[l1 => c2].\np(X) :- t1: X[l1 => Y].";
    let second = "t1: c3[l1 => c4].\nq(X) :- p(X).";
    let mut split = Session::new();
    split.load(first).unwrap();
    let _ = split.translated();
    split.load(second).unwrap();

    let mut combined = Session::new();
    combined.load(&format!("{first}\n{second}")).unwrap();

    assert_eq!(clause_set(&mut split), clause_set(&mut combined));
}

// ---------- answer cache & epochs ----------

#[test]
fn epoch_bumps_on_every_load() {
    let mut s = Session::new();
    assert_eq!(s.epoch(), 0);
    s.load("t1: c1.").unwrap();
    assert_eq!(s.epoch(), 1);
    s.load("t1: c2.").unwrap();
    assert_eq!(s.epoch(), 2);
}

#[test]
fn answer_cache_hits_repeated_queries_and_invalidates_on_load() {
    let mut s = Session::new();
    s.load("t1: c1.\nt1: c2.").unwrap();
    let first = s.query("t1: X", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(s.cache_stats().hits, 0);
    assert_eq!(s.cache_stats().misses, 1);
    let again = s.query("t1: X", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(again, first);
    assert_eq!(s.cache_stats().hits, 1);

    // A different strategy is a different cache key.
    let _ = s.query("t1: X", Strategy::Sld).unwrap();
    assert_eq!(s.cache_stats().hits, 1);
    assert_eq!(s.cache_stats().misses, 2);

    // Loading bumps the epoch: the same query misses, and sees new data.
    s.load("t1: c3.").unwrap();
    let r = s.query("t1: X", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(s.cache_stats().hits, 1);
    assert_eq!(s.cache_stats().misses, 3);
}

#[test]
fn resumed_model_accumulates_stats_and_matches_fresh_session() {
    let mut s = Session::new();
    s.load("node: a[linkto => b].\nnode: b[linkto => c].\nreach(X, Y) :- node: X[linkto => Y].\nreach(X, Z) :- node: X[linkto => Y], reach(Y, Z).")
        .unwrap();
    let cold = s.query("reach(a, X)", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(cold.rows.len(), 2);
    let stats_before = s
        .model_stats(Strategy::BottomUpSemiNaive)
        .expect("model cached")
        .clone();

    s.load("node: c[linkto => d].").unwrap();
    let warm = s.query("reach(a, X)", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(warm.rows.len(), 3);
    let stats_after = s
        .model_stats(Strategy::BottomUpSemiNaive)
        .expect("model still cached")
        .clone();
    // The resumed run kept the old counters and appended the delta's
    // rounds — it did not start over.
    assert!(stats_after.iterations > stats_before.iterations);
    assert!(stats_after.facts_derived > stats_before.facts_derived);
    assert!(stats_after.delta_sizes.len() > stats_before.delta_sizes.len());
    assert!(stats_after.delta_sizes.starts_with(&stats_before.delta_sizes));

    let mut fresh = Session::new();
    fresh
        .load("node: a[linkto => b].\nnode: b[linkto => c].\nnode: c[linkto => d].\nreach(X, Y) :- node: X[linkto => Y].\nreach(X, Z) :- node: X[linkto => Y], reach(Y, Z).")
        .unwrap();
    let scratch = fresh.query("reach(a, X)", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(warm.rendered(), scratch.rendered());
}

/// Negated conjunction queries push auxiliary clauses as a scratch
/// overlay onto the shared compiled program and resume a clone of the
/// cached model; neither the overlay nor the query-local `__naux…` facts
/// may leak into later queries.
#[test]
fn negation_overlays_leave_no_residue() {
    let mut s = Session::new();
    s.load("person: ada[age => 28].\nperson: bob[age => 30].")
        .unwrap();
    for _ in 0..2 {
        for strategy in [Strategy::Sld, Strategy::BottomUpSemiNaive] {
            let r = s
                .query("person: X, \\+ person: X[age => 28]", strategy)
                .unwrap();
            assert_eq!(r.rows.len(), 1, "{strategy:?}");
            assert_eq!(r.rows[0].get("X"), Some("bob".to_string()));
        }
    }
    // The plain query still sees exactly the loaded objects.
    let all = s.query("person: X", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(all.rows.len(), 2);
    assert!(all.complete);
}

/// Incomplete (budget-cut) answers are never cached: a repeat of the
/// same query goes back to the engine.
#[test]
fn incomplete_answers_are_not_cached() {
    let mut s = Session::with_options(SessionOptions {
        fixpoint: folog::FixpointOptions {
            max_facts: Some(2),
            ..folog::FixpointOptions::default()
        },
        ..SessionOptions::default()
    });
    s.load("t1: c1.\nt1: c2.\nt1: c3.").unwrap();
    let r = s.query("t1: X", Strategy::BottomUpSemiNaive).unwrap();
    assert!(!r.complete);
    assert_eq!(s.cache_stats().misses, 1);
    let _ = s.query("t1: X", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(s.cache_stats().hits, 0, "partial answers must not be served from cache");
    assert_eq!(s.cache_stats().misses, 2);
}
