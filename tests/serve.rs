//! Concurrent serving under chaos: the `clogic-serve` front-end must
//! answer every **accepted** query — across all six strategies, from a
//! thread pool of at least four workers — with exactly the answers a
//! serial session gives, while storage faults fire mid-flight.
//!
//! Three layers are exercised together:
//!
//! * the writer/reader discipline (loads serialize and publish immutable
//!   `SessionSnapshot`s; queries fan out over pinned snapshots without
//!   ever taking the session lock);
//! * admission control (a full queue sheds with a structured
//!   `Degradation`, visible in `serve.shed`);
//! * circuit-broken persistence (`RetryingStorage` absorbs transient
//!   fault bursts with bounded backoff; longer outages open the breaker,
//!   the server keeps answering read-only, and a healed disk closes it).
//!
//! The chaos sweep mirrors `tests/recovery.rs`: measure a clean run's
//! I/O operation count, then re-run once per (fault kind, trigger) pair
//! with an intermittent fault burst at that operation — while a second
//! thread hammers queries the whole time.

use clogic::folog::Budget;
use clogic::session::{Session, SessionOptions, Strategy};
use clogic::store::{ChaosStorage, Fault, MemStorage, RetryPolicy, RetryingStorage, Sleeper};
use clogic_serve::{ServeError, ServeOptions, Server};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const QUERIES: &[&str] = &["t2: X", "t3: O[l2 => V]", "p(X)", "t1: X[l1 => Y]"];

/// Worker-pool width: pinned to at least 4 so the sweep genuinely runs
/// queries in parallel (CI sets `SERVE_STRESS_THREADS` explicitly).
fn workers() -> usize {
    std::env::var("SERVE_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
        .max(4)
}

/// Same shape as the recovery suite's chunks: facts, molecules, a
/// subtype declaration, rules, and — crucially — an entity-creating rule
/// whose head-only variable mints `skN` identities on load, so the
/// equivalence checks also pin skolem identity against thread forking.
fn chunks() -> Vec<String> {
    vec![
        "t1 < t2.\nt1: c1[l1 => c2].\nt3: C[l2 => X] :- t1: X.".to_string(),
        "t1: c3.\np(X) :- t1: X[l1 => Y].".to_string(),
        "t2: c4[l2 => c5].\nt3: D[l1 => X] :- t2: X[l2 => Y].".to_string(),
        "t1: c2[l1 => c4].\nt3: X :- t2: X.".to_string(),
    ]
}

fn opts() -> SessionOptions {
    SessionOptions {
        snapshot_every: Some(2),
        ..SessionOptions::default()
    }
}

/// A serial, uninterrupted session over the same loads.
fn baseline(chunks: &[String]) -> Session {
    let mut s = Session::with_options(opts());
    for c in chunks {
        s.load(c).expect("baseline load");
    }
    s
}

fn no_sleep() -> Sleeper {
    Arc::new(|_| {})
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        breaker_threshold: 2,
        probe_after: 2,
    }
}

/// Every strategy's answers through the server must equal the serial
/// baseline's — program text too, which pins the skolem identities.
fn assert_equivalent(server: &Server, base: &mut Session, queries: &[&str], context: &str) {
    server.with_session(|s| {
        assert_eq!(s.epoch(), base.epoch(), "epoch ({context})");
        assert_eq!(
            s.program().to_string(),
            base.program().to_string(),
            "program and skolem identities ({context})"
        );
    });
    for strategy in Strategy::ALL {
        for q in queries {
            let served = server
                .query(q, strategy)
                .unwrap_or_else(|e| panic!("served {strategy:?} on {q} ({context}): {e}"));
            let serial = base.query(q, strategy).expect("baseline query");
            assert_eq!(
                served.rendered(),
                serial.rendered(),
                "{strategy:?} on {q} ({context})"
            );
        }
    }
}

/// Zero faults: a pool of ≥4 workers answering interleaved queries under
/// every strategy gives exactly the serial answers, with zero sheds and
/// zero retries on the books.
#[test]
fn parallel_equals_serial_on_all_strategies_with_zero_faults() {
    let chunks = chunks();
    let mut base = baseline(&chunks);
    let session = baseline(&chunks);
    let server = Server::start(
        session,
        ServeOptions {
            workers: workers(),
            queue_depth: 1024,
            default_deadline: None,
        },
    )
    .unwrap();

    // Fan out: several submitter threads × all strategies × all queries,
    // redeemed out of order.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut pending = Vec::new();
                for strategy in Strategy::ALL {
                    for q in QUERIES {
                        pending.push((strategy, q, server.submit(q, strategy).unwrap()));
                    }
                }
                for (strategy, q, p) in pending {
                    let served = p.wait().unwrap();
                    let serial = baseline(&chunks).query(q, strategy).unwrap();
                    assert_eq!(served.rendered(), serial.rendered(), "{strategy:?} on {q}");
                }
            });
        }
    });

    assert_equivalent(&server, &mut base, QUERIES, "zero faults");
    let snap = server.obs().metrics.snapshot();
    assert_eq!(snap.counter("serve.shed").unwrap_or(0), 0, "no sheds");
    assert_eq!(snap.counter("serve.retry").unwrap_or(0), 0, "no retries");
    assert_eq!(snap.counter("serve.worker_panics").unwrap_or(0), 0);
    assert_eq!(snap.gauge("serve.queue_depth").unwrap_or(0), 0, "queue drained");
    server.shutdown();
}

/// Loads concurrent with queries, without chaos: while a writer thread
/// publishes new snapshots in a loop, ≥4 reader threads each pin one
/// snapshot `Arc` and answer two queries from it. Both answers must be
/// consistent with exactly the pinned snapshot's epoch — never a mix of
/// two epochs (a torn read), never an epoch that was never published.
#[test]
fn pinned_snapshot_readers_never_see_torn_epochs() {
    let chunks = chunks();
    // The writer's script: the remaining chunks, then a stream of
    // heartbeat facts so snapshots keep publishing while readers run.
    // Because `t1 < t2`, every heartbeat changes the answer to `t2: X`,
    // so that answer pins its epoch uniquely.
    let mut script: Vec<String> = chunks[1..].to_vec();
    for i in 0..8 {
        script.push(format!("t1: h{i}."));
    }

    // Expected answers per epoch, from a serial replay of the same
    // script. `Q_EPOCH` changes on every load; `Q_STABLE` settles early —
    // a torn pair (each answer from a different epoch) matches no entry.
    const Q_EPOCH: &str = "t2: X";
    const Q_STABLE: &str = "t3: O[l2 => V]";
    let expect = |b: &mut Session| {
        (
            b.query(Q_EPOCH, Strategy::Sld).unwrap().rendered(),
            b.query(Q_STABLE, Strategy::BottomUpSemiNaive)
                .unwrap()
                .rendered(),
        )
    };
    let mut base = Session::with_options(opts());
    base.load(&chunks[0]).expect("seed load");
    let mut expected = HashMap::new();
    expected.insert(base.epoch(), expect(&mut base));
    for src in &script {
        base.load(src).expect("baseline load");
        expected.insert(base.epoch(), expect(&mut base));
    }

    let mut seed = Session::with_options(opts());
    seed.load(&chunks[0]).expect("seed load");
    seed.prepare().expect("publish the first snapshot");
    let server = Server::start(
        seed,
        ServeOptions {
            workers: workers(),
            queue_depth: 1024,
            default_deadline: None,
        },
    )
    .unwrap();
    let cell = server.with_session(|s| s.snapshot_cell());
    let done = AtomicBool::new(false);
    let observed = Mutex::new(HashSet::new());
    let unlimited = Budget::unlimited();
    // Answers the pool reader accepts: any single published epoch's.
    let pool_answers: HashSet<Vec<String>> = expected.values().map(|(a, _)| a.clone()).collect();

    std::thread::scope(|scope| {
        // Pinned readers: grab one snapshot, answer both queries from
        // it. The pin must stay internally consistent even though the
        // writer publishes newer epochs underneath.
        for _ in 0..workers() {
            scope.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    let Some(pin) = cell.load() else { continue };
                    let epoch = pin.epoch();
                    let got = (
                        pin.query(Q_EPOCH, Strategy::Sld, &unlimited)
                            .unwrap()
                            .rendered(),
                        pin.query(Q_STABLE, Strategy::BottomUpSemiNaive, &unlimited)
                            .unwrap()
                            .rendered(),
                    );
                    let want = expected
                        .get(&epoch)
                        .unwrap_or_else(|| panic!("reader pinned unpublished epoch {epoch}"));
                    assert_eq!(&got, want, "torn read at epoch {epoch}");
                    observed.lock().unwrap().insert(epoch);
                }
            });
        }
        // One reader goes through the worker pool instead of pinning:
        // the serving layer may answer from any published epoch, but
        // always from exactly one of them.
        scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                let a = server
                    .query(Q_EPOCH, Strategy::Sld)
                    .expect("pool query mid-load");
                assert!(
                    pool_answers.contains(&a.rendered()),
                    "pool answer matches no published epoch: {:?}",
                    a.rendered()
                );
            }
        });
        // Writer: replay the script; every load publishes a snapshot.
        for src in &script {
            server.load(src).expect("load mid-stress");
            std::thread::sleep(Duration::from_millis(1));
        }
        done.store(true, Ordering::Release);
    });

    let observed = observed.into_inner().unwrap();
    assert!(!observed.is_empty(), "readers never pinned a snapshot");
    server.shutdown();
}

/// One chaos scenario: a burst of `fault` starting at I/O operation
/// `trigger`, short enough for the retry budget to absorb, while queries
/// run concurrently with the loads. No accepted query may lose its
/// answer; the final state must match the serial baseline.
fn chaos_serve_scenario(chunks: &[String], trigger: u64, fault: Fault) {
    let context = format!("fault={fault:?} trigger={trigger}");
    let mem = MemStorage::new();
    // Burst of 2 ≤ max_retries: every storage operation eventually
    // succeeds, so the faults surface only as retries — never as lost
    // answers or failed loads.
    let chaos = ChaosStorage::intermittent(mem, trigger, 2, fault);
    let retrying = RetryingStorage::with_sleeper(chaos, fast_policy(), no_sleep());
    let (session, _report) = Session::recover_from(Box::new(retrying), opts())
        .unwrap_or_else(|e| panic!("recover under absorbed faults ({context}): {e}"));
    let server = Server::start(
        session,
        ServeOptions {
            workers: workers(),
            queue_depth: 1024,
            default_deadline: None,
        },
    )
    .unwrap();

    std::thread::scope(|scope| {
        // Reader side: keep queries in flight for the whole load
        // sequence. Answers race with loads, so only delivery (not
        // content) is asserted here; content is pinned after quiesce.
        let handle = scope.spawn(|| {
            for round in 0..3 {
                for (i, q) in QUERIES.iter().enumerate() {
                    let strategy = Strategy::ALL[(round + i) % Strategy::ALL.len()];
                    let a = server
                        .query(q, strategy)
                        .unwrap_or_else(|e| panic!("mid-flight query lost: {e}"));
                    // Every mid-flight answer reflects *some* prefix of
                    // the loads, never garbage: at most the baseline's
                    // final row count for this query.
                    drop(a);
                }
            }
        });
        // Writer side: the full load sequence, with faults striking.
        for c in chunks {
            let report = server
                .load(c)
                .unwrap_or_else(|e| panic!("load under absorbed faults ({context}): {e}"));
            assert!(
                report.persisted(),
                "burst within retry budget must persist ({context})"
            );
        }
        handle.join().unwrap();
    });

    let mut base = baseline(chunks);
    assert_equivalent(&server, &mut base, &QUERIES[..2], &context);
    let snap = server.obs().metrics.snapshot();
    assert_eq!(snap.counter("serve.worker_panics").unwrap_or(0), 0);
    assert_eq!(snap.counter("serve.shed").unwrap_or(0), 0, "{context}");
    server.shutdown();
}

/// The sweep: every fault kind × every I/O boundary of a clean run, with
/// a ≥4-thread pool serving queries throughout.
#[test]
fn chaos_sweep_concurrent_serving_never_loses_answers() {
    let chunks = chunks();

    // Measure the clean run's operation count (trigger 0 never fires).
    let mem = MemStorage::new();
    let probe = ChaosStorage::new(mem, 0, Fault::Fail);
    let ops = probe.op_counter();
    {
        let (mut s, _) = Session::recover_from(Box::new(probe), opts()).unwrap();
        for c in &chunks {
            s.load(c).unwrap();
        }
    }
    let total = ops.load(Ordering::Relaxed);
    assert!(total > 10, "probe run did too little I/O ({total} ops)");

    for fault in Fault::ALL {
        for trigger in 1..=total {
            chaos_serve_scenario(&chunks, trigger, fault);
        }
    }
}

/// A persistence outage longer than the retry budget: loads report the
/// failure instead of failing, the breaker opens (visible in metrics and
/// `Server::breaker_open`), queries keep flowing read-only, and once the
/// storage heals a probe closes the breaker and persistence resumes.
#[test]
fn breaker_opens_under_outage_and_recovers_read_only_service() {
    // Outage length: long enough to exhaust several retry rounds and
    // open the breaker, short enough that the open breaker's slow probe
    // cadence (one I/O per `probe_after` loads) burns it within the
    // heartbeat loop below.
    const BURST: u64 = 12;
    let mem = MemStorage::new();
    // Clean during recovery/startup, then dead for the burst.
    let chaos = ChaosStorage::intermittent(mem, 8, BURST, Fault::Fail);
    let fired = chaos.fault_counter();
    // One metrics registry spanning storage, session, and server, so
    // retries, breaker transitions, and sheds land in one snapshot.
    let obs = clogic::obs::Obs::new();
    let retrying =
        RetryingStorage::with_sleeper(chaos, fast_policy(), no_sleep()).with_obs(obs.clone());
    let options = SessionOptions {
        obs: obs.clone(),
        ..opts()
    };
    let (session, report) = Session::recover_from(Box::new(retrying), options).unwrap();
    assert!(!report.breaker_open, "breaker closed on a clean open");
    let server = Server::start(
        session,
        ServeOptions {
            workers: workers(),
            queue_depth: 1024,
            default_deadline: None,
        },
    )
    .unwrap();

    let chunks = chunks();
    let mut outage_seen = false;
    let mut breaker_seen = false;
    server.load(&chunks[0]).unwrap();
    // Keep loading the remaining chunks (re-loading the last one as a
    // heartbeat) until persistence recovers end to end. Every load must
    // succeed in memory; queries must flow throughout.
    let mut next = 1;
    for round in 0..64 {
        let src = if next < chunks.len() {
            let c = chunks[next].clone();
            next += 1;
            c
        } else {
            format!("t1: h{round}.")
        };
        let report = server.load(&src).unwrap();
        if !report.persisted() {
            outage_seen = true;
        }
        if report.breaker_open {
            breaker_seen = true;
            assert!(server.breaker_open());
        }
        // Read-only service continues regardless of persistence health.
        let a = server.query("t2: X", Strategy::Sld).unwrap();
        assert!(!a.rows.is_empty(), "queries must flow during the outage");
        if outage_seen
            && breaker_seen
            && report.persisted()
            && !report.breaker_open
            && fired.load(Ordering::Relaxed) >= BURST
        {
            break;
        }
    }
    assert!(outage_seen, "the outage must surface in a LoadReport");
    assert!(breaker_seen, "the breaker must open during the outage");
    assert!(!server.breaker_open(), "breaker must close after healing");

    let snap = server.obs().metrics.snapshot();
    assert!(snap.counter("serve.retry").unwrap_or(0) > 0, "retries visible");
    assert!(
        snap.counter("serve.breaker_open").unwrap_or(0) >= 1,
        "breaker openings visible"
    );
    assert!(
        snap.counter("serve.load.persist_failures").unwrap_or(0) >= 1,
        "persist failures visible"
    );
    assert_eq!(snap.gauge("store.breaker.open").unwrap_or(0), 0);
    server.shutdown();
}

/// Overload: a one-worker server with a one-slot queue must shed — with
/// the structured `Degradation` and a metrics trace — while every
/// *accepted* submission still gets its answer.
#[test]
fn overload_sheds_structurally_and_answers_the_accepted() {
    let mut s = Session::with_options(opts());
    s.load(&chunks()[0]).unwrap();
    let server = Server::start(
        s,
        ServeOptions {
            workers: 1,
            queue_depth: 1,
            default_deadline: Some(Duration::from_secs(5)),
        },
    )
    .unwrap();

    let mut accepted = Vec::new();
    let mut sheds = 0u64;
    for _ in 0..256 {
        match server.submit("t2: X", Strategy::Sld) {
            Ok(p) => accepted.push(p),
            Err(ServeError::Shed(d)) => {
                assert_eq!(d.strategy, "serve");
                assert!(d.detail.contains("queue full"), "{}", d.detail);
                sheds += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    for p in accepted {
        let a = p.wait().expect("accepted query must be answered");
        assert!(!a.rows.is_empty());
    }
    let snap = server.obs().metrics.snapshot();
    assert_eq!(snap.counter("serve.shed").unwrap_or(0), sheds);
    if sheds > 0 {
        assert!(snap.counter("serve.shed").unwrap() > 0);
    }
    server.shutdown();
}

// ---------- proptest: random interleaved workloads ----------

fn workload() -> impl proptest::strategy::Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec(
        (0..QUERIES.len(), 0..Strategy::ALL.len()),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaved parallel workload over the entity-creating
    /// program answers exactly like the same workload run serially —
    /// for every strategy mix, with ≥4 workers. In particular the `skN`
    /// identities in the answers never fork across threads.
    #[test]
    fn interleaved_parallel_workload_equals_serial(
        ops in workload(),
        prefix in 1usize..5,
    ) {
        let loaded: Vec<String> = chunks().into_iter().take(prefix).collect();
        let mut serial = baseline(&loaded);
        let expected: Vec<Vec<String>> = ops
            .iter()
            .map(|&(q, s)| {
                serial
                    .query(QUERIES[q], Strategy::ALL[s])
                    .unwrap()
                    .rendered()
            })
            .collect();

        let server = Server::start(
            baseline(&loaded),
            ServeOptions {
                workers: workers(),
                queue_depth: 1024,
                default_deadline: None,
            },
        )
        .unwrap();
        // Submit everything before redeeming anything, so evaluations
        // genuinely overlap in the pool.
        let pending: Vec<_> = ops
            .iter()
            .map(|&(q, s)| server.submit(QUERIES[q], Strategy::ALL[s]).unwrap())
            .collect();
        for (p, want) in pending.into_iter().zip(&expected) {
            let got = p.wait().unwrap().rendered();
            prop_assert_eq!(&got, want);
        }
        server.shutdown();
    }

    /// Direct snapshot reads equal the exclusive `&mut self` path for
    /// every strategy over the entity-creating program — including the
    /// `skN` identities — and the snapshot's cross-strategy answer
    /// cache hands back exactly the answers it was filled with, even
    /// when the hit comes from a different strategy than the fill.
    #[test]
    fn snapshot_equals_exclusive_across_strategies(
        ops in workload(),
        prefix in 1usize..5,
    ) {
        let loaded: Vec<String> = chunks().into_iter().take(prefix).collect();
        let mut exclusive = baseline(&loaded);
        let mut shared = baseline(&loaded);
        shared.prepare().unwrap();
        let snap = shared.current_snapshot().expect("prepare publishes a snapshot");
        let unlimited = Budget::unlimited();
        for &(q, s) in &ops {
            let (query, strategy) = (QUERIES[q], Strategy::ALL[s]);
            let want = exclusive.query(query, strategy).unwrap();
            let (got, _) = snap.query_cached(query, strategy, &unlimited).unwrap();
            prop_assert_eq!(
                got.rendered(),
                want.rendered(),
                "{:?} on {}",
                strategy,
                query
            );
            if got.complete {
                let (again, hit) = snap.query_cached(query, strategy, &unlimited).unwrap();
                prop_assert!(hit, "complete answers must cache ({:?} on {})", strategy, query);
                prop_assert_eq!(again.rendered(), want.rendered());
            }
        }
    }
}
