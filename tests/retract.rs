//! Retraction: incremental deletion end-to-end.
//!
//! The contract under test, at every layer:
//!
//! * **Semantics** — `retract ∘ assert ≡ never-asserted`: after loading
//!   a chunk and retracting exactly its (post-skolemization) clauses,
//!   every query under every strategy answers as if the chunk had never
//!   been loaded. Property-tested over random programs, including
//!   entity-creating rules whose skolem identities must stay pinned.
//! * **Incrementality** — cached saturated models are repaired by the
//!   DRed delete-rederive pass, not recomputed (observed through the
//!   `session.retract.models_patched` counter).
//! * **Durability** — retractions are WAL records: interleaved
//!   assert/retract histories recover identically when crashed after
//!   every prefix, and a chaos sweep kills every single I/O operation
//!   of the whole history under every fault kind.
//! * **Serving** — a reader that pinned a pre-retraction
//!   [`SessionSnapshot`] keeps answering from it untorn while the
//!   session moves on.

use clogic::folog::Budget;
use clogic::session::{Session, SessionError, SessionOptions, Strategy};
use clogic::store::{ChaosStorage, Fault, MemStorage};
use proptest::prelude::*;
use proptest::strategy::Strategy as ProptestStrategy;
use std::sync::atomic::Ordering;

const QUERIES: &[&str] = &["t2: X", "t3: O[l2 => V]", "p(X)", "t1: X[l1 => Y]"];

fn opts() -> SessionOptions {
    SessionOptions {
        snapshot_every: Some(2),
        ..SessionOptions::default()
    }
}

/// One durably logged mutation, as the histories below drive it.
#[derive(Clone, Debug)]
enum Op {
    Load(String),
    Retract(String),
}

/// A fixed interleaved history: loads covering facts, molecules, a
/// subtype declaration, rules and entity-creating (skolemizing) rules,
/// with retractions of facts *and* a rule woven between them. Every op
/// is exactly one epoch.
fn standard_ops() -> Vec<Op> {
    vec![
        Op::Load("t1 < t2.\nt1: c1[l1 => c2].\nt3: C[l2 => X] :- t1: X.".to_string()),
        Op::Load("t1: c3.\np(X) :- t1: X[l1 => Y].".to_string()),
        Op::Retract("t1: c3.".to_string()),
        Op::Load("t2: c4[l2 => c5].\nt3: D[l1 => X] :- t2: X[l2 => Y].".to_string()),
        Op::Retract("t1: c1[l1 => c2].".to_string()),
        Op::Load("t1: c2[l1 => c4].\nt3: X :- t2: X.".to_string()),
        Op::Retract("p(X) :- t1: X[l1 => Y].".to_string()),
    ]
}

fn apply(s: &mut Session, op: &Op) -> Result<(), SessionError> {
    match op {
        Op::Load(src) => s.load(src),
        Op::Retract(src) => s.retract(src),
    }
}

/// An uninterrupted, purely in-memory session applying the same history.
fn baseline(ops: &[Op]) -> Session {
    let mut s = Session::with_options(opts());
    for op in ops {
        apply(&mut s, op).expect("baseline op");
    }
    s
}

fn assert_equivalent(recovered: &mut Session, uninterrupted: &mut Session, context: &str) {
    assert_eq!(
        recovered.epoch(),
        uninterrupted.epoch(),
        "epoch after recovery ({context})"
    );
    assert_eq!(
        recovered.program().to_string(),
        uninterrupted.program().to_string(),
        "recovered program and skolem identities ({context})"
    );
    for strategy in Strategy::ALL {
        for q in QUERIES {
            let r = recovered.query(q, strategy).expect("recovered query");
            let u = uninterrupted.query(q, strategy).expect("baseline query");
            assert_eq!(r.rendered(), u.rendered(), "{strategy:?} on {q} ({context})");
        }
    }
}

// ---------- semantics ----------

#[test]
fn retracted_fact_is_gone_across_all_strategies() {
    let mut s = Session::new();
    s.load("t1: c1[l1 => c2].\nt1: c3.\np(X) :- t1: X[l1 => Y].")
        .unwrap();
    for strategy in Strategy::ALL {
        assert!(s.query("p(c1)", strategy).unwrap().holds(), "{strategy:?}");
    }
    s.retract("t1: c1[l1 => c2].").unwrap();
    for strategy in Strategy::ALL {
        assert!(
            !s.query("p(c1)", strategy).unwrap().holds(),
            "{strategy:?} still derives from the retracted fact"
        );
        assert!(
            s.query("t1: c3", strategy).unwrap().holds(),
            "{strategy:?} lost a surviving fact"
        );
    }
}

#[test]
fn retract_rule_removes_its_consequences() {
    let mut s = Session::new();
    s.load("t1: c1.\nt2: X :- t1: X.").unwrap();
    assert!(s.query("t2: c1", Strategy::Sld).unwrap().holds());
    s.retract("t2: X :- t1: X.").unwrap();
    for strategy in Strategy::ALL {
        assert!(!s.query("t2: c1", strategy).unwrap().holds(), "{strategy:?}");
        assert!(s.query("t1: c1", strategy).unwrap().holds(), "{strategy:?}");
    }
}

#[test]
fn retract_is_all_or_nothing() {
    let mut s = Session::new();
    s.load("t1: c1.\nt1: c2.").unwrap();
    let epoch = s.epoch();
    // Second clause matches nothing → the whole retract must fail and
    // leave both loaded clauses (and the epoch) in place.
    let err = s.retract("t1: c1.\nt1: c9.").unwrap_err();
    assert!(
        matches!(err, SessionError::NoSuchClause(_)),
        "want NoSuchClause, got {err}"
    );
    assert_eq!(s.epoch(), epoch);
    assert!(s.query("t1: c1", Strategy::Direct).unwrap().holds());
}

#[test]
fn retract_rejects_subtype_declarations_and_queries() {
    let mut s = Session::new();
    s.load("t1 < t2.\nt1: c1.").unwrap();
    assert!(matches!(
        s.retract("t1 < t2."),
        Err(SessionError::Unsupported(_))
    ));
    assert!(s.retract("?- t1: X.").is_err());
}

/// A duplicated assertion survives one retraction of its text: the
/// clause multiset loses one copy, and the translated fact (emitted
/// once, deduplicated) is unchanged.
#[test]
fn retracting_one_of_two_identical_assertions_keeps_the_fact() {
    let mut s = Session::new();
    s.load("t1: c1.").unwrap();
    s.load("t1: c1.").unwrap();
    s.retract("t1: c1.").unwrap();
    for strategy in Strategy::ALL {
        assert!(s.query("t1: c1", strategy).unwrap().holds(), "{strategy:?}");
    }
    s.retract("t1: c1.").unwrap();
    for strategy in Strategy::ALL {
        assert!(!s.query("t1: c1", strategy).unwrap().holds(), "{strategy:?}");
    }
}

/// Retracting a base fact under an entity-creating rule removes the
/// minted entity's consequences, while entities minted from *surviving*
/// facts keep their exact `skN` identities.
#[test]
fn skolem_entities_die_with_their_support_and_survivors_keep_identity() {
    let mut s = Session::new();
    s.load("t1: c1.\nt1: c2.\nt3: E[l2 => X] :- t1: X.").unwrap();
    let before: Vec<String> = s
        .query("t3: O[l2 => V]", Strategy::BottomUpSemiNaive)
        .unwrap()
        .rendered();
    assert_eq!(before.len(), 2, "one minted entity per base fact");
    s.retract("t1: c1.").unwrap();
    for strategy in Strategy::ALL {
        let after = s.query("t3: O[l2 => V]", strategy).unwrap().rendered();
        assert_eq!(after.len(), 1, "{strategy:?}: c1's entity must be gone");
        assert!(
            before.contains(&after[0]),
            "{strategy:?}: the survivor changed identity: {:?} not in {:?}",
            after[0],
            before
        );
    }
}

/// The saturated models built before the retraction are DRed-patched in
/// place, not dropped: the patch counter moves and the answers agree
/// with a from-scratch session.
#[test]
fn cached_models_are_patched_not_recomputed() {
    let mut s = Session::new();
    s.load("t1: c1[l1 => c2].\nt1: c3.\np(X) :- t1: X[l1 => Y].")
        .unwrap();
    // Build and cache the saturated models.
    s.query("p(X)", Strategy::BottomUpSemiNaive).unwrap();
    s.query("p(X)", Strategy::BottomUpNaive).unwrap();
    s.retract("t1: c3.").unwrap();
    let m = s.metrics();
    let patched = m
        .counters
        .get("session.retract.models_patched")
        .copied()
        .unwrap_or(0);
    assert!(
        patched >= 2,
        "both cached models should be DRed-patched, got {patched}"
    );
    let dred = m.counters.get("folog.dred.runs").copied().unwrap_or(0);
    assert!(dred >= 2, "the DRed pass should have run, got {dred}");
    let mut fresh = Session::new();
    fresh
        .load("t1: c1[l1 => c2].\np(X) :- t1: X[l1 => Y].")
        .unwrap();
    for q in QUERIES {
        assert_eq!(
            s.query(q, Strategy::BottomUpSemiNaive).unwrap().rendered(),
            fresh.query(q, Strategy::BottomUpSemiNaive).unwrap().rendered(),
            "patched model disagrees on {q}"
        );
    }
}

// ---------- serving: snapshot pinning ----------

#[test]
fn pinned_snapshot_keeps_serving_pre_retraction_state() {
    let mut s = Session::new();
    s.load("t1: c1[l1 => c2].\np(X) :- t1: X[l1 => Y].").unwrap();
    s.prepare().unwrap();
    let pinned = s.current_snapshot().expect("published");
    let unlimited = Budget::unlimited();
    let (before, _) = pinned
        .query_cached("p(X)", Strategy::BottomUpSemiNaive, &unlimited)
        .unwrap();
    assert!(before.holds());

    s.retract("t1: c1[l1 => c2].").unwrap();
    s.prepare().unwrap();

    // The pinned reader still answers from its epoch, untorn.
    let (still, _) = pinned
        .query_cached("p(X)", Strategy::BottomUpSemiNaive, &unlimited)
        .unwrap();
    assert_eq!(still.rendered(), before.rendered());
    // A fresh pin sees the retraction.
    let fresh = s.current_snapshot().expect("republished");
    let (after, _) = fresh
        .query_cached("p(X)", Strategy::BottomUpSemiNaive, &unlimited)
        .unwrap();
    assert!(!after.holds());
}

// ---------- durability: crash-at-every-prefix, chaos, report ----------

#[test]
fn interleaved_history_crash_at_every_prefix_recovers_identically() {
    let ops = standard_ops();
    for crash_at in 0..=ops.len() {
        let mem = MemStorage::new();
        {
            let (mut s, _) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
            for op in &ops[..crash_at] {
                apply(&mut s, op).unwrap();
            }
            // Dropped here: a crash. Every applied op was synced.
        }
        let (mut r, report) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
        assert_eq!(r.epoch(), crash_at as u64, "{report}");
        for op in &ops[crash_at..] {
            apply(&mut r, op).unwrap();
        }
        let mut base = baseline(&ops);
        assert_equivalent(&mut r, &mut base, &format!("crash_at={crash_at}"));
    }
}

#[test]
fn recovery_report_counts_asserts_and_retracts() {
    // No compaction, so every op stays in the WAL and is replayed.
    let no_compact = SessionOptions::default();
    let ops = standard_ops();
    let mem = MemStorage::new();
    {
        let (mut s, _) =
            Session::recover_from(Box::new(mem.clone()), no_compact.clone()).unwrap();
        for op in &ops {
            apply(&mut s, op).unwrap();
        }
    }
    let (_, report) = Session::recover_from(Box::new(mem), no_compact).unwrap();
    assert_eq!(report.records_replayed, ops.len());
    assert_eq!(report.loads_replayed, 4);
    assert_eq!(report.retracts_replayed, 3);
    assert!(
        report.to_string().contains("3 retract(s)"),
        "the rendered report should show the retract count: {report}"
    );
}

fn chaos_scenario(ops: &[Op], trigger: u64, fault: Fault) {
    let mem = MemStorage::new();
    let chaos = ChaosStorage::new(mem.clone(), trigger, fault);

    // Phase 1: live until the fault kills a storage operation.
    if let Ok((mut s, _)) = Session::recover_from(Box::new(chaos), opts()) {
        for op in ops {
            if apply(&mut s, op).is_err() {
                break;
            }
        }
    }

    // Phase 2: restart on the clean handle over the surviving files.
    let context = format!("fault={fault:?} trigger={trigger}");
    let (mut r, report) = match Session::recover_from(Box::new(mem.clone()), opts()) {
        Ok(v) => v,
        Err(e) => panic!("recovery must always succeed after a chaos crash ({context}): {e}"),
    };

    // Phase 3: each op is exactly one epoch; re-apply what was lost.
    let done = r.epoch() as usize;
    assert!(
        done <= ops.len(),
        "recovered epoch out of range ({context}): {report}"
    );
    for op in &ops[done..] {
        apply(&mut r, op)
            .unwrap_or_else(|e| panic!("post-recovery op must succeed ({context}): {e}"));
    }

    // Phase 4: equivalence with the uninterrupted history.
    let mut base = baseline(ops);
    assert_equivalent(&mut r, &mut base, &context);
}

#[test]
fn chaos_sweep_kills_every_io_op_of_an_interleaved_history() {
    let ops = standard_ops();

    // Measure a clean run's I/O operation count.
    let mem = MemStorage::new();
    let probe = ChaosStorage::new(mem, 0, Fault::Fail);
    let counter = probe.op_counter();
    {
        let (mut s, _) = Session::recover_from(Box::new(probe), opts()).unwrap();
        for op in &ops {
            apply(&mut s, op).unwrap();
        }
    }
    let total = counter.load(Ordering::Relaxed);
    assert!(total > 10, "probe run did too little I/O ({total} ops)");

    // Sweep: every operation of the clean run × every fault kind —
    // retraction commits (append, fsync, compaction) included.
    for fault in Fault::ALL {
        for trigger in 1..=total {
            chaos_scenario(&ops, trigger, fault);
        }
    }
}

// ---------- proptest: retract ∘ assert ≡ never-asserted ----------

fn const_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["c1", "c2", "c3", "c4", "c5"]).prop_map(str::to_string)
}

fn type_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["t1", "t2", "t3"]).prop_map(str::to_string)
}

fn label_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["l1", "l2"]).prop_map(str::to_string)
}

fn fact_src() -> impl ProptestStrategy<Value = String> {
    (
        type_name(),
        const_name(),
        prop::collection::vec((label_name(), const_name()), 0..3),
    )
        .prop_map(|(ty, id, pairs)| {
            if pairs.is_empty() {
                format!("{ty}: {id}.")
            } else {
                let specs = pairs
                    .iter()
                    .map(|(l, v)| format!("{l} => {v}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{ty}: {id}[{specs}].")
            }
        })
}

/// Two of the four rules mint skolem identities on load, so retracting
/// a chunk containing them exercises the skolemized-text matching and
/// the pinning of surviving identities.
fn rule_src() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec![
        "p(X) :- t1: X[l1 => Y].",
        "t3: X :- t2: X.",
        "t3: C[l2 => X] :- t1: X.",
        "t3: D[l1 => X] :- t2: X[l2 => Y].",
    ])
    .prop_map(str::to_string)
}

/// A loadable chunk with no subtype declarations (those cannot be
/// retracted; the base program may still declare one).
fn chunk_src() -> impl ProptestStrategy<Value = String> {
    (
        prop::collection::vec(fact_src(), 1..4),
        prop::collection::vec(rule_src(), 0..3),
    )
        .prop_map(|(facts, rules)| {
            let mut lines = facts;
            lines.extend(rules);
            lines.join("\n")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Load a base program, saturate models, load one more chunk, then
    /// retract exactly the clauses that chunk added (quoted in their
    /// post-skolemization form). Every query under every strategy must
    /// answer as if the chunk had never been loaded — the executable
    /// statement of `retract ∘ assert ≡ never-asserted`, with the DRed
    /// patch on the hot path because the models were already cached.
    #[test]
    fn retract_after_assert_equals_never_asserted(
        base in prop::collection::vec(chunk_src(), 1..3),
        declare in prop::bool::ANY,
        extra in chunk_src(),
    ) {
        let mut with = Session::new();
        if declare {
            with.load("t1 < t2.").unwrap();
        }
        for c in &base {
            with.load(c).unwrap();
        }
        // Saturate and cache the models before the assert, as a serving
        // session would.
        with.query("t3: O[l2 => V]", Strategy::BottomUpSemiNaive).unwrap();

        let before = with.program().clauses.len();
        with.load(&extra).unwrap();
        let added: Vec<String> = with.program().clauses[before..]
            .iter()
            .map(|c| c.to_string())
            .collect();
        prop_assert!(!added.is_empty());
        with.retract(&added.join("\n")).unwrap();

        let mut without = Session::new();
        if declare {
            without.load("t1 < t2.").unwrap();
        }
        for c in &base {
            without.load(c).unwrap();
        }
        for strategy in Strategy::ALL {
            for q in QUERIES {
                prop_assert_eq!(
                    with.query(q, strategy).unwrap().rendered(),
                    without.query(q, strategy).unwrap().rendered(),
                    "{:?} on {} after retracting\n{}\nfrom\n{}",
                    strategy, q, added.join("\n"), with.program()
                );
            }
        }
    }
}
