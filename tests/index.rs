//! Property and regression tests for the argument-pattern fact indices.
//!
//! Indexing is a pure evaluation-plan change: for any program and query,
//! every strategy must produce exactly the same answers with
//! [`IndexMode::Indexed`] (lazy hash indices on bound-position
//! projections) as with [`IndexMode::Scan`] (the exhaustive baseline).
//! The properties here drive that equivalence over random databases —
//! including entity-creating (skolemized) rules and stratified negation —
//! and the unit tests pin the laziness/invalidation contract: indices
//! built during one evaluation are *extended*, never rebuilt and never
//! stale, when the fixpoint is resumed with a load delta at a later
//! epoch.

use clogic::core::program::Program;
use clogic::core::{Atomic, DefiniteClause, LabelSpec, Term};
use clogic::folog::IndexMode;
use clogic::obs::Obs;
use clogic::{Session, SessionOptions, Strategy};
use proptest::prelude::*;
use proptest::strategy::Strategy as ProptestStrategy;

// ---------- harness ----------

fn session_with(mode: IndexMode, p: &Program) -> Session {
    let mut opts = SessionOptions::default();
    opts.fixpoint.index_mode = mode;
    let mut s = Session::with_options(opts);
    s.load_program(p.clone());
    s
}

fn answers(p: &Program, query: &str, strategy: Strategy, mode: IndexMode) -> Vec<String> {
    session_with(mode, p)
        .query(query, strategy)
        .unwrap()
        .rendered()
}

// ---------- generators (the equivalence.rs vocabulary, plus an
// entity-creating rule in the pool) ----------

fn const_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["c1", "c2", "c3", "c4"]).prop_map(str::to_string)
}

fn type_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["t1", "t2", "t3", "object"]).prop_map(str::to_string)
}

fn label_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["l1", "l2", "l3"]).prop_map(str::to_string)
}

fn value() -> impl ProptestStrategy<Value = Term> {
    prop_oneof![
        const_name().prop_map(|c| Term::constant(c.as_str())),
        (0i64..4).prop_map(Term::int),
    ]
}

/// A ground molecule fact: `ty: id[label ⇒ value, …]`.
fn fact() -> impl ProptestStrategy<Value = DefiniteClause> {
    (
        type_name(),
        const_name(),
        prop::collection::vec((label_name(), value()), 0..3),
    )
        .prop_map(|(ty, id, pairs)| {
            let specs: Vec<LabelSpec> = pairs
                .into_iter()
                .map(|(l, v)| LabelSpec::one(l.as_str(), v))
                .collect();
            let head = if specs.is_empty() {
                Term::typed_constant(ty.as_str(), id.as_str())
            } else {
                Term::molecule(Term::typed_constant(ty.as_str(), id.as_str()), specs).unwrap()
            };
            DefiniteClause::fact(Atomic::term(head))
        })
}

/// Rule pool: plain label-projection rules (head labels disjoint from
/// body labels, so the untabled direct engine terminates) plus an
/// entity-creating rule whose head-only variable `C` is auto-skolemized
/// on load.
fn rule() -> impl ProptestStrategy<Value = DefiniteClause> {
    let pool = vec![
        // r1: X[m1 => V] :- t1: X[l1 => V].
        DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("r1", "X"),
                    vec![LabelSpec::one("m1", Term::var("V"))],
                )
                .unwrap(),
            ),
            vec![Atomic::term(
                Term::molecule(
                    Term::typed_var("t1", "X"),
                    vec![LabelSpec::one("l1", Term::var("V"))],
                )
                .unwrap(),
            )],
        ),
        // r2: X[m2 => V] :- t2: X[l2 => V].
        DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("r2", "X"),
                    vec![LabelSpec::one("m2", Term::var("V"))],
                )
                .unwrap(),
            ),
            vec![Atomic::term(
                Term::molecule(
                    Term::typed_var("t2", "X"),
                    vec![LabelSpec::one("l2", Term::var("V"))],
                )
                .unwrap(),
            )],
        ),
        // r1: C[m2 => X] :- t1: X.  (C is head-only: skolemized on load)
        DefiniteClause::rule(
            Atomic::term(
                Term::molecule(
                    Term::typed_var("r1", "C"),
                    vec![LabelSpec::one("m2", Term::var("X"))],
                )
                .unwrap(),
            ),
            vec![Atomic::term(Term::typed_var("t1", "X"))],
        ),
    ];
    prop::sample::select(pool)
}

fn program() -> impl ProptestStrategy<Value = Program> {
    (
        prop::collection::vec(fact(), 1..8),
        prop::collection::vec(rule(), 0..3),
        prop::bool::ANY,
    )
        .prop_map(|(facts, rules, declare)| {
            let mut p = Program::new();
            if declare {
                p.declare_subtype("t1", "t2");
            }
            for c in facts.into_iter().chain(rules) {
                p.push(c);
            }
            p
        })
}

fn query_src() -> impl ProptestStrategy<Value = String> {
    (
        prop::sample::select(vec!["t1", "t2", "t3", "r1", "r2", "object"]).prop_map(str::to_string),
        prop_oneof![Just("X".to_string()), const_name()],
        prop::collection::vec(
            (
                prop::sample::select(vec!["l1", "l2", "l3", "m1", "m2"]).prop_map(str::to_string),
                prop_oneof![Just("V".to_string()), Just("W".to_string()), const_name()],
            ),
            0..3,
        ),
    )
        .prop_map(|(ty, id, pairs)| {
            let mut s = format!("{ty}: {id}");
            if !pairs.is_empty() {
                let specs: Vec<String> = pairs.iter().map(|(l, v)| format!("{l} => {v}")).collect();
                s.push_str(&format!("[{}]", specs.join(", ")));
            }
            s
        })
}

// ---------- properties ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexed and scan evaluation agree, answer for answer, under every
    /// strategy — over programs with rules, including entity creation.
    #[test]
    fn indexed_equals_scan_across_strategies(
        p in program(),
        q in query_src(),
    ) {
        for strategy in Strategy::ALL {
            prop_assert_eq!(
                answers(&p, &q, strategy, IndexMode::Indexed),
                answers(&p, &q, strategy, IndexMode::Scan),
                "strategy {:?} diverges between index modes on query {} over\n{}",
                strategy, q, p
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same equivalence on a stratified program with one negated rule,
    /// for the strategies that support negation.
    #[test]
    fn indexed_equals_scan_under_negation(
        p in program(),
        neg_label in label_name(),
        neg_value in const_name(),
    ) {
        let mut program = p;
        // flag: X :- t1: X, \+ X[neg_label => neg_value].
        program.push(DefiniteClause::rule_with_negation(
            Atomic::term(Term::typed_var("flag", "X")),
            vec![Atomic::term(Term::typed_var("t1", "X"))],
            vec![Atomic::term(
                Term::molecule(
                    Term::var("X"),
                    vec![LabelSpec::one(
                        neg_label.as_str(),
                        Term::constant(neg_value.as_str()),
                    )],
                )
                .unwrap(),
            )],
        ));
        for strategy in [
            Strategy::BottomUpSemiNaive,
            Strategy::BottomUpNaive,
            Strategy::Direct,
            Strategy::Sld,
        ] {
            prop_assert_eq!(
                answers(&program, "flag: X", strategy, IndexMode::Indexed),
                answers(&program, "flag: X", strategy, IndexMode::Scan),
                "strategy {:?} diverges between index modes under negation on\n{}",
                strategy, program
            );
        }
    }
}

// ---------- the laziness/invalidation contract ----------

/// A chain program over `link` facts with the §2.1 endpoint rules.
fn chain_program(from: usize, to: usize) -> Program {
    use clogic::parser::parse_program;
    let mut text = String::new();
    for i in from..to {
        text.push_str(&format!("node: n{i}[linkto => n{}].\n", i + 1));
    }
    text.push_str(
        "path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].\n\
         path: id(X, Z)[src => X, dest => Z] :- node: X[linkto => Y], \
         path: id(Y, Z)[src => Y, dest => Z].\n",
    );
    parse_program(&text).unwrap()
}

/// Resuming a semi-naive fixpoint with a load delta must *extend* the
/// indices built during the first evaluation — and the extended indices
/// must serve the new tuples, never a stale snapshot of the relation.
#[test]
fn delta_reuse_extends_indices_and_serves_fresh_tuples() {
    let obs = Obs::default();
    let mut opts = SessionOptions {
        obs: obs.clone(),
        ..SessionOptions::default()
    };
    opts.fixpoint.obs = obs.clone();
    let mut s = Session::with_options(opts);

    // Epoch 1: half the chain. The query builds pattern indices while
    // saturating the model.
    s.load_program(chain_program(0, 6));
    let first = s
        .query("path: P[src => n0, dest => D]", Strategy::BottomUpSemiNaive)
        .unwrap();
    assert!(first.complete);
    assert_eq!(first.rows.len(), 6);
    let mid = obs.metrics.snapshot();
    assert!(
        mid.counter("folog.index.builds").unwrap_or(0) > 0,
        "first evaluation builds indices"
    );

    // Epoch 2: the second half arrives. The fixpoint resumes from the
    // saturated model; the same query must see every new reachability
    // fact (a stale index would truncate the answer set at the old
    // relation length).
    s.load_program(chain_program(6, 12));
    let second = s
        .query("path: P[src => n0, dest => D]", Strategy::BottomUpSemiNaive)
        .unwrap();
    assert!(second.complete);
    assert_eq!(second.rows.len(), 12, "resumed run serves the new tuples");
    let end = obs.metrics.snapshot();
    assert!(
        end.counter("folog.index.extends").unwrap_or(0)
            > mid.counter("folog.index.extends").unwrap_or(0),
        "resumed evaluation extends the existing indices in place"
    );
}

/// Repeating a query against an unchanged epoch reuses the saturated
/// model *and* its indices: no new index builds on the second run.
#[test]
fn repeated_queries_reuse_built_indices() {
    let obs = Obs::default();
    let mut opts = SessionOptions {
        obs: obs.clone(),
        ..SessionOptions::default()
    };
    opts.fixpoint.obs = obs.clone();
    let mut s = Session::with_options(opts);
    s.load_program(chain_program(0, 8));

    let a = s
        .query("path: P[src => n0, dest => D]", Strategy::BottomUpSemiNaive)
        .unwrap();
    let builds_after_first = obs
        .metrics
        .snapshot()
        .counter("folog.index.builds")
        .unwrap_or(0);
    let b = s
        .query("path: P[src => n2, dest => D]", Strategy::BottomUpSemiNaive)
        .unwrap();
    assert_eq!(a.rows.len(), 8);
    assert_eq!(b.rows.len(), 6);
    let builds_after_second = obs
        .metrics
        .snapshot()
        .counter("folog.index.builds")
        .unwrap_or(0);
    assert_eq!(
        builds_after_first, builds_after_second,
        "second query answers from the already-indexed model"
    );
}

/// Scan mode really is scan mode: no index counters move.
#[test]
fn scan_mode_builds_nothing() {
    let obs = Obs::default();
    let mut opts = SessionOptions {
        obs: obs.clone(),
        ..SessionOptions::default()
    };
    opts.fixpoint.obs = obs.clone();
    opts.fixpoint.index_mode = IndexMode::Scan;
    let mut s = Session::with_options(opts);
    s.load_program(chain_program(0, 8));
    let r = s
        .query("path: P[src => n0, dest => D]", Strategy::BottomUpSemiNaive)
        .unwrap();
    assert_eq!(r.rows.len(), 8);
    let snap = obs.metrics.snapshot();
    for c in ["builds", "extends", "hits"] {
        assert_eq!(
            snap.counter(&format!("folog.index.{c}")).unwrap_or(0),
            0,
            "scan mode must not touch folog.index.{c}"
        );
    }
}
