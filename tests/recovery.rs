//! Crash recovery: a session persisted through the snapshot + WAL store
//! and killed at **any** I/O boundary must recover to exactly the state
//! an uninterrupted session would have — same program text (hence same
//! `skN` object identities), same epoch, same answers across all six
//! strategies. The chaos sweep drives this literally: it measures the
//! I/O operation count of a clean run, then re-runs the whole load
//! sequence once per (operation, fault-kind) pair with that operation
//! faulted, reopens the store, and checks equivalence.
//!
//! On failure, the offending scenario's [`RecoveryReport`] is dumped to
//! `target/recovery-reports/` so CI can surface it.

use clogic::session::{Session, SessionOptions, Strategy};
use clogic::store::{ChaosStorage, Fault, MemStorage, RecoveryReport, Storage};
use proptest::prelude::*;
use proptest::strategy::Strategy as ProptestStrategy;
use std::io::Write as _;
use std::sync::atomic::Ordering;

const QUERIES: &[&str] = &["t2: X", "t3: O[l2 => V]", "p(X)", "t1: X[l1 => Y]"];

/// Small compaction interval so multi-chunk runs exercise snapshotting,
/// not just appends.
fn opts() -> SessionOptions {
    SessionOptions {
        snapshot_every: Some(2),
        ..SessionOptions::default()
    }
}

/// A fixed load sequence covering facts, molecules, a subtype
/// declaration, rules, and — crucially — entity-creating rules whose
/// head-only variables mint `skN` identities on every load.
fn standard_chunks() -> Vec<String> {
    vec![
        "t1 < t2.\nt1: c1[l1 => c2].\nt3: C[l2 => X] :- t1: X.".to_string(),
        "t1: c3.\np(X) :- t1: X[l1 => Y].".to_string(),
        "t2: c4[l2 => c5].\nt3: D[l1 => X] :- t2: X[l2 => Y].".to_string(),
        "t1: c2[l1 => c4].\nt3: X :- t2: X.".to_string(),
    ]
}

/// An uninterrupted, purely in-memory session loading the same chunks.
fn baseline(chunks: &[String]) -> Session {
    let mut s = Session::with_options(opts());
    for c in chunks {
        s.load(c).expect("baseline load");
    }
    s
}

fn dump_report(name: &str, report: &RecoveryReport, context: &str) {
    let dir = std::path::Path::new("target/recovery-reports");
    let _ = std::fs::create_dir_all(dir);
    if let Ok(mut f) = std::fs::File::create(dir.join(format!("{name}.txt"))) {
        let _ = writeln!(f, "{context}\n\n{report}");
    }
}

/// The recovered session must be indistinguishable from the baseline:
/// identical program text (this pins the `skN` identities), identical
/// epoch, identical answers for every query under every strategy.
fn assert_equivalent(
    recovered: &mut Session,
    uninterrupted: &mut Session,
    report: &RecoveryReport,
    context: &str,
) {
    let check = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        assert_eq!(
            recovered.epoch(),
            uninterrupted.epoch(),
            "epoch after recovery"
        );
        assert_eq!(
            recovered.program().to_string(),
            uninterrupted.program().to_string(),
            "recovered program (and skolem identities)"
        );
        for strategy in Strategy::ALL {
            for q in QUERIES {
                let r = recovered.query(q, strategy).expect("recovered query");
                let u = uninterrupted.query(q, strategy).expect("baseline query");
                assert_eq!(r.rendered(), u.rendered(), "{strategy:?} on {q}");
            }
        }
    }));
    if let Err(payload) = check {
        dump_report("failure", report, context);
        std::panic::resume_unwind(payload);
    }
}

// ---------- plain crash/recover (no fault injection) ----------

#[test]
fn recover_empty_store_is_clean_and_empty() {
    let mem = MemStorage::new();
    let (s, report) = Session::recover_from(Box::new(mem), opts()).unwrap();
    assert_eq!(s.epoch(), 0);
    assert!(report.is_clean(), "{report}");
    assert!(s.is_persistent());
}

#[test]
fn crash_after_every_prefix_recovers_identically() {
    let chunks = standard_chunks();
    for crash_at in 0..=chunks.len() {
        let mem = MemStorage::new();
        {
            let (mut s, _) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
            for c in &chunks[..crash_at] {
                s.load(c).unwrap();
            }
            // The session is dropped here: a crash. Everything loaded was
            // already appended + synced.
        }
        let (mut r, report) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
        assert_eq!(r.epoch(), crash_at as u64, "{report}");
        for c in &chunks[crash_at..] {
            r.load(c).unwrap();
        }
        let mut base = baseline(&chunks);
        assert_equivalent(&mut r, &mut base, &report, &format!("crash_at={crash_at}"));
    }
}

#[test]
fn snapshot_compacts_wal_and_recovery_uses_it() {
    let chunks = standard_chunks();
    let mem = MemStorage::new();
    {
        let (mut s, _) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
        for c in &chunks {
            s.load(c).unwrap();
        }
        s.snapshot().unwrap();
    }
    // After explicit compaction the WAL holds only its header.
    assert_eq!(mem.len("wal.log"), Some(8));
    let (mut r, report) = Session::recover_from(Box::new(mem), opts()).unwrap();
    assert_eq!(report.snapshot_epoch, Some(chunks.len() as u64));
    assert_eq!(report.records_replayed, 0);
    let mut base = baseline(&chunks);
    assert_equivalent(&mut r, &mut base, &report, "post-snapshot recovery");
}

#[test]
fn torn_wal_tail_is_dropped_and_reported() {
    let chunks = standard_chunks();
    let mem = MemStorage::new();
    {
        let (mut s, _) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
        for c in &chunks[..2] {
            s.load(c).unwrap();
        }
    }
    // Tear the log: a partial frame of a third record.
    let mut raw = mem.clone();
    raw.append("wal.log", &[0x55, 0x00, 0x00, 0x00, 0x99]).unwrap();

    let (mut r, report) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
    assert!(!report.corruption.is_empty(), "{report}");
    assert!(report.wal_truncated_to.is_some());
    assert_eq!(r.epoch(), 2);
    // The sealed store keeps working: finish the loads and compare.
    for c in &chunks[2..] {
        r.load(c).unwrap();
    }
    let mut base = baseline(&chunks);
    assert_equivalent(&mut r, &mut base, &report, "torn tail");
}

#[test]
fn recovery_is_total_on_arbitrary_garbage_files() {
    // Pseudo-random byte soup in both files: recovery must return (Ok or
    // a structured error), never panic.
    let mut state = 0x1234_5678u32;
    let mut next = move |len: usize| {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            v.push((state >> 24) as u8);
        }
        v
    };
    for len in [0usize, 1, 7, 8, 9, 40, 200] {
        let mem = MemStorage::new();
        let mut raw = mem.clone();
        raw.write("wal.log", &next(len)).unwrap();
        raw.write("snapshot.clg", &next(len)).unwrap();
        let result = Session::recover_from(Box::new(mem), opts());
        if let Ok((s, report)) = result {
            assert!(!report.is_clean() || s.epoch() == 0);
        }
    }
}

#[test]
fn skolem_identities_survive_recovery() {
    // The entity-creating rule mints sk1; facts loaded *after* recovery
    // must keep minting from the recovered counter, not restart at sk1.
    let mem = MemStorage::new();
    {
        let (mut s, _) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
        s.load("t1: c1.\nt3: C[l2 => X] :- t1: X.").unwrap();
        let text = s.program().to_string();
        assert!(text.contains("sk1"), "expected sk1 in:\n{text}");
    }
    let (mut r, _) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
    r.load("t3: D[l1 => X] :- t1: X.").unwrap();
    let text = r.program().to_string();
    assert!(text.contains("sk1"), "sk1 must survive recovery:\n{text}");
    assert!(
        text.contains("sk2"),
        "post-recovery minting must continue at sk2:\n{text}"
    );

    let mut base = Session::with_options(opts());
    base.load("t1: c1.\nt3: C[l2 => X] :- t1: X.").unwrap();
    base.load("t3: D[l1 => X] :- t1: X.").unwrap();
    assert_eq!(r.program().to_string(), base.program().to_string());
}

#[test]
fn recover_refuses_a_missing_directory() {
    let err = Session::recover("target/recovery-reports/definitely-does-not-exist-xyz");
    assert!(err.is_err());
}

#[test]
fn file_storage_round_trips_on_disk() {
    let dir = std::env::temp_dir().join(format!("clogic-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let chunks = standard_chunks();
    {
        let (mut s, report) = Session::persistent_with_options(&dir, opts()).unwrap();
        assert!(report.is_clean());
        for c in &chunks {
            s.load(c).unwrap();
        }
    }
    let (mut r, report) = Session::recover(&dir).unwrap();
    let mut base = baseline(&chunks);
    assert_equivalent(&mut r, &mut base, &report, "file storage");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------- the chaos sweep: kill persistence at every I/O boundary ----------

/// Runs the load sequence over chaos storage that faults at operation
/// `trigger`, then reopens the underlying store with a clean handle (the
/// "restarted process"), replays, finishes the remaining loads, and
/// checks full equivalence with the uninterrupted baseline.
fn chaos_scenario(chunks: &[String], trigger: u64, fault: Fault) {
    let mem = MemStorage::new();
    let chaos = ChaosStorage::new(mem.clone(), trigger, fault);

    // Phase 1: live until the fault kills a storage operation. A load
    // error is the crash point; the in-memory session is abandoned. An
    // error while opening the store is also a valid crash.
    if let Ok((mut s, _)) = Session::recover_from(Box::new(chaos), opts()) {
        for c in chunks {
            if s.load(c).is_err() {
                break;
            }
        }
    }

    // Phase 2: restart. The clean MemStorage handle shares the files the
    // chaos run left behind.
    let context = format!("fault={fault:?} trigger={trigger}");
    let (mut r, report) = match Session::recover_from(Box::new(mem.clone()), opts()) {
        Ok(v) => v,
        Err(e) => {
            dump_report("failure", &RecoveryReport::default(), &format!("{context}: {e}"));
            panic!("recovery must always succeed after a chaos crash ({context}): {e}");
        }
    };

    // Phase 3: each load is exactly one epoch, so the recovered epoch
    // says which chunks the durable store retained; re-apply the rest.
    let done = r.epoch() as usize;
    assert!(done <= chunks.len(), "recovered epoch out of range ({context})");
    for c in &chunks[done..] {
        if let Err(e) = r.load(c) {
            dump_report("failure", &report, &format!("{context}: reload failed: {e}"));
            panic!("post-recovery load must succeed ({context}): {e}");
        }
    }

    // Phase 4: equivalence.
    let mut base = baseline(chunks);
    assert_equivalent(&mut r, &mut base, &report, &context);
}

#[test]
fn chaos_sweep_kills_every_io_operation_under_every_fault() {
    let chunks = standard_chunks();

    // Measure a clean run's operation count with a never-firing trigger.
    let mem = MemStorage::new();
    let probe = ChaosStorage::new(mem, 0, Fault::Fail);
    let ops = probe.op_counter();
    {
        let (mut s, _) = Session::recover_from(Box::new(probe), opts()).unwrap();
        for c in &chunks {
            s.load(c).unwrap();
        }
    }
    let total = ops.load(Ordering::Relaxed);
    assert!(total > 10, "probe run did too little I/O ({total} ops)");

    // Sweep: every operation of the clean run × every fault kind.
    for fault in Fault::ALL {
        for trigger in 1..=total {
            chaos_scenario(&chunks, trigger, fault);
        }
    }
}

// ---------- proptest: random programs, random splits, random crash ----------

fn const_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["c1", "c2", "c3", "c4", "c5"]).prop_map(str::to_string)
}

fn type_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["t1", "t2", "t3"]).prop_map(str::to_string)
}

fn label_name() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec!["l1", "l2"]).prop_map(str::to_string)
}

fn fact_src() -> impl ProptestStrategy<Value = String> {
    (
        type_name(),
        const_name(),
        prop::collection::vec((label_name(), const_name()), 0..3),
    )
        .prop_map(|(ty, id, pairs)| {
            if pairs.is_empty() {
                format!("{ty}: {id}.")
            } else {
                let specs = pairs
                    .iter()
                    .map(|(l, v)| format!("{l} => {v}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("{ty}: {id}[{specs}].")
            }
        })
}

/// The rule pool from `tests/incremental.rs`, as source text; two of the
/// four mint skolem identities on load.
fn rule_src() -> impl ProptestStrategy<Value = String> {
    prop::sample::select(vec![
        "p(X) :- t1: X[l1 => Y].",
        "t3: X :- t2: X.",
        "t3: C[l2 => X] :- t1: X.",
        "t3: D[l1 => X] :- t2: X[l2 => Y].",
    ])
    .prop_map(str::to_string)
}

fn chunk_src() -> impl ProptestStrategy<Value = String> {
    (
        prop::bool::ANY,
        prop::collection::vec(fact_src(), 1..4),
        prop::collection::vec(rule_src(), 0..3),
    )
        .prop_map(|(subtype, facts, rules)| {
            let mut lines = Vec::new();
            if subtype {
                lines.push("t1 < t2.".to_string());
            }
            lines.extend(facts);
            lines.extend(rules);
            lines.join("\n")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random program split into K loads, killed after a random prefix,
    /// recovered, and finished must equal the uninterrupted K-load
    /// session — answers and skolem identities — for all six strategies.
    #[test]
    fn random_crash_recover_equals_uninterrupted(
        chunks in prop::collection::vec(chunk_src(), 1..5),
        crash_sel in 0usize..64,
    ) {
        let crash_at = crash_sel % (chunks.len() + 1);
        let mem = MemStorage::new();
        {
            let (mut s, _) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
            for c in &chunks[..crash_at] {
                s.load(c).unwrap();
            }
        }
        let (mut r, report) = Session::recover_from(Box::new(mem.clone()), opts()).unwrap();
        prop_assert_eq!(r.epoch(), crash_at as u64);
        for c in &chunks[crash_at..] {
            r.load(c).unwrap();
        }
        let mut base = baseline(&chunks);
        assert_equivalent(&mut r, &mut base, &report, &format!("proptest crash_at={crash_at}"));
    }

    /// Same property under fault injection at a random I/O operation.
    #[test]
    fn random_chaos_crash_recovers(
        chunks in prop::collection::vec(chunk_src(), 1..4),
        trigger in 1u64..40,
        fault_sel in 0usize..4,
    ) {
        chaos_scenario(&chunks, trigger, Fault::ALL[fault_sel]);
    }
}
