//! The worked examples of Chen & Warren (PODS 1989), end to end.
//!
//! X1 — the entity-creating `path` rules of §2.1 with skolemized object
//!      identities; X3 — Example 2's translation; X4 — Example 3's
//!      noun-phrase program, answered by *every* evaluation strategy.

use clogic::session::{Session, SessionOptions, Strategy};
use clogic::Strategy::*;

/// Every strategy that terminates on programs whose rules contain unbound
/// typed variables. Plain SLD diverges on such translated programs — the
/// type axioms `object(X) :- commonnp(X)` recurse through rule bodies —
/// which is exactly the phenomenon tabling and magic sets repair (see
/// `sld_diverges_where_tabling_terminates` below).
const TERMINATING: [Strategy; 5] = [Direct, BottomUpNaive, BottomUpSemiNaive, Tabled, Magic];

const NOUN_PHRASE: &str = r#"
    name: john.
    name: bob.
    determiner: the[num => {singular, plural}, def => definite].
    determiner: a[num => singular, def => indef].
    determiner: all[num => plural, def => indef].
    noun: student[num => singular].
    noun: students[num => plural].
    propernp: X[pers => 3, num => singular, def => definite] :-
        name: X.
    commonnp: np(Det, Noun)[pers => 3, num => N, def => D] :-
        determiner: Det[num => N, def => D],
        noun: Noun[num => N].
    propernp < noun_phrase.
    commonnp < noun_phrase.
"#;

const PATH_EXPLICIT_SKOLEM: &str = r#"
    node: a[linkto => b].
    node: b[linkto => c].
    node: c[linkto => d].
    node: d[linkto => b].   % cycle b -> c -> d -> b
    path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].
    path: id(X, Y)[src => X, dest => Y] :-
        node: X[linkto => Z],
        path: id(Z, Y)[src => Z, dest => Y].
"#;

#[test]
fn x4_noun_phrase_plural_query_all_strategies() {
    // ":- noun_phrase: X[num => plural]." has exactly two answers:
    // np(the, students) and np(all, students) (§4).
    for strategy in TERMINATING {
        let mut s = Session::new();
        s.load(NOUN_PHRASE).unwrap();
        let answers = s
            .query(":- noun_phrase: X[num => plural].", strategy)
            .unwrap();
        assert_eq!(
            answers.rendered(),
            vec!["X = np(all, students)", "X = np(the, students)"],
            "strategy {strategy:?}"
        );
        assert!(answers.complete, "strategy {strategy:?}");
    }
}

#[test]
fn x4_ground_and_negative_queries() {
    let mut s = Session::new();
    s.load(NOUN_PHRASE).unwrap();
    for strategy in TERMINATING {
        assert!(
            s.query("noun_phrase: np(the, students)", strategy)
                .unwrap()
                .holds(),
            "{strategy:?}"
        );
        assert!(
            !s.query("noun_phrase: np(a, students)", strategy)
                .unwrap()
                .holds(),
            "{strategy:?}"
        );
        // determiners are not noun phrases
        assert!(
            !s.query("noun_phrase: the", strategy).unwrap().holds(),
            "{strategy:?}"
        );
        // but they are objects
        assert!(
            s.query("object: the", strategy).unwrap().holds(),
            "{strategy:?}"
        );
    }
}

#[test]
fn x4_propernp_inherits_into_noun_phrase() {
    let mut s = Session::new();
    s.load(NOUN_PHRASE).unwrap();
    for strategy in TERMINATING {
        let r = s
            .query("noun_phrase: john[def => definite]", strategy)
            .unwrap();
        assert!(r.holds(), "{strategy:?}");
    }
}

#[test]
fn x1_path_objects_identified_by_endpoints() {
    // With identities id(X, Y), the cyclic graph has finitely many path
    // objects: one per connected (src, dest) pair.
    let fixpoint_strategies = [BottomUpNaive, BottomUpSemiNaive, Tabled, Magic];
    for strategy in fixpoint_strategies {
        let mut s = Session::new();
        s.load(PATH_EXPLICIT_SKOLEM).unwrap();
        let r = s.query("path: P[src => a, dest => D]", strategy).unwrap();
        let ps: Vec<String> = r.rows.iter().map(|row| row.get("P").unwrap()).collect();
        // a reaches b, c, d
        assert_eq!(ps, vec!["id(a, b)", "id(a, c)", "id(a, d)"], "{strategy:?}");
        // the cycle b→c→d→b gives paths both ways
        assert!(s
            .query("path: id(b, b)[src => b, dest => b]", strategy)
            .unwrap()
            .holds());
        assert!(s
            .query("path: id(d, c)[src => d, dest => c]", strategy)
            .unwrap()
            .holds());
        // but nothing reaches a
        assert!(!s.query("path: P[dest => a]", strategy).unwrap().holds());
    }
}

#[test]
fn x1_auto_skolemization_of_the_paper_rules() {
    // Loading the original rules (existential object variable C) with the
    // high-level interface: the session skolemizes C on the variables it
    // is existentially dependent upon.
    let src = r#"
        node: a[linkto => b].
        node: b[linkto => c].
        path: C[src => X, dest => Y] :- node: X[linkto => Y].
        path: C[src => X, dest => Y] :-
            node: X[linkto => Z],
            path: CO[src => Z, dest => Y].
    "#;
    let mut s = Session::new();
    s.load(src).unwrap();
    // Both rules had C (and the second also CO as a body-only var; only C
    // is head-only and skolemized).
    assert_eq!(s.skolem_reports().len(), 2);
    for report in s.skolem_reports() {
        assert_eq!(report.spec.var, clogic::core::sym("C"));
        assert_eq!(
            report.spec.deps,
            vec![clogic::core::sym("X"), clogic::core::sym("Y")]
        );
    }
    // And the program runs: a reaches b and c.
    let r = s
        .query("path: P[src => a, dest => D]", BottomUpSemiNaive)
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn x1_identity_choice_changes_object_count() {
    // §2.1: path objects determined by endpoints vs by endpoints+length.
    // On a 4-chain with a shortcut edge there are two routes a→c: same
    // endpoints, different lengths.
    let base = r#"
        node: a[linkto => b].
        node: b[linkto => c].
        node: a[linkto => c].   % shortcut
    "#;
    let by_ends = r#"
        path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].
        path: id(X, Y)[src => X, dest => Y] :-
            node: X[linkto => Z], path: id(Z, Y)[src => Z, dest => Y].
    "#;
    let by_ends_and_length = r#"
        path: id(X, Y, 1)[src => X, dest => Y, length => 1] :- node: X[linkto => Y].
        path: id(X, Y, L)[src => X, dest => Y, length => L] :-
            node: X[linkto => Z],
            path: id(Z, Y, LO)[src => Z, dest => Y, length => LO],
            L is LO + 1.
    "#;
    let mut s1 = Session::new();
    s1.load(&format!("{base}{by_ends}")).unwrap();
    let ends = s1
        .query("path: P[src => a, dest => c]", BottomUpSemiNaive)
        .unwrap();
    assert_eq!(ends.rows.len(), 1); // one object id(a,c)

    let mut s2 = Session::new();
    s2.load(&format!("{base}{by_ends_and_length}")).unwrap();
    let with_len = s2
        .query("path: P[src => a, dest => c]", BottomUpSemiNaive)
        .unwrap();
    assert_eq!(with_len.rows.len(), 2); // id(a,c,1) and id(a,c,2)
}

#[test]
fn x3_example_2_translation_golden() {
    use clogic::core::transform::Transformer;
    use clogic_parser::parse_term;
    let t = parse_term("determiner: the[num => {singular, plural}, def => definite]").unwrap();
    let conj = Transformer::new().atomic(&clogic::core::Atomic::term(t));
    let shown: Vec<String> = conj.iter().map(|a| a.to_string()).collect();
    assert_eq!(
        shown,
        vec![
            "determiner(the)",
            "object(singular)",
            "num(the, singular)",
            "object(plural)",
            "num(the, plural)",
            "object(definite)",
            "def(the, definite)",
        ]
    );
}

#[test]
fn path_with_lengths_on_acyclic_graph_all_strategies() {
    let src = r#"
        node: a[linkto => b].
        node: b[linkto => c].
        node: c[linkto => d].
        path: id(X, Y)[src => X, dest => Y, length => 1] :- node: X[linkto => Y].
        path: id(X, Y)[src => X, dest => Y, length => L] :-
            node: X[linkto => Z],
            path: id(Z, Y)[src => Z, dest => Y, length => LO],
            L is LO + 1.
    "#;
    // Note: id(X, Y) identities with *multi-valued* length: on an acyclic
    // graph each pair has one length here.
    for strategy in TERMINATING {
        let mut s = Session::new();
        s.load(src).unwrap();
        let r = s
            .query("path: P[src => a, dest => d, length => L]", strategy)
            .unwrap();
        assert_eq!(r.rows.len(), 1, "{strategy:?}");
        assert_eq!(r.rows[0].get("L").unwrap(), "3", "{strategy:?}");
        assert_eq!(r.rows[0].get("P").unwrap(), "id(a, d)", "{strategy:?}");
    }
}

#[test]
fn optimized_and_unoptimized_translations_agree() {
    let mut plain = Session::with_options(SessionOptions {
        optimize_translation: false,
        ..SessionOptions::default()
    });
    plain.load(NOUN_PHRASE).unwrap();
    let mut optimized = Session::new();
    optimized.load(NOUN_PHRASE).unwrap();
    for query in [
        ":- noun_phrase: X[num => plural].",
        ":- propernp: X.",
        ":- object: X.",
        ":- commonnp: X[def => D].",
    ] {
        for strategy in [BottomUpNaive, BottomUpSemiNaive, Tabled, Magic] {
            let a = plain.query(query, strategy).unwrap();
            let b = optimized.query(query, strategy).unwrap();
            assert_eq!(a.rows, b.rows, "{query} under {strategy:?}");
        }
    }
    // and the optimized program is strictly smaller
    assert!(optimized.translated().len() < plain.translated().len());
}

#[test]
fn sld_diverges_where_tabling_terminates() {
    // The *literal* translated grammar is left-recursive through the type
    // axioms: object(N) resolves via object(X) :- commonnp(X), whose body
    // asks object(N') again. Depth-first SLD cannot exhaust that tree.
    // Tabling repairs it — and so does the optimizer's rule 3 (pruning
    // redundant body object-checks), after which even plain SLD
    // terminates on the paper's grammar.
    use clogic::session::SessionOptions;
    use folog::SldOptions;
    let tight_sld = SldOptions {
        max_depth: Some(200),
        max_steps: Some(100_000),
        ..SldOptions::default()
    };
    let mut literal = Session::with_options(SessionOptions {
        optimize_translation: false,
        sld: tight_sld.clone(),
        ..SessionOptions::default()
    });
    literal.load(NOUN_PHRASE).unwrap();
    let sld = literal
        .query(":- noun_phrase: X[num => plural].", Sld)
        .unwrap();
    assert!(
        !sld.complete,
        "plain SLD should hit its limits on the literal translation"
    );
    let tabled = literal
        .query(":- noun_phrase: X[num => plural].", Tabled)
        .unwrap();
    assert!(tabled.complete);
    assert_eq!(tabled.rows.len(), 2);

    let mut optimized = Session::with_options(SessionOptions {
        sld: tight_sld,
        ..SessionOptions::default()
    });
    optimized.load(NOUN_PHRASE).unwrap();
    let sld_opt = optimized
        .query(":- noun_phrase: X[num => plural].", Sld)
        .unwrap();
    assert!(
        sld_opt.complete,
        "rule 3 makes SLD terminate on the grammar"
    );
    assert_eq!(sld_opt.rows.len(), 2);
}

#[test]
fn sld_terminates_on_extensional_databases() {
    // Without intensional types the translated program is a flat fact
    // base plus non-recursive axioms: SLD is complete there.
    let src = "path: p1[src => a, dest => b].
path: p2[src => c, dest => d].";
    let mut s = Session::new();
    s.load(src).unwrap();
    let r = s.query("path: X[src => S, dest => D]", Sld).unwrap();
    assert!(r.complete);
    assert_eq!(r.rows.len(), 2);
}
