//! Multi-tenant serving under chaos: one `SessionManager` multiplexing
//! many named durable sessions must keep tenants **isolated** — a tenant
//! whose storage is down is served read-only with its breaker surfaced,
//! while neighbors on healthy storage see zero retries, zero sheds, and
//! answers identical to a serial session — and its eviction/recovery
//! cycle must be invisible: `evict ∘ recover ≡ never-evicted`, answers
//! and skolem identities included, at **every** fault boundary.
//!
//! Four layers are exercised together:
//!
//! * per-tenant fault isolation (namespaced metrics, per-tenant retry
//!   budget and circuit breaker);
//! * the eviction-safety predicate (`Session::fully_persisted`): a
//!   mid-outage tenant defers eviction rather than losing unlogged
//!   loads, and heals by compaction once the disk returns;
//! * LRU eviction bounding resident sessions at capacity while the
//!   tenant *population* stays unbounded;
//! * the length-prefixed JSON wire protocol over a real `TcpFront`.
//!
//! The chaos sweep mirrors `tests/recovery.rs` and `tests/serve.rs`:
//! measure a clean run's I/O operation count with a pure-counter chaos
//! wrapper, then re-run the whole load→evict→recover scenario once per
//! (fault kind, trigger) pair.

use clogic::obs::{Json, Obs};
use clogic::session::{Session, SessionOptions, Strategy};
use clogic::store::{ChaosStorage, Fault, MemStorage, RetryPolicy, Storage};
use clogic_serve::protocol::get;
use clogic_serve::{
    Client, ManagerOptions, Request, RequestOp, SessionManager, StorageFactory, TcpFront,
    TcpFrontOptions, TenantState,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const QUERIES: &[&str] = &["t2: X", "t3: O[l2 => V]", "p(X)", "t1: X[l1 => Y]"];

/// Same shape as the serve/recovery suites: facts, molecules, a subtype
/// declaration, rules, and an entity-creating rule whose head-only
/// variable mints `skN` identities on load — so equivalence checks also
/// pin skolem identity across eviction and recovery.
fn chunks() -> Vec<String> {
    vec![
        "t1 < t2.\nt1: c1[l1 => c2].\nt3: C[l2 => X] :- t1: X.".to_string(),
        "t1: c3.\np(X) :- t1: X[l1 => Y].".to_string(),
        "t2: c4[l2 => c5].\nt3: D[l1 => X] :- t2: X[l2 => Y].".to_string(),
        "t1: c2[l1 => c4].\nt3: X :- t2: X.".to_string(),
    ]
}

fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(4),
        breaker_threshold: 2,
        probe_after: 2,
    }
}

fn manager_opts(obs: &Obs, capacity: usize) -> ManagerOptions {
    ManagerOptions {
        capacity,
        retry: fast_policy(),
        session: SessionOptions {
            snapshot_every: Some(2),
            obs: obs.clone(),
            ..SessionOptions::default()
        },
        sleeper: Arc::new(|_| {}),
    }
}

/// A serial, non-persistent session over the same load sequence — the
/// ground truth every tenant must match.
fn serial(loads: &[String]) -> Session {
    let mut s = Session::with_options(SessionOptions {
        snapshot_every: Some(2),
        ..SessionOptions::default()
    });
    for c in loads {
        s.load(c).expect("serial load");
    }
    s
}

type Stores = Arc<Mutex<HashMap<String, MemStorage>>>;

/// A factory handing each tenant its own `MemStorage`, stable across
/// evictions (clones share bytes).
fn mem_factory(stores: &Stores) -> StorageFactory {
    let stores = Arc::clone(stores);
    Arc::new(move |name| {
        let mut stores = stores.lock().unwrap();
        Ok(Box::new(stores.entry(name.to_string()).or_default().clone()) as Box<dyn Storage>)
    })
}

/// Ops a clean open + first-chunk load costs through the manager,
/// measured with a pure-counter chaos — so outage triggers can be placed
/// right after the first load without hardcoding the durability
/// protocol's op sequence.
fn first_load_clean_ops(chunks: &[String]) -> u64 {
    let chaos = ChaosStorage::new(MemStorage::new(), 0, Fault::Fail);
    let counter = chaos.op_counter();
    let slot = Arc::new(Mutex::new(Some(Box::new(chaos) as Box<dyn Storage>)));
    let factory: StorageFactory =
        Arc::new(move |_| Ok(slot.lock().unwrap().take().expect("probe tenant opens once")));
    let mgr = SessionManager::new(factory, manager_opts(&Obs::new(), 4));
    mgr.load("probe", &chunks[0]).expect("clean probe load");
    counter.load(Ordering::Relaxed)
}

/// Every strategy's answers through the manager must equal the serial
/// session's — program text too, which pins the skolem identities.
fn assert_tenant_equals_serial(
    mgr: &SessionManager,
    name: &str,
    base: &mut Session,
    context: &str,
) {
    {
        let pin = mgr
            .open(name)
            .unwrap_or_else(|e| panic!("open {name} ({context}): {e}"));
        let s = pin.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(s.epoch(), base.epoch(), "epoch ({context})");
        assert_eq!(
            s.program().to_string(),
            base.program().to_string(),
            "program and skolem identities ({context})"
        );
    }
    for strategy in Strategy::ALL {
        for q in QUERIES {
            let served = mgr
                .query(name, q, strategy)
                .unwrap_or_else(|e| panic!("{strategy:?} on {q} ({context}): {e}"));
            let expected = base.query(q, strategy).expect("serial query");
            assert_eq!(
                served.rendered(),
                expected.rendered(),
                "{strategy:?} on {q} ({context})"
            );
        }
    }
}

/// The acceptance scenario: one tenant's storage goes down permanently
/// after its first load; four healthy neighbors load and query through
/// the same manager **concurrently**. The sick tenant keeps answering
/// read-only with its breaker surfaced in the `LoadReport`, its status
/// row, and its metric namespace; every healthy tenant persists every
/// load, records zero retries, and answers exactly like a serial
/// session.
#[test]
fn sick_tenant_is_read_only_while_neighby_tenants_serve_unaffected() {
    let chunks = chunks();
    let healthy: Vec<String> = (0..4).map(|i| format!("h{i}")).collect();
    let trigger = first_load_clean_ops(&chunks) + 1;

    let obs = Obs::new();
    let stores: Stores = Arc::new(Mutex::new(HashMap::new()));
    let mem = mem_factory(&stores);
    let factory: StorageFactory = Arc::new(move |name| {
        let storage = mem(name)?;
        if name == "sick" {
            // Clean through the first load, then a permanent outage.
            Ok(
                Box::new(ChaosStorage::intermittent(storage, trigger, u64::MAX, Fault::Fail))
                    as Box<dyn Storage>,
            )
        } else {
            Ok(storage)
        }
    });
    let mgr = SessionManager::new(factory, manager_opts(&obs, 16));

    // Everyone's first load persists; the outage starts after.
    for name in healthy.iter().map(String::as_str).chain(["sick"]) {
        let report = mgr.load(name, &chunks[0]).unwrap();
        assert!(report.persisted(), "first load of {name} should persist");
        assert!(!report.breaker_open);
    }

    std::thread::scope(|scope| {
        let mgr = &mgr;
        let chunks = &chunks;
        scope.spawn(move || {
            let mut last = None;
            for c in &chunks[1..] {
                last = Some(mgr.load("sick", c).unwrap());
            }
            let last = last.expect("three outage loads");
            assert!(
                last.store_error.is_some(),
                "the outage must surface in the LoadReport"
            );
            assert!(
                last.breaker_open,
                "the breaker must open once the retry budget drains"
            );
            // Read-only service: the unpersisted loads still answer,
            // identically to a serial session, under every strategy.
            let mut base = serial(chunks);
            for strategy in Strategy::ALL {
                for q in QUERIES {
                    let served = mgr.query("sick", q, strategy).unwrap();
                    let expected = base.query(q, strategy).unwrap();
                    assert_eq!(served.rendered(), expected.rendered(), "sick {strategy:?} {q}");
                }
            }
        });
        for name in &healthy {
            scope.spawn(move || {
                for c in &chunks[1..] {
                    let report = mgr.load(name, c).unwrap();
                    assert!(report.persisted(), "healthy {name} must persist every load");
                    assert!(!report.breaker_open, "healthy {name} breaker must stay closed");
                }
                let mut base = serial(chunks);
                for strategy in Strategy::ALL {
                    for q in QUERIES {
                        let served = mgr.query(name, q, strategy).unwrap();
                        let expected = base.query(q, strategy).unwrap();
                        assert_eq!(
                            served.rendered(),
                            expected.rendered(),
                            "{name} {strategy:?} {q}"
                        );
                    }
                }
            });
        }
    });

    // Fault isolation on the books: the sick tenant's namespace shows
    // the open breaker; every healthy namespace shows zero retries and
    // zero exhaustions; nothing was shed anywhere.
    let snap = obs.metrics.snapshot();
    assert!(
        snap.counter("tenant.sick.serve.breaker_open").unwrap_or(0) >= 1,
        "sick breaker-open transitions should be counted"
    );
    assert_eq!(
        snap.gauge("tenant.sick.store.breaker.open"),
        Some(1),
        "sick breaker gauge should read open"
    );
    assert!(snap.counter("manager.persist_failures").unwrap_or(0) >= 1);
    for name in &healthy {
        assert_eq!(
            snap.counter(&format!("tenant.{name}.serve.retry")).unwrap_or(0),
            0,
            "healthy {name} must record zero retries"
        );
        assert_eq!(
            snap.counter(&format!("tenant.{name}.store.retry.exhausted"))
                .unwrap_or(0),
            0,
            "healthy {name} must record zero retry exhaustions"
        );
    }
    assert_eq!(snap.counter("serve.shed").unwrap_or(0), 0, "zero sheds");

    // And in the status listing.
    let status: HashMap<String, (TenantState, Option<bool>)> = mgr
        .tenants()
        .into_iter()
        .map(|t| (t.name.clone(), (t.state, t.breaker_open)))
        .collect();
    assert_eq!(status["sick"].0, TenantState::Live);
    assert_eq!(status["sick"].1, Some(true), "status must surface the breaker");
    for name in &healthy {
        assert_eq!(status[name.as_str()].1, Some(false));
    }
}

/// A mid-outage tenant must refuse (defer) eviction — its in-memory
/// state is ahead of its log — and, once the disk heals, persist the
/// backlog by compaction so eviction becomes safe and recovery loses
/// nothing.
#[test]
fn eviction_mid_outage_is_deferred_until_the_disk_heals() {
    let chunks = chunks();
    let trigger = first_load_clean_ops(&chunks) + 1;
    const BURST: u64 = 9;

    let obs = Obs::new();
    let stores: Stores = Arc::new(Mutex::new(HashMap::new()));
    let mem = mem_factory(&stores);
    let factory: StorageFactory = Arc::new(move |name| {
        let storage = mem(name)?;
        if name == "t" {
            Ok(Box::new(ChaosStorage::intermittent(storage, trigger, BURST, Fault::Fail))
                as Box<dyn Storage>)
        } else {
            Ok(storage)
        }
    });
    let mgr = SessionManager::new(factory, manager_opts(&obs, 8));

    let mut applied: Vec<String> = Vec::new();
    let report = mgr.load("t", &chunks[0]).unwrap();
    applied.push(chunks[0].clone());
    assert!(report.persisted());

    // The outage begins: this load lands in memory but not in the log.
    let report = mgr.load("t", &chunks[1]).unwrap();
    applied.push(chunks[1].clone());
    assert!(!report.persisted(), "mid-outage load must report unpersisted");

    // Eviction must defer — dropping the session now would lose the
    // unlogged load.
    assert!(!mgr.evict("t").unwrap(), "mid-outage eviction must defer");
    let deferrals = obs
        .metrics
        .snapshot()
        .counter("manager.eviction_deferrals")
        .unwrap_or(0);
    assert!(deferrals >= 1);
    assert_eq!(
        mgr.tenants()
            .into_iter()
            .find(|t| t.name == "t")
            .unwrap()
            .state,
        TenantState::Live,
        "a deferred tenant stays resident"
    );

    // Heartbeat loads drain the fault burst; once the disk heals, the
    // gap left by the outage is persisted by compaction.
    let mut healed = false;
    for i in 0..50 {
        let src = format!("hb{i}: beat.");
        let report = mgr.load("t", &src).unwrap();
        applied.push(src);
        if report.persisted() && !report.breaker_open {
            healed = true;
            break;
        }
    }
    assert!(healed, "the burst should drain within the heartbeat budget");

    // Now eviction succeeds, and lazy recovery replays everything — the
    // mid-outage load included, with identical answers and skolems.
    assert!(mgr.evict("t").unwrap(), "post-heal eviction must proceed");
    assert_eq!(
        mgr.tenants()
            .into_iter()
            .find(|t| t.name == "t")
            .unwrap()
            .state,
        TenantState::Evicted
    );
    let mut base = serial(&applied);
    assert_tenant_equals_serial(&mgr, "t", &mut base, "post-outage recovery");
}

/// Ops a clean open + all-chunk load + explicit evict costs, for the
/// fault-boundary sweep below.
fn scenario_clean_ops(chunks: &[String]) -> u64 {
    let chaos = ChaosStorage::new(MemStorage::new(), 0, Fault::Fail);
    let counter = chaos.op_counter();
    let slot = Arc::new(Mutex::new(Some(Box::new(chaos) as Box<dyn Storage>)));
    let factory: StorageFactory =
        Arc::new(move |_| Ok(slot.lock().unwrap().take().expect("probe tenant opens once")));
    let mgr = SessionManager::new(factory, manager_opts(&Obs::new(), 4));
    for c in chunks {
        mgr.load("t", c).expect("clean probe load");
    }
    assert!(mgr.evict("t").expect("clean probe evict"));
    counter.load(Ordering::Relaxed)
}

/// One sweep cell: load every chunk with a one-shot `fault` at operation
/// `trigger` (absorbed by the per-tenant retry layer), evict, recover
/// lazily, and demand the recovered tenant is indistinguishable from a
/// session that was never evicted. Note the factory re-arms the fault
/// for the recovery's own storage instance, so late triggers exercise
/// fault-during-recovery too.
fn assert_evict_recover_equivalent(fault: Fault, trigger: u64) {
    let chunks = chunks();
    let context = format!("{fault:?}@{trigger}");
    let stores: Stores = Arc::new(Mutex::new(HashMap::new()));
    let mem = mem_factory(&stores);
    let factory: StorageFactory = Arc::new(move |name| {
        let storage = mem(name)?;
        Ok(Box::new(ChaosStorage::new(storage, trigger, fault)) as Box<dyn Storage>)
    });
    let obs = Obs::new();
    let mgr = SessionManager::new(factory, manager_opts(&obs, 4));

    for c in &chunks {
        mgr.load("t", c)
            .unwrap_or_else(|e| panic!("load under {context}: {e}"));
    }
    let evicted = mgr
        .evict("t")
        .unwrap_or_else(|e| panic!("evict under {context}: {e}"));
    assert!(
        evicted,
        "a one-shot fault within the retry budget must not defer eviction ({context})"
    );
    assert_eq!(
        mgr.tenants()
            .into_iter()
            .find(|t| t.name == "t")
            .unwrap()
            .state,
        TenantState::Evicted,
        "{context}"
    );

    let mut base = serial(&chunks);
    assert_tenant_equals_serial(&mgr, "t", &mut base, &context);
}

/// evict ∘ recover ≡ never-evicted at **every** I/O boundary of the
/// scenario, for every fault kind.
#[test]
fn evict_recover_equals_never_evicted_across_all_fault_boundaries() {
    let total = scenario_clean_ops(&chunks());
    assert!(total >= 10, "probe sanity: only {total} clean ops");
    for fault in Fault::ALL {
        for trigger in 1..=total {
            assert_evict_recover_equivalent(fault, trigger);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same property at random fault points, including triggers past
    /// the clean-run count (faults landing during recovery itself).
    #[test]
    fn evict_recover_equivalence_holds_at_random_fault_points(
        fault_idx in 0usize..Fault::ALL.len(),
        trigger in 1u64..64,
    ) {
        assert_evict_recover_equivalent(Fault::ALL[fault_idx], trigger);
    }
}

/// LRU eviction bounds *resident* sessions at capacity while the tenant
/// population grows unbounded, and every cold tenant still answers
/// (recovering transparently on first use).
#[test]
fn lru_eviction_bounds_resident_sessions_at_capacity() {
    const CAPACITY: usize = 4;
    const TENANTS: usize = 20;
    let obs = Obs::new();
    let stores: Stores = Arc::new(Mutex::new(HashMap::new()));
    let mgr = SessionManager::new(mem_factory(&stores), manager_opts(&obs, CAPACITY));

    for i in 0..TENANTS {
        mgr.load(&format!("tenant{i:02}"), &format!("t{i}: c{i}."))
            .unwrap();
        assert!(
            mgr.resident() <= CAPACITY,
            "resident {} exceeds capacity after tenant{i:02}",
            mgr.resident()
        );
    }
    assert_eq!(mgr.tenants().len(), TENANTS);
    let snap = obs.metrics.snapshot();
    assert!(snap.gauge("manager.sessions.live").unwrap_or(0) <= CAPACITY as u64);
    assert!(
        snap.counter("manager.evictions").unwrap_or(0) >= (TENANTS - CAPACITY) as u64,
        "idle tenants beyond capacity must have been evicted"
    );

    // Every tenant — cold or warm — still answers correctly.
    for i in 0..TENANTS {
        let answers = mgr
            .query(&format!("tenant{i:02}"), &format!("t{i}: X"), Strategy::Sld)
            .unwrap();
        assert_eq!(answers.rows.len(), 1, "tenant{i:02}");
        assert!(mgr.resident() <= CAPACITY);
    }
}

/// The wire protocol end to end: a real `TcpFront` on an ephemeral port,
/// loads and queries framed over TCP, status listing, structured errors
/// that keep the connection alive, and several concurrent connections.
#[test]
fn tcp_front_round_trips_load_query_status_and_errors() {
    let chunks = chunks();
    let obs = Obs::new();
    let stores: Stores = Arc::new(Mutex::new(HashMap::new()));
    let mgr = Arc::new(SessionManager::new(
        mem_factory(&stores),
        manager_opts(&obs, 8),
    ));
    let front = TcpFront::start(Arc::clone(&mgr), "127.0.0.1:0", TcpFrontOptions::default())
        .expect("bind ephemeral port");
    let mut client = Client::connect(front.addr()).expect("connect");

    // Load every chunk over the wire.
    for (i, c) in chunks.iter().enumerate() {
        let resp = client
            .request(&Request {
                tenant: "wire".into(),
                op: RequestOp::Load { src: c.clone() },
            })
            .unwrap();
        assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "load {i}: {resp}");
        assert_eq!(get(&resp, "epoch"), Some(&Json::U64(i as u64 + 1)));
        assert_eq!(get(&resp, "persisted"), Some(&Json::Bool(true)));
        assert_eq!(get(&resp, "breaker_open"), Some(&Json::Bool(false)));
    }

    // Query under every strategy; bindings must match the serial session
    // exactly, through the JSON round trip.
    let mut base = serial(&chunks);
    for strategy in Strategy::ALL {
        for q in QUERIES {
            let resp = client
                .request(&Request {
                    tenant: "wire".into(),
                    op: RequestOp::Query {
                        src: q.to_string(),
                        strategy,
                        deadline_ms: Some(30_000),
                    },
                })
                .unwrap();
            assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "{strategy:?} {q}: {resp}");
            assert_eq!(get(&resp, "complete"), Some(&Json::Bool(true)));
            let Some(Json::Array(rows)) = get(&resp, "rows") else {
                panic!("rows missing in {resp}");
            };
            let got: Vec<Vec<(String, String)>> = rows
                .iter()
                .map(|row| match row {
                    Json::Object(fields) => fields
                        .iter()
                        .map(|(k, v)| match v {
                            Json::Str(s) => (k.clone(), s.clone()),
                            other => (k.clone(), other.to_string()),
                        })
                        .collect(),
                    other => panic!("row is not an object: {other}"),
                })
                .collect();
            let expected: Vec<Vec<(String, String)>> = base
                .query(q, strategy)
                .unwrap()
                .rows
                .iter()
                .map(|row| {
                    row.bindings
                        .iter()
                        .map(|(var, term)| (var.to_string(), term.to_string()))
                        .collect()
                })
                .collect();
            assert_eq!(got, expected, "{strategy:?} on {q}");
        }
    }

    // Status lists the tenant as live.
    let resp = client
        .request(&Request {
            tenant: "wire".into(),
            op: RequestOp::Status,
        })
        .unwrap();
    assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)));
    let Some(Json::Array(tenants)) = get(&resp, "tenants") else {
        panic!("tenants missing in {resp}");
    };
    assert!(
        tenants.iter().any(|t| get(t, "name") == Some(&Json::Str("wire".into()))
            && get(t, "state") == Some(&Json::Str("live".into()))),
        "status should list tenant `wire` as live: {resp}"
    );

    // A bad tenant name is a structured error and the connection
    // survives it.
    let resp = client
        .request(&Request {
            tenant: "no/pe".into(),
            op: RequestOp::Load { src: "t: a.".into() },
        })
        .unwrap();
    assert_eq!(get(&resp, "ok"), Some(&Json::Bool(false)));
    match get(&resp, "error") {
        Some(Json::Str(msg)) => assert!(msg.contains("invalid tenant name"), "{msg}"),
        other => panic!("expected error string, got {other:?}"),
    }
    let resp = client
        .request(&Request {
            tenant: "wire".into(),
            op: RequestOp::Status,
        })
        .unwrap();
    assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "connection must survive");

    // Several concurrent connections, distinct tenants.
    let addr = front.addr();
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let resp = c
                    .request(&Request {
                        tenant: format!("par{t}"),
                        op: RequestOp::Load {
                            src: format!("t: a{t}."),
                        },
                    })
                    .unwrap();
                assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "par{t}: {resp}");
                for _ in 0..5 {
                    let resp = c
                        .request(&Request {
                            tenant: format!("par{t}"),
                            op: RequestOp::Query {
                                src: "t: X".into(),
                                strategy: Strategy::Sld,
                                deadline_ms: None,
                            },
                        })
                        .unwrap();
                    assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "par{t}: {resp}");
                    let Some(Json::Array(rows)) = get(&resp, "rows") else {
                        panic!("rows missing: {resp}");
                    };
                    assert_eq!(rows.len(), 1, "par{t}");
                }
            });
        }
    });

    front.shutdown();
}
