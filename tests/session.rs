//! The `Session` facade: option knobs, caching/invalidating, cumulative
//! loads, error surfaces.

use clogic::session::{Session, SessionError, SessionOptions, Strategy};

#[test]
fn cumulative_loads_accumulate() {
    let mut s = Session::new();
    s.load("person: john.").unwrap();
    assert_eq!(
        s.query("person: X", Strategy::Direct).unwrap().rows.len(),
        1
    );
    s.load("person: mary.\nstudent < person.\nstudent: ada.")
        .unwrap();
    // caches invalidated: new facts and the new subtype both visible
    for strategy in Strategy::ALL {
        let r = s.query("person: X", strategy).unwrap();
        assert_eq!(r.rows.len(), 3, "{strategy:?}");
    }
}

#[test]
fn queries_in_loaded_source_are_rejected() {
    let mut s = Session::new();
    let err = s.load("person: john.\n:- person: X.").unwrap_err();
    assert!(matches!(err, SessionError::Parse(_)));
    assert!(err.to_string().contains("Session::query"), "{err}");
}

#[test]
fn parse_errors_carry_positions() {
    let mut s = Session::new();
    let err = s.load("person: john[").unwrap_err();
    let shown = err.to_string();
    assert!(shown.contains("1:"), "{shown}");
}

#[test]
fn auto_skolemize_can_be_disabled() {
    let src = "node: a[linkto => b].\npath: C[src => X] :- node: X[linkto => Y].";
    let mut on = Session::new();
    on.load(src).unwrap();
    assert_eq!(on.skolem_reports().len(), 1);
    assert!(on.program().clauses[1].head.to_string().contains("sk1("));

    let mut off = Session::with_options(SessionOptions {
        auto_skolemize: false,
        ..SessionOptions::default()
    });
    off.load(src).unwrap();
    assert!(off.skolem_reports().is_empty());
    // the rule still carries its existential variable C…
    assert!(!off.program().clauses[1].head_only_vars().is_empty());
    // …so bottom-up evaluation reports the non-ground derivation.
    let err = off
        .query("path: P[src => S]", Strategy::BottomUpSemiNaive)
        .unwrap_err();
    assert!(matches!(
        err,
        SessionError::Eval(folog::bottom_up::EvalError::NonGroundDerivation(_))
    ));
}

#[test]
fn optimize_translation_toggle_changes_program_not_answers() {
    let src = "noun: students[num => plural].\n\
               np: X[num => N] :- noun: X[num => N].";
    let mut optimized = Session::new();
    optimized.load(src).unwrap();
    let mut plain = Session::with_options(SessionOptions {
        optimize_translation: false,
        ..SessionOptions::default()
    });
    plain.load(src).unwrap();
    assert!(optimized.translated().atom_count() < plain.translated().atom_count());
    for strategy in [
        Strategy::BottomUpSemiNaive,
        Strategy::Tabled,
        Strategy::Magic,
    ] {
        assert_eq!(
            optimized
                .query("np: X[num => plural]", strategy)
                .unwrap()
                .rows,
            plain.query("np: X[num => plural]", strategy).unwrap().rows,
            "{strategy:?}"
        );
    }
}

#[test]
fn answer_row_accessors() {
    let mut s = Session::new();
    s.load("person: ada[age => 36].").unwrap();
    let r = s.query("person: X[age => A]", Strategy::Direct).unwrap();
    assert!(r.holds());
    let row = &r.rows[0];
    assert_eq!(row.get("X"), Some("ada".to_string()));
    assert_eq!(row.get("A"), Some("36".to_string()));
    assert_eq!(row.get("Nope"), None);
    assert_eq!(row.to_string(), "A = 36, X = ada");
    // ground query → a single "yes" row
    let yes = s.query("person: ada", Strategy::Direct).unwrap();
    assert_eq!(yes.rendered(), vec!["yes"]);
}

#[test]
fn builtin_errors_surface() {
    let mut s = Session::new();
    s.load("n: 1.").unwrap();
    let err = s.query("X is Y + 1", Strategy::Sld).unwrap_err();
    assert!(matches!(err, SessionError::Builtin(_)), "{err}");
}

#[test]
fn load_program_ast_directly() {
    use clogic::core::{Atomic, Program, Term};
    let mut p = Program::new();
    p.push_fact(Atomic::term(Term::typed_constant("color", "red")));
    let mut s = Session::new();
    s.load_program(p);
    assert!(s.query("color: red", Strategy::Magic).unwrap().holds());
}

#[test]
fn translated_is_cached_until_invalidated() {
    let mut s = Session::new();
    s.load("a: x.").unwrap();
    let before = s.translated().len();
    // pure query does not change the program
    let _ = s.query("a: x", Strategy::Tabled).unwrap();
    assert_eq!(s.translated().len(), before);
    s.load("b: y.").unwrap();
    assert!(s.translated().len() > before);
}
