//! The resource governor: every strategy degrades gracefully — partial
//! answers plus a structured report — instead of hanging or erroring when
//! a budget ceiling trips.

use clogic::session::{Session, SessionOptions, Strategy};
use folog::{Budget, TripKind};
use std::time::{Duration, Instant};

/// A recursive entity-creating program: the head-only variable `X` is
/// skolemized to `sk1(Y)`, so the translated program derives
/// `t(a), t(sk1(a)), t(sk1(sk1(a))), …` — an infinite least model.
const DIVERGENT: &str = "t: a.\nt: X[next => Y] :- t: Y.";

#[test]
fn divergent_program_degrades_on_every_strategy() {
    for strategy in Strategy::ALL {
        let mut s = Session::with_options(SessionOptions {
            budget: Budget::with_deadline(Duration::from_millis(50)),
            ..SessionOptions::default()
        });
        s.load(DIVERGENT).unwrap();
        let start = Instant::now();
        let r = s
            .query("t: X", strategy)
            .unwrap_or_else(|e| panic!("{strategy:?} errored: {e}"));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "{strategy:?} overran the deadline: {:?}",
            start.elapsed()
        );
        assert!(!r.complete, "{strategy:?} claimed completeness");
        assert!(
            !r.rows.is_empty(),
            "{strategy:?} returned no partial answers"
        );
        let d = r
            .degradation
            .unwrap_or_else(|| panic!("{strategy:?} missing degradation report"));
        // Which ceiling trips first is strategy-dependent: the deadline,
        // the guard's injected fact/answer cap, or (for Direct) the
        // variant loop check that independently tames this recursion.
        assert!(
            matches!(
                d.trip,
                TripKind::Deadline | TripKind::Facts | TripKind::Answers | TripKind::VariantLoop
            ),
            "{strategy:?} tripped unexpectedly: {:?}",
            d.trip
        );
        assert!(d.work > 0, "{strategy:?} reported no work");
        assert!(!d.detail.is_empty(), "{strategy:?} empty detail");
    }
}

#[test]
fn termination_guard_bounds_unbudgeted_queries() {
    // No explicit budget at all: the static guard must notice the skolem
    // recursion and inject its default deadline / fact cap, so the query
    // still terminates with partial answers.
    let mut s = Session::new();
    s.load(DIVERGENT).unwrap();
    let start = Instant::now();
    let r = s.query("t: X", Strategy::BottomUpSemiNaive).unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "guard failed to bound the fixpoint: {:?}",
        start.elapsed()
    );
    assert!(!r.complete);
    assert!(!r.rows.is_empty());
    assert!(r.degradation.is_some());
}

#[test]
fn termination_guard_can_be_disabled() {
    // With the guard off, an explicit tiny fact cap still degrades
    // gracefully (the session's bounded fixpoint default), proving the
    // opt-out path goes through the same graceful machinery.
    let mut opts = SessionOptions {
        termination_guard: false,
        ..SessionOptions::default()
    };
    opts.fixpoint.max_facts = Some(50);
    let mut s = Session::with_options(opts);
    s.load(DIVERGENT).unwrap();
    let r = s.query("t: X", Strategy::BottomUpSemiNaive).unwrap();
    assert!(!r.complete);
    assert_eq!(r.degradation.unwrap().trip, TripKind::Facts);
}

#[test]
fn guard_leaves_terminating_programs_alone() {
    // A recursive but function-free program has a finite least model: the
    // guard must not flag it, and every strategy stays complete. (Direct
    // is excluded: its variant loop check independently reports
    // incompleteness on recursive type axioms.)
    let src = "edge: a[to => b].\nedge: b[to => c].\n\
               reach(X, Y) :- edge: X[to => Y].\n\
               reach(X, Z) :- edge: X[to => Y], reach(Y, Z).";
    let mut s = Session::new();
    s.load(src).unwrap();
    for strategy in [
        Strategy::Sld,
        Strategy::BottomUpNaive,
        Strategy::BottomUpSemiNaive,
        Strategy::Tabled,
        Strategy::Magic,
    ] {
        let r = s.query("reach(a, Z)", strategy).unwrap();
        assert!(r.complete, "{strategy:?} incomplete");
        assert!(r.degradation.is_none(), "{strategy:?} degraded");
        assert_eq!(r.rows.len(), 2, "{strategy:?}");
    }
}

#[test]
fn cancel_token_stops_all_strategies() {
    // A pre-cancelled token: every strategy must return immediately with
    // a Cancelled degradation rather than evaluate anything.
    for strategy in Strategy::ALL {
        let token = folog::CancelToken::new();
        token.cancel();
        let mut s = Session::with_options(SessionOptions {
            budget: Budget::unlimited().cancel_token(token),
            ..SessionOptions::default()
        });
        s.load(DIVERGENT).unwrap();
        let start = Instant::now();
        let r = s.query("t: X", strategy).unwrap();
        assert!(start.elapsed() < Duration::from_secs(1), "{strategy:?}");
        assert!(!r.complete, "{strategy:?}");
        assert_eq!(
            r.degradation.expect("report").trip,
            TripKind::Cancelled,
            "{strategy:?}"
        );
    }
}

mod no_panic_under_tight_budgets {
    use super::*;
    use clogic::session::Strategy;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn every_strategy_survives(
            deadline_us in 1u64..5_000,
            max_steps in 1u64..500,
            max_facts in 1usize..100,
        ) {
            // Arbitrary tight ceilings on a divergent program: every
            // strategy must return Ok — partial answers, never a panic or
            // a hard limit error.
            let budget = Budget {
                deadline: Some(Duration::from_micros(deadline_us)),
                max_steps: Some(max_steps),
                max_facts: Some(max_facts),
                max_memory_bytes: None,
                cancel: None,
            };
            for strategy in Strategy::ALL {
                let mut s = Session::with_options(SessionOptions {
                    budget: budget.clone(),
                    ..SessionOptions::default()
                });
                s.load(DIVERGENT).unwrap();
                let r = s.query("t: X", strategy);
                let r = r.unwrap_or_else(|e| panic!("{strategy:?} errored: {e}"));
                // Ceilings this tight can never exhaust an infinite model.
                prop_assert!(!r.complete, "{:?} claimed completeness", strategy);
                prop_assert!(r.degradation.is_some(), "{:?} missing report", strategy);
            }
        }
    }
}
