//! The observability layer end to end: metrics monotonicity across
//! incremental loads, EXPLAIN fidelity against real query answers on all
//! six strategies, tracer overhead, stable JSON rendering, and the JSONL
//! trace sink under storage fault injection.

use clogic::obs::{Json, JsonlSubscriber, NullSubscriber, Obs, Render};
use clogic::session::{Session, SessionOptions, Strategy};
use clogic::store::{ChaosStorage, Fault, MemStorage, Storage, StorageSink, TRACE_FILE};
use std::sync::Arc;
use std::time::Instant;

/// A recursive, function-free program every strategy answers (Direct's
/// variant loop check flags it incomplete but still enumerates the
/// reachable answers deterministically).
const REACH: &str = "edge: a[to => b].\nedge: b[to => c].\nedge: c[to => d].\n\
                     reach(X, Y) :- edge: X[to => Y].\n\
                     reach(X, Z) :- edge: X[to => Y], reach(Y, Z).";

/// A recursive *entity-creating* program (§2.1's path example): the rule
/// heads mint `path` objects with explicit skolem identities.
const PATH_SKOLEM: &str = "node: a[linkto => b].\nnode: b[linkto => c].\nnode: c[linkto => d].\n\
     path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].\n\
     path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Z], path: id(Z, Y)[src => Z, dest => Y].";

// ---------- metrics monotonicity ----------

#[test]
fn counters_are_monotone_across_incremental_loads() {
    let mut s = Session::new();
    let mut prev = s.metrics();
    let increments = [
        "node: a[linkto => b].",
        "node: b[linkto => c].",
        "reach(X, Y) :- node: X[linkto => Y].\nreach(X, Z) :- node: X[linkto => Y], reach(Y, Z).",
        "node: c[linkto => d].",
    ];
    for (i, src) in increments.iter().enumerate() {
        s.load(src).unwrap();
        s.query("reach(a, Z)", Strategy::BottomUpSemiNaive).unwrap();
        s.query("reach(a, Z)", Strategy::Direct).unwrap();
        let cur = s.metrics();
        // Every counter present before is still present and has not
        // decreased — counters are monotone by construction, and flushes
        // across epochs only ever add.
        for (name, &before) in &prev.counters {
            let now = cur.counter(name).unwrap_or_else(|| {
                panic!("counter {name} vanished after load #{i}");
            });
            assert!(now >= before, "counter {name} went {before} -> {now}");
        }
        prev = cur;
    }
    // The load/epoch bookkeeping reflects all four increments.
    assert_eq!(prev.counter("session.loads"), Some(4));
    assert_eq!(prev.gauge("session.epoch"), Some(4));
    // Re-querying the same epoch hits the answer cache.
    s.query("reach(a, Z)", Strategy::BottomUpSemiNaive).unwrap();
    assert_eq!(s.metrics().counter("session.cache.hits"), Some(1));
}

#[test]
fn translation_metrics_flush_once_per_epoch() {
    let mut s = Session::new();
    s.load("person: john[children => {bob, bill}].").unwrap();
    s.query("person: X", Strategy::Sld).unwrap();
    let after_first = s.metrics();
    let emitted = after_first.counter("core.translate.clauses_emitted").unwrap();
    assert!(emitted > 0);
    // Querying again (same epoch, cached artifacts) must not re-count
    // translation work.
    s.query("person: X", Strategy::Tabled).unwrap();
    assert_eq!(
        s.metrics().counter("core.translate.clauses_emitted"),
        Some(emitted)
    );
    // A new load re-translates only the delta.
    s.load("person: mary.").unwrap();
    s.query("person: X", Strategy::Sld).unwrap();
    let after_second = s
        .metrics()
        .counter("core.translate.clauses_emitted")
        .unwrap();
    assert!(after_second > emitted);
}

// ---------- EXPLAIN fidelity ----------

#[test]
fn explain_answer_counts_agree_with_query_on_all_six_strategies() {
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load(REACH).unwrap();
        let profile = s.explain("reach(a, Z)", strategy).unwrap();
        let direct = s.query("reach(a, Z)", strategy).unwrap();
        assert_eq!(
            profile.answers,
            direct.rows.len(),
            "explain vs query disagree under {strategy:?}"
        );
        assert_eq!(profile.complete, direct.complete, "{strategy:?}");
        assert_eq!(profile.strategy, strategy);
        // Phase structure: parse and translate always, evaluate last.
        let names: Vec<&str> = profile.phases.iter().map(|p| p.name).collect();
        assert_eq!(names[0], "parse", "{strategy:?}");
        assert_eq!(names[1], "translate", "{strategy:?}");
        assert_eq!(*names.last().unwrap(), "evaluate", "{strategy:?}");
        assert!(!profile.artifacts.is_empty(), "{strategy:?}");
    }
}

#[test]
fn explain_profiles_recursive_entity_creating_query_on_all_six() {
    // Acceptance: `:explain` on a recursive entity-creating query reports
    // per-phase timing, per-rule tuple counts, and budget consumption for
    // every strategy. (SLD needs the termination guard here: the
    // skolemized recursion is exactly the shape it diverges on, and the
    // guard's injected deadline must show up in the profile.)
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load(PATH_SKOLEM).unwrap();
        let profile = s.explain("path: P[src => a]", strategy).unwrap();
        assert!(
            profile.phases.iter().all(|p| p.name.is_ascii()),
            "{strategy:?}"
        );
        assert!(
            profile.phases.iter().any(|p| p.name == "evaluate"),
            "{strategy:?}"
        );
        if profile.complete {
            assert_eq!(profile.answers, 3, "{strategy:?}");
        } else {
            // The termination guard stepped in: the profile must say so.
            assert!(
                profile.budget.guard_injected || profile.degradation.is_some(),
                "{strategy:?} incomplete without a reported cause"
            );
        }
        // Rule-producing strategies attribute tuples to source rules.
        if matches!(
            strategy,
            Strategy::BottomUpNaive | Strategy::BottomUpSemiNaive | Strategy::Magic
        ) {
            assert!(!profile.rules.is_empty(), "{strategy:?} lost rule tuples");
            assert!(profile.rules.iter().all(|r| r.tuples > 0));
        }
        // The rendered forms exist and carry the headline facts.
        let text = profile.render_text();
        assert!(text.contains("EXPLAIN"), "{strategy:?}");
        assert!(text.contains("phases:"), "{strategy:?}");
        assert!(text.contains("budget:"), "{strategy:?}");
        match profile.render_json() {
            Json::Object(fields) => {
                let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                for key in ["query", "strategy", "phases", "rules", "budget", "answers"] {
                    assert!(keys.contains(&key), "{strategy:?} JSON missing {key}");
                }
            }
            other => panic!("{strategy:?}: profile JSON is not an object: {other:?}"),
        }
    }
}

#[test]
fn explain_bypasses_but_reports_the_answer_cache() {
    let mut s = Session::new();
    s.load(REACH).unwrap();
    let cold = s.explain("reach(a, Z)", Strategy::Tabled).unwrap();
    assert!(!cold.cache_would_hit);
    // explain() itself must not have populated the cache…
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 0));
    // …but once a real query has, explain reports the hit it bypasses.
    s.query("reach(a, Z)", Strategy::Tabled).unwrap();
    let warm = s.explain("reach(a, Z)", Strategy::Tabled).unwrap();
    assert!(warm.cache_would_hit);
    assert_eq!(warm.answers, cold.answers);
}

#[test]
fn explain_metrics_cover_exactly_one_evaluation() {
    let mut s = Session::new();
    s.load(REACH).unwrap();
    // Warm everything up so the profile below measures only evaluation.
    s.query("reach(a, Z)", Strategy::BottomUpSemiNaive).unwrap();
    let profile = s
        .explain("reach(a, Z)", Strategy::BottomUpSemiNaive)
        .unwrap();
    // The profile's registry is private to the explain call: exactly one
    // fixpoint query, and none of the session-level counters leak in.
    assert_eq!(profile.metrics.counter("folog.fixpoint.evaluations"), None);
    assert_eq!(profile.metrics.counter("session.loads"), None);
    assert!(profile.metrics.counter("folog.fixpoint.rule_activations").is_none());
    // (The model was reused, so no new fixpoint ran — the artifact note
    // says so.)
    assert!(profile
        .artifacts
        .iter()
        .any(|a| a.artifact == "model" && a.provenance == "reused"));
}

// ---------- tracer overhead ----------

#[test]
fn null_subscriber_overhead_is_small() {
    // The tracer only opens spans at evaluation granularity and engines
    // flush counters once per run, so tracing into a null subscriber must
    // cost within a few percent of the quiet configuration. Measured as
    // best-of-N to shed scheduler noise; the release-mode bench enforces
    // the strict 5% acceptance bound.
    fn workload(obs: Obs) -> std::time::Duration {
        let mut best = std::time::Duration::MAX;
        for _ in 0..7 {
            let start = Instant::now();
            let mut s = Session::with_options(SessionOptions {
                obs: obs.clone(),
                ..SessionOptions::default()
            });
            s.load(REACH).unwrap();
            for strategy in [
                Strategy::BottomUpSemiNaive,
                Strategy::Tabled,
                Strategy::Magic,
            ] {
                let r = s.query("reach(a, Z)", strategy).unwrap();
                assert_eq!(r.rows.len(), 3);
            }
            best = best.min(start.elapsed());
        }
        best
    }
    let quiet = workload(Obs::new());
    let traced = workload(Obs::with_subscriber(Arc::new(NullSubscriber)));
    let ratio = traced.as_secs_f64() / quiet.as_secs_f64().max(1e-9);
    // Debug builds and shared CI runners jitter; 25% here is the smoke
    // bound, the bench asserts the real 5% one on release code.
    assert!(
        ratio <= 1.25,
        "null-subscriber tracing cost {:.1}% (quiet {quiet:?}, traced {traced:?})",
        (ratio - 1.0) * 100.0
    );
}

// ---------- JSONL sink under faults ----------

fn traced_session(storage: impl Storage + 'static) -> (Session, Arc<JsonlSubscriber>) {
    let sink = StorageSink::new(Box::new(storage));
    let sub = Arc::new(JsonlSubscriber::new(Box::new(sink)));
    let obs = Obs::with_subscriber(sub.clone());
    let s = Session::with_options(SessionOptions {
        obs,
        ..SessionOptions::default()
    });
    (s, sub)
}

#[test]
fn jsonl_sink_streams_valid_lines_into_storage() {
    let mem = MemStorage::new();
    let (mut s, sub) = traced_session(mem.clone());
    s.load(REACH).unwrap();
    s.query("reach(a, Z)", Strategy::BottomUpSemiNaive).unwrap();
    assert!(sub.written() > 0);
    assert_eq!(sub.errors(), 0);
    let mut mem = mem;
    let bytes = mem.read(TRACE_FILE).unwrap().expect("trace file exists");
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, sub.written());
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    }
    assert!(text.contains("session.load"), "missing load span: {text}");
}

#[test]
fn jsonl_sink_survives_chaos_storage_faults() {
    for fault in [
        Fault::Fail,
        Fault::ShortWrite,
        Fault::DuplicateAppend,
        Fault::TruncateTail,
    ] {
        let mem = MemStorage::new();
        let chaotic = ChaosStorage::new(mem.clone(), 2, fault);
        let (mut s, sub) = traced_session(chaotic);
        // The faulting trace sink must never disturb evaluation.
        s.load(REACH).unwrap();
        let r = s.query("reach(a, Z)", Strategy::Tabled).unwrap();
        assert_eq!(r.rows.len(), 3, "{fault:?} disturbed answers");
        assert!(sub.written() > 0, "{fault:?}");
        if fault == Fault::Fail {
            assert_eq!(sub.errors(), 1, "hard fault not counted");
        }
        // Whatever made it to storage is still line-structured JSON: a
        // short write may tear the *last* line, but every earlier one
        // stays intact because appends are whole lines.
        let mut mem = mem;
        if let Some(bytes) = mem.read(TRACE_FILE).unwrap() {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            let lines: Vec<&str> = text.lines().collect();
            for line in lines.iter().take(lines.len().saturating_sub(1)) {
                assert!(
                    line.starts_with('{') && line.ends_with('}'),
                    "{fault:?}: non-terminal line torn: {line}"
                );
            }
        }
    }
}
