//! The optional static-typing layer (§2.3, §6) end to end: schema audits
//! over derived models, and the static-type membership reading as rules.

use clogic::core::schema::{Schema, Violation};
use clogic::core::transform::Transformer;
use clogic::core::{object_type, Program};
use clogic::session::{Session, Strategy};
use clogic_parser::parse_program;
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

fn audit(src: &str, schema: &Schema) -> Vec<Violation> {
    let p: Program = parse_program(src).unwrap();
    let fo = Transformer::new().program(&p);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    let ev = evaluate(&compiled, FixpointOptions::default()).unwrap();
    let mut sig = p.signature();
    sig.types.insert(object_type());
    schema.check(&ev.ground_atoms(), &sig)
}

#[test]
fn audit_covers_derived_facts_not_just_asserted_ones() {
    // The schema is checked against the least model, so violations can
    // come from rule-derived membership.
    let mut schema = Schema::new();
    schema.require("vip", "discount", "object");
    let src = r#"
        customer: ann[orders => 12].
        vip: X :- customer: X[orders => N], N >= 10.
    "#;
    // ann becomes a vip by rule but has no discount ⇒ violation
    let violations = audit(src, &schema);
    assert_eq!(violations.len(), 1);
    assert!(matches!(&violations[0],
        Violation::MissingProperty { object, .. } if object == "ann"));
    // giving her one (piecewise! §2.2) clears the audit
    let fixed = format!("{src}\ncustomer: ann[discount => gold].");
    assert!(audit(&fixed, &schema).is_empty());
}

#[test]
fn functional_label_audit_sees_rule_derived_values() {
    let mut schema = Schema::new();
    schema.declare_functional("head_of");
    let src = r#"
        dept: cs[head_of => turing].
        dept: cs[acting => hopper].
        head_of_rule: X :- dept: X.
        dept: X[head_of => Y] :- dept: X[acting => Y].
    "#;
    let violations = audit(src, &schema);
    assert_eq!(violations.len(), 1);
    assert!(matches!(&violations[0],
        Violation::MultipleValues { object, values, .. }
            if object == "cs" && values.len() == 2));
}

#[test]
fn membership_rules_close_the_static_reading() {
    // §2.3: "every object with all properties specified by a type will
    // automatically belong to the type" — realize it by adding the
    // generated membership rules to the program.
    let mut schema = Schema::new();
    schema.require("person", "name", "object");
    schema.require("person", "age", "object");
    let mut p = parse_program(
        r#"thing: t1[name => "Ann", age => 30].
           thing: t2[name => "NoAge"].
        "#,
    )
    .unwrap();
    for rule in schema.membership_rules() {
        p.push(rule);
    }
    let mut s = Session::new();
    s.load_program(p);
    for strategy in [
        Strategy::BottomUpSemiNaive,
        Strategy::Tabled,
        Strategy::Magic,
    ] {
        let r = s.query("person: X", strategy).unwrap();
        assert_eq!(r.rows.len(), 1, "{strategy:?}");
        assert_eq!(r.rows[0].get("X").unwrap(), "t1");
    }
}

#[test]
fn schema_layer_is_optional() {
    // Without a schema, multiply-defined labels and missing properties
    // are simply fine (the paper's core stance).
    let schema = Schema::new();
    let src = "person: p[name => a].\nperson: p[name => b].\nperson: q.";
    assert!(audit(src, &schema).is_empty());
}
