//! X2 — the semantic equivalences of §3.2: decomposition and
//! recombination of complex descriptions, the term/predicate asymmetry,
//! and model-theoretic satisfaction against the least model of the
//! translated program.

use clogic::core::decompose::{atoms, normalize, recombine, subsumes};
use clogic::core::structure::{Assignment, Structure};
use clogic::core::transform::Transformer;
use clogic::core::{Atomic, Program, Query, TypeHierarchy};
use clogic::session::{Session, Strategy};
use clogic_parser::{parse_program, parse_query, parse_term};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

/// Least Herbrand model of a C-logic program, as a semantic structure.
fn least_model_structure(p: &Program) -> Structure {
    let fo = Transformer::new().program(p);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    let ev = evaluate(&compiled, FixpointOptions::default()).unwrap();
    let mut sig = p.signature();
    // the transformation introduces no new labels/types, so the program
    // signature classifies the derived atoms
    sig.types.insert(clogic::core::object_type());
    Structure::from_ground_atoms(&ev.ground_atoms(), &sig)
}

#[test]
fn molecule_satisfied_iff_all_atomic_pieces_are() {
    let p =
        parse_program("person: john[name => \"John Smith\", age => 28, children => {bob, bill}].")
            .unwrap();
    let st = least_model_structure(&p);
    let s = Assignment::new();
    let whole =
        parse_term("person: john[name => \"John Smith\", age => 28, children => {bob, bill}]")
            .unwrap();
    assert!(st.satisfies_term(&whole, &s));
    for piece in atoms(&whole) {
        assert!(st.satisfies_term(&piece, &s), "{piece}");
    }
    // recombination of the pieces is satisfied too
    let merged = recombine(&atoms(&whole)[1..]).unwrap();
    assert!(st.satisfies_term(&merged, &s));
    // and a wrong piece is not
    let wrong = parse_term("person: john[age => 29]").unwrap();
    assert!(!st.satisfies_term(&wrong, &s));
}

#[test]
fn labels_of_a_term_are_independent_but_predicate_arguments_are_not() {
    // §3.2: from p[src=>a,dest=>b] and p[src=>c,dest=>d] infer
    // p[src=>a,dest=>d]; from p(a,b) and p(c,d) do NOT infer p(a,d).
    let src = "path: p[src => a, dest => b].\n\
               path: p[src => c, dest => d].\n\
               conn(a, b).\n\
               conn(c, d).";
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load(src).unwrap();
        assert!(
            s.query("path: p[src => a, dest => d]", strategy)
                .unwrap()
                .holds(),
            "{strategy:?}: cross description should hold"
        );
        assert!(
            s.query("path: p[src => c, dest => b]", strategy)
                .unwrap()
                .holds(),
            "{strategy:?}"
        );
        assert!(
            !s.query("conn(a, d)", strategy).unwrap().holds(),
            "{strategy:?}: predicate tuples must not mix"
        );
        assert!(
            !s.query("conn(c, b)", strategy).unwrap().holds(),
            "{strategy:?}"
        );
    }
}

#[test]
fn piecewise_accumulation_across_clauses() {
    // §2.2: information about an object may be accumulated piecewise.
    let src = "person: john[name => \"John Smith\"].\n\
               person: john[age => 28].";
    for strategy in Strategy::ALL {
        let mut s = Session::new();
        s.load(src).unwrap();
        assert!(
            s.query("person: john[name => \"John Smith\", age => 28]", strategy)
                .unwrap()
                .holds(),
            "{strategy:?}"
        );
    }
}

#[test]
fn least_model_satisfies_the_program() {
    // The structure built from the translated program's least model is a
    // model of the original C-logic program (Theorem 1, executable form).
    let p = parse_program(
        r#"
        student < person.
        student: ann[advisor => bob].
        person: bob.
        peer: X[of => Y] :- student: X[advisor => Y].
        "#,
    )
    .unwrap();
    let st = least_model_structure(&p);
    assert!(st.satisfies_program(&p));
    // and the derived rule head is satisfied
    let s = Assignment::new();
    let derived = parse_term("peer: ann[of => bob]").unwrap();
    assert!(st.satisfies_term(&derived, &s));
    // type monotonicity holds in the model: ann is a person
    assert!(st.satisfies_term(&parse_term("person: ann").unwrap(), &s));
}

#[test]
fn model_answers_match_engine_answers() {
    let p = parse_program("person: john[children => {bob, bill}].\nperson: sue[children => bob].")
        .unwrap();
    let st = least_model_structure(&p);
    let q: Query = parse_query("person: X[children => bob]").unwrap();
    let model_answers = st.answers(&q);
    assert_eq!(model_answers.len(), 2);

    let mut session = Session::new();
    session
        .load("person: john[children => {bob, bill}].\nperson: sue[children => bob].")
        .unwrap();
    let engine_answers = session
        .query("person: X[children => bob]", Strategy::Direct)
        .unwrap();
    assert_eq!(engine_answers.rows.len(), 2);
}

#[test]
fn normal_forms_and_description_ordering() {
    let h = TypeHierarchy::new();
    let merged = parse_term("path: p[src => {a, c}, dest => {b, d}]").unwrap();
    let q1 = parse_term("path: p[src => a, dest => d]").unwrap();
    let q2 = parse_term("path: p[src => {c, a}]").unwrap();
    assert!(subsumes(&q1, &merged, &h));
    assert!(subsumes(&q2, &merged, &h));
    assert!(!subsumes(&merged, &q1, &h));
    // normalization makes set order irrelevant
    assert_eq!(
        normalize(&parse_term("p[l => {b, a}]").unwrap()),
        normalize(&parse_term("p[l => {a, b}, l => a]").unwrap())
    );
}

#[test]
fn transformation_preserves_satisfaction_pointwise() {
    // For each atomic formula α and the Herbrand structure M of a small
    // database: M ⊨ α iff the FO translation α* holds in the least model.
    let src = "person: john[children => {bob, bill}, age => 28].\nstudent < person.";
    let p = parse_program(src).unwrap();
    let st = least_model_structure(&p);
    let fo = Transformer::new().program(&p);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    let ev = evaluate(&compiled, FixpointOptions::default()).unwrap();
    let cases = [
        ("person: john", true),
        ("john[children => bob]", true),
        ("john[children => {bob, bill}]", true),
        ("john[children => john]", false),
        ("student: john", false),
        ("person: john[age => 28, children => bill]", true),
        ("person: bob", false),
        ("object: bob", true),
    ];
    let tr = Transformer::new();
    for (text, expected) in cases {
        let t = parse_term(text).unwrap();
        let a = Atomic::term(t);
        let direct = st.satisfies_atomic(&a, &Assignment::new());
        let translated = ev.holds(&tr.atomic(&a));
        assert_eq!(direct, expected, "structure: {text}");
        assert_eq!(translated, expected, "least model: {text}");
    }
}
