//! Network chaos: the hardened wire front-end under adversarial peers
//! and injected wire faults.
//!
//! The storage layer earns its robustness claims by injecting faults at
//! every I/O boundary (`tests/recovery.rs`); this suite does the same
//! for the wire, the only boundary an unauthenticated peer reaches:
//!
//! * **Adversarial sweep** — slowloris writers, a connection flood, a
//!   stalled reader that never drains its responses, torn- and
//!   oversized-frame writers, and a silent idler all run *concurrently*
//!   against healthy clients whose answers must stay identical to a
//!   serial session across all six strategies. Every adversary class
//!   must show up in the `net.reaped.*` ledger, the
//!   `net.connections.open` gauge must never exceed the configured cap,
//!   and shutdown must complete promptly — no wedged worker, no leaked
//!   connection.
//! * **ChaosStream client sweep** — a client whose wire injects
//!   partial reads, short writes, delays, resets, and corruption at
//!   every I/O call boundary (mirroring `ChaosStorage`'s trigger
//!   sweep): each exchange either round-trips correctly or fails with a
//!   structured error, and the front keeps serving clean clients
//!   afterwards.
//! * **Misbehaving servers** — `Client::request` gets torn frames,
//!   resets, oversized frames, and a stalled server; it must return a
//!   structured error every time, never hang or panic.
//! * **Deadline propagation** — a request's `deadline_ms` covers queue
//!   wait: a trivial query with a 1 ms deadline stuck behind a pile of
//!   divergent-program blockers must come back *incomplete*, because
//!   its deadline expired in the queue.
//! * **Governance clocks** — focused idle-timeout, slow-read, and
//!   read-buffer-cap reaping, plus the `health` op and
//!   drain-with-deadline shutdown.
//!
//! Iteration counts are env-tunable for CI (`NET_CHAOS_ITERS`,
//! `NET_CHAOS_PIPELINE`); the sweep writes its final metrics snapshot
//! to `target/net-chaos/metrics.json` (override with
//! `NET_CHAOS_METRICS_PATH`) so CI can archive the ledger.

use clogic::obs::{Json, Obs, Render};
use clogic::session::{Session, SessionOptions, Strategy};
use clogic::store::{MemStorage, RetryPolicy, Storage};
use clogic_serve::protocol::{self, get};
use clogic_serve::{
    ChaosStream, Client, ManagerOptions, Request, RequestOp, SessionManager, StorageFactory,
    TcpFront, TcpFrontOptions, WireFault,
};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const QUERIES: &[&str] = &["t2: X", "t3: O[l2 => V]", "p(X)", "t1: X[l1 => Y]"];

/// Same program as the serve/tenants suites — facts, molecules, a
/// subtype, rules, and an entity-creating rule, so answer equivalence
/// also pins skolem identities.
fn chunks() -> Vec<String> {
    vec![
        "t1 < t2.\nt1: c1[l1 => c2].\nt3: C[l2 => X] :- t1: X.".to_string(),
        "t1: c3.\np(X) :- t1: X[l1 => Y].".to_string(),
        "t2: c4[l2 => c5].\nt3: D[l1 => X] :- t2: X[l2 => Y].".to_string(),
        "t1: c2[l1 => c4].\nt3: X :- t2: X.".to_string(),
    ]
}

/// An infinite-least-model program (`tests/governor.rs`): any query
/// with a deadline runs until the deadline trips — the reliable way to
/// occupy a worker for an exact, bounded time.
const DIVERGENT: &str = "t: a.\nt: X[next => Y] :- t: Y.";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn manager_opts(obs: &Obs) -> ManagerOptions {
    ManagerOptions {
        capacity: 16,
        retry: RetryPolicy::default(),
        session: SessionOptions {
            snapshot_every: Some(2),
            obs: obs.clone(),
            ..SessionOptions::default()
        },
        sleeper: Arc::new(|_| {}),
    }
}

type Stores = Arc<Mutex<HashMap<String, MemStorage>>>;

fn mem_factory(stores: &Stores) -> StorageFactory {
    let stores = Arc::clone(stores);
    Arc::new(move |name| {
        let mut stores = stores.lock().unwrap();
        Ok(Box::new(stores.entry(name.to_string()).or_default().clone()) as Box<dyn Storage>)
    })
}

fn start_front(obs: &Obs, opts: TcpFrontOptions) -> (Arc<SessionManager>, TcpFront) {
    let stores: Stores = Arc::new(Mutex::new(HashMap::new()));
    let mgr = Arc::new(SessionManager::new(mem_factory(&stores), manager_opts(obs)));
    let front = TcpFront::start(Arc::clone(&mgr), "127.0.0.1:0", opts).expect("bind");
    (mgr, front)
}

fn query_req(tenant: &str, src: &str, strategy: Strategy, deadline_ms: Option<u64>) -> Request {
    Request {
        tenant: tenant.into(),
        op: RequestOp::Query {
            src: src.to_string(),
            strategy,
            deadline_ms,
        },
    }
}

/// Bindings of a wire query response, as (var, term) rows.
fn rows_of(resp: &Json) -> Rows {
    let Some(Json::Array(rows)) = get(resp, "rows") else {
        panic!("rows missing in {resp}");
    };
    rows.iter()
        .map(|row| match row {
            Json::Object(fields) => fields
                .iter()
                .map(|(k, v)| match v {
                    Json::Str(s) => (k.clone(), s.clone()),
                    other => (k.clone(), other.to_string()),
                })
                .collect(),
            other => panic!("row is not an object: {other}"),
        })
        .collect()
}

/// One answer set as comparable `(var, term)` binding rows.
type Rows = Vec<Vec<(String, String)>>;

/// The serial ground truth: every (strategy, query) pair's bindings.
fn serial_expected(loads: &[String]) -> HashMap<(usize, usize), Rows> {
    let mut s = Session::with_options(SessionOptions {
        snapshot_every: Some(2),
        ..SessionOptions::default()
    });
    for c in loads {
        s.load(c).expect("serial load");
    }
    let mut expected = HashMap::new();
    for (si, strategy) in Strategy::ALL.into_iter().enumerate() {
        for (qi, q) in QUERIES.iter().enumerate() {
            let rows: Rows = s
                .query(q, strategy)
                .unwrap()
                .rows
                .iter()
                .map(|row| {
                    row.bindings
                        .iter()
                        .map(|(var, term)| (var.to_string(), term.to_string()))
                        .collect()
                })
                .collect();
            expected.insert((si, qi), rows);
        }
    }
    expected
}

/// A hand-framed client over any byte stream — what lets the chaos
/// sweeps speak the protocol through a `ChaosStream`.
struct RawClient<S> {
    s: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> RawClient<S> {
    fn new(s: S) -> RawClient<S> {
        RawClient { s, buf: Vec::new() }
    }

    fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.s.write_all(&protocol::encode_frame(&req.render_json()))
    }

    fn recv(&mut self) -> Result<Json, String> {
        loop {
            if let Some(payload) =
                protocol::decode_frame(&mut self.buf).map_err(|e| format!("frame: {e}"))?
            {
                let text =
                    std::str::from_utf8(&payload).map_err(|e| format!("invalid UTF-8: {e}"))?;
                return protocol::parse_json(text);
            }
            let mut chunk = [0u8; 4096];
            match self.s.read(&mut chunk) {
                Ok(0) => return Err("connection closed".to_string()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }

    fn request(&mut self, req: &Request) -> Result<Json, String> {
        self.send(req).map_err(|e| format!("write: {e}"))?;
        self.recv()
    }
}

/// Polls `cond` until it holds or `timeout` passes; true on success.
fn eventually(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Shuts the front down under a watchdog: a wedged worker or accept
/// loop turns into a test failure instead of a hung suite.
fn shutdown_within(front: TcpFront, timeout: Duration) -> Duration {
    let (tx, rx) = mpsc::channel();
    let start = Instant::now();
    std::thread::spawn(move || {
        front.shutdown();
        let _ = tx.send(());
    });
    rx.recv_timeout(timeout)
        .expect("shutdown wedged: a worker or the accept loop failed to exit");
    start.elapsed()
}

// ---------- the adversarial sweep ----------

/// Slowloris, flood, stalled reader, torn/oversized frames, and a
/// silent idler, concurrent with healthy clients — the acceptance sweep.
#[test]
fn adversarial_peers_cannot_starve_or_corrupt_healthy_clients() {
    const MAX_CONNS: usize = 16;
    let iters = env_usize("NET_CHAOS_ITERS", 3);
    let pipeline = env_usize("NET_CHAOS_PIPELINE", 300);

    let obs = Obs::new();
    // Clocks sized for a loaded single-core CI box: a healthy client
    // thread can be descheduled for hundreds of milliseconds under this
    // thread count, so the idle clock must be far above that (precise
    // idle timing is covered by the focused governance test), and the
    // queue must be deep enough that the stalled reader's burst can
    // never shed a healthy request.
    let (mgr, front) = start_front(
        &obs,
        TcpFrontOptions {
            workers: 2,
            queue_depth: 512,
            max_connections: MAX_CONNS,
            idle_timeout: Duration::from_secs(3),
            frame_timeout: Duration::from_millis(250),
            write_budget: Duration::from_millis(150),
            ..TcpFrontOptions::default()
        },
    );
    let addr = front.addr();
    for c in &chunks() {
        mgr.load("healthy", c).expect("load healthy");
    }
    // A tenant whose every answer is deliberately fat (~50 KiB), so a
    // reader that never drains its responses fills the socket buffers
    // and trips the write budget.
    let mega: String = (0..4000).map(|i| format!("mega: m{i}.\n")).collect();
    mgr.load("mega", &mega).expect("load mega");

    let expected = Arc::new(serial_expected(&chunks()));
    let stop = Arc::new(AtomicBool::new(false));
    let max_open_seen = Arc::new(AtomicU64::new(0));
    let healthy_ready = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // Gauge monitor: samples `net.connections.open` through the
        // whole run; its maximum must respect the cap. Reads through a
        // shared handle (an atomic load), not a full registry snapshot,
        // so the monitor itself adds no meaningful load.
        {
            let open = obs.metrics.gauge("net.connections.open");
            let stop = Arc::clone(&stop);
            let max_open_seen = Arc::clone(&max_open_seen);
            scope.spawn(move || {
                // Also self-bounded by wall clock: if the scope body
                // panics before setting `stop`, the scope must still be
                // able to join this thread and propagate the panic.
                let bound = Instant::now() + Duration::from_secs(120);
                while !stop.load(Ordering::Acquire) && Instant::now() < bound {
                    max_open_seen.fetch_max(open.get(), Ordering::AcqRel);
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }

        // Healthy clients: connect *before* the adversaries so the
        // flood cannot displace them, then hammer queries whose answers
        // must stay serial-identical throughout the chaos.
        let mut healthy = Vec::new();
        for t in 0..4 {
            let expected = Arc::clone(&expected);
            let healthy_ready = Arc::clone(&healthy_ready);
            let obs = obs.clone();
            healthy.push(scope.spawn(move || {
                let mut c = Client::connect_timeout(addr, Duration::from_secs(30))
                    .expect("healthy connect");
                // Warm-up proves the connection is registered.
                let resp = c
                    .request(&query_req("healthy", QUERIES[0], Strategy::Sld, Some(30_000)))
                    .expect("warm-up");
                assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "warm-up: {resp}");
                healthy_ready.fetch_add(1, Ordering::AcqRel);
                for _ in 0..iters {
                    for (si, strategy) in Strategy::ALL.into_iter().enumerate() {
                        for (qi, q) in QUERIES.iter().enumerate() {
                            let resp = c
                                .request(&query_req("healthy", q, strategy, Some(30_000)))
                                .unwrap_or_else(|e| {
                                    panic!(
                                        "healthy {t}: {e}; net ledger: {:?}",
                                        obs.metrics.snapshot().counters
                                    )
                                });
                            assert_eq!(
                                get(&resp, "ok"),
                                Some(&Json::Bool(true)),
                                "healthy {t}: {resp}"
                            );
                            assert_eq!(
                                get(&resp, "complete"),
                                Some(&Json::Bool(true)),
                                "healthy {t}: {resp}"
                            );
                            assert_eq!(
                                rows_of(&resp),
                                expected[&(si, qi)],
                                "healthy {t}: {strategy:?} on {q} diverged from serial"
                            );
                        }
                    }
                }
            }));
        }
        assert!(
            eventually(Duration::from_secs(30), || {
                healthy_ready.load(Ordering::Acquire) == 4
            }),
            "healthy clients never finished warming up"
        );

        // Silent idler: connects and never says a word — the idle clock
        // must reap it.
        scope.spawn(move || {
            let s = TcpStream::connect(addr).expect("idler connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut s = s;
            let mut buf = [0u8; 64];
            // Reaping closes the socket: read returns 0 (or a reset).
            let _ = s.read(&mut buf);
        });

        // Slowloris: starts a frame and trickles one byte at a time —
        // the frame clock must reap it even though bytes keep arriving.
        scope.spawn(move || {
            let mut s = TcpStream::connect(addr).expect("slowloris connect");
            let _ = s.write_all(&1000u32.to_be_bytes());
            for _ in 0..40 {
                if s.write_all(b"x").is_err() {
                    return; // reaped — writes now fail
                }
                std::thread::sleep(Duration::from_millis(40));
            }
        });

        // Stalled reader: trickles cache-hot fat queries and never
        // reads a single response byte; once the socket buffers fill,
        // the worker's write budget must kill it.
        scope.spawn(move || {
            let mut s = TcpStream::connect(addr).expect("stalled connect");
            let frame = protocol::encode_frame(
                &query_req("mega", "mega: X", Strategy::Sld, Some(30_000)).render_json(),
            );
            for _ in 0..pipeline {
                if s.write_all(&frame).is_err() {
                    return; // killed — the budget did its job
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });

        // Oversized-frame writer: declares a frame past the cap — must
        // get a structured refusal and a reap, not an allocation.
        scope.spawn(move || {
            let mut s = TcpStream::connect(addr).expect("oversized connect");
            let _ = s.write_all(&(protocol::MAX_FRAME + 1).to_be_bytes());
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut raw = RawClient::new(s);
            // Best-effort: the refusal frame may race the close.
            if let Ok(resp) = raw.recv() {
                assert_eq!(get(&resp, "ok"), Some(&Json::Bool(false)), "{resp}");
            }
        });

        // Torn-frame writer: half a valid frame, then gone. The server
        // must treat it as a clean close, not wedge waiting for the
        // rest.
        scope.spawn(move || {
            let mut s = TcpStream::connect(addr).expect("torn connect");
            let _ = s.write_all(&100u32.to_be_bytes());
            let _ = s.write_all(&[b'{'; 50]);
        });

        // Connection flood: well past the cap. Excess connects get at
        // most one refusal frame; the registered population must never
        // exceed the cap.
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            let mut held = Vec::new();
            for _ in 0..(MAX_CONNS + 24) {
                if let Ok(s) = TcpStream::connect(addr) {
                    held.push(s);
                }
            }
            std::thread::sleep(Duration::from_millis(300));
            drop(held);
        });

        for h in healthy {
            h.join().expect("healthy client panicked");
        }
        stop.store(true, Ordering::Release);
    });

    // Every adversary class must appear in the reap ledger. The clocks
    // are asynchronous, so poll briefly rather than racing them.
    let ledger_complete = eventually(Duration::from_secs(10), || {
        let snap = obs.metrics.snapshot();
        snap.counter("net.reaped.idle").unwrap_or(0) >= 1
            && snap.counter("net.reaped.slow_read").unwrap_or(0) >= 1
            && snap.counter("net.reaped.overflow").unwrap_or(0) >= 1
            && snap.counter("net.reaped.frame_error").unwrap_or(0) >= 1
            && snap.counter("net.reaped.write_stall").unwrap_or(0)
                + snap.counter("net.write_errors").unwrap_or(0)
                >= 1
            && snap.counter("net.connections.closed").unwrap_or(0) >= 1
    });
    let snap = obs.metrics.snapshot();
    assert!(
        ledger_complete,
        "reap ledger incomplete: idle={:?} slow_read={:?} overflow={:?} frame_error={:?} \
         write_stall={:?} write_errors={:?} closed={:?}",
        snap.counter("net.reaped.idle"),
        snap.counter("net.reaped.slow_read"),
        snap.counter("net.reaped.overflow"),
        snap.counter("net.reaped.frame_error"),
        snap.counter("net.reaped.write_stall"),
        snap.counter("net.write_errors"),
        snap.counter("net.connections.closed"),
    );
    assert!(
        max_open_seen.load(Ordering::Acquire) <= MAX_CONNS as u64,
        "connection cap violated: saw {} open with cap {MAX_CONNS}",
        max_open_seen.load(Ordering::Acquire)
    );
    assert!(
        snap.counter("net.frames.in").unwrap_or(0) >= (4 * iters as u64 * 24),
        "healthy traffic missing from net.frames.in: {snap:?}"
    );

    // No wedged worker at exit, and the gauge returns to zero once the
    // front is gone.
    shutdown_within(front, Duration::from_secs(30));
    let snap = obs.metrics.snapshot();
    assert_eq!(
        snap.gauge("net.connections.open"),
        Some(0),
        "connections leaked past shutdown"
    );

    // Archive the ledger for CI.
    let path = std::env::var("NET_CHAOS_METRICS_PATH")
        .unwrap_or_else(|_| "target/net-chaos/metrics.json".to_string());
    let path = std::path::Path::new(&path);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, format!("{}\n", snap.render_json()))
        .expect("write metrics artifact");
}

// ---------- ChaosStream client sweep ----------

/// A client speaking through an injected-fault wire, the fault swept
/// across every I/O call boundary of a two-request exchange: each
/// request either round-trips with the clean answer or fails
/// structurally, and the front keeps serving clean clients afterwards.
#[test]
fn chaos_wire_client_sweep_leaves_the_front_serving() {
    let obs = Obs::new();
    let (mgr, front) = start_front(
        &obs,
        TcpFrontOptions {
            workers: 2,
            frame_timeout: Duration::from_millis(500),
            idle_timeout: Duration::from_millis(2000),
            ..TcpFrontOptions::default()
        },
    );
    let addr = front.addr();
    for c in &chunks() {
        mgr.load("healthy", c).expect("load");
    }
    let expected = serial_expected(&chunks());
    let clean = &expected[&(0, 0)]; // (Sld, QUERIES[0])

    for fault in WireFault::ALL {
        for trigger in 1..=5u64 {
            let stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            stream
                .set_write_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let chaos =
                ChaosStream::new(stream, trigger, fault).with_delay(Duration::from_millis(20));
            let mut raw = RawClient::new(chaos);
            for round in 0..2 {
                match raw.request(&query_req("healthy", QUERIES[0], Strategy::Sld, Some(30_000))) {
                    Ok(resp) => {
                        // A response that arrives at all must be either
                        // the exact clean answer or a structured error
                        // (e.g. the server refusing a corrupted frame).
                        if get(&resp, "ok") == Some(&Json::Bool(true)) {
                            assert_eq!(
                                rows_of(&resp),
                                *clean,
                                "{fault:?}@{trigger} round {round}: wrong answer"
                            );
                        } else {
                            assert!(
                                matches!(get(&resp, "error"), Some(Json::Str(m)) if !m.is_empty()),
                                "{fault:?}@{trigger}: unstructured failure: {resp}"
                            );
                        }
                    }
                    Err(e) => {
                        assert!(!e.is_empty(), "{fault:?}@{trigger}: empty error");
                        break; // the wire is gone; nothing more to say on it
                    }
                }
            }
            // Whatever the chaos client suffered, a clean client must
            // still be served correctly.
            let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).expect("clean");
            let resp = c
                .request(&query_req("healthy", QUERIES[0], Strategy::Sld, Some(30_000)))
                .unwrap_or_else(|e| panic!("front wedged after {fault:?}@{trigger}: {e}"));
            assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "{resp}");
            assert_eq!(rows_of(&resp), *clean, "after {fault:?}@{trigger}");
        }
    }
    shutdown_within(front, Duration::from_secs(30));
}

// ---------- Client vs misbehaving servers ----------

/// Starts a one-shot fake server; returns its address.
fn fake_server(
    behave: impl FnOnce(TcpStream) + Send + 'static,
) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            behave(stream);
        }
    });
    addr
}

/// Reads one full frame off the stream (so the fake server misbehaves
/// *after* a well-formed request, like a real buggy peer would).
fn read_request(stream: &mut TcpStream) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok(Some(_)) = protocol::decode_frame(&mut buf) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
}

/// Satellite: `Client::request` against servers that tear frames, reset
/// mid-response, declare absurd lengths, or stall — always a structured
/// error, never a hang or panic.
#[test]
fn client_survives_misbehaving_servers_with_structured_errors() {
    let status = Request {
        tenant: "t".into(),
        op: RequestOp::Status,
    };

    // Torn mid-frame: half a response, then a clean close.
    let addr = fake_server(|mut s| {
        read_request(&mut s);
        let _ = s.write_all(&100u32.to_be_bytes());
        let _ = s.write_all(&[b'{'; 40]);
    });
    let mut c = Client::connect_timeout(addr, Duration::from_secs(5)).unwrap();
    let err = c.request(&status).unwrap_err();
    assert!(
        err.contains("connection closed") || err.contains("read:"),
        "torn frame: {err}"
    );

    // Reset mid-response: the server dies with the request unread, so
    // the kernel sends RST rather than FIN.
    let addr = fake_server(|s| {
        std::thread::sleep(Duration::from_millis(50));
        drop(s); // request bytes still unread -> RST
    });
    let mut c = Client::connect_timeout(addr, Duration::from_secs(5)).unwrap();
    let err = c.request(&status).unwrap_err();
    assert!(!err.is_empty(), "reset must surface an error");

    // Oversized frame: a declared length past the cap must be refused
    // by the framing, not allocated.
    let addr = fake_server(|mut s| {
        read_request(&mut s);
        let _ = s.write_all(&(protocol::MAX_FRAME + 1).to_be_bytes());
        let _ = s.write_all(b"junk");
        std::thread::sleep(Duration::from_millis(200));
    });
    let mut c = Client::connect_timeout(addr, Duration::from_secs(5)).unwrap();
    let err = c.request(&status).unwrap_err();
    assert!(err.contains("frame"), "oversized: {err}");

    // Stalled server: reads the request and never answers — the I/O
    // timeout must turn that into an error instead of a forever-hang.
    let addr = fake_server(|mut s| {
        read_request(&mut s);
        std::thread::sleep(Duration::from_secs(20));
    });
    let mut c = Client::connect_timeout(addr, Duration::from_millis(300)).unwrap();
    let start = Instant::now();
    let err = c.request(&status).unwrap_err();
    assert!(err.contains("timed out"), "stall: {err}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timeout failed to bound the stall"
    );
}

// ---------- deadline propagation ----------

/// Satellite: the wire deadline covers queue wait. A trivial query with
/// a 1 ms deadline queued behind ~600 ms of divergent blockers must
/// come back incomplete — its budget was spent waiting — while the same
/// query with a generous deadline completes.
#[test]
fn wire_deadlines_subtract_queue_wait_like_the_in_process_server() {
    let obs = Obs::new();
    let (mgr, front) = start_front(
        &obs,
        TcpFrontOptions {
            workers: 1,
            queue_depth: 64,
            drain_deadline: Duration::from_secs(3),
            ..TcpFrontOptions::default()
        },
    );
    mgr.load("d", DIVERGENT).expect("load divergent");
    mgr.load("triv", "t: a.").expect("load trivial");

    let probe_stream = TcpStream::connect(front.addr()).unwrap();
    probe_stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut probe = RawClient::new(probe_stream);
    let blocker_stream = TcpStream::connect(front.addr()).unwrap();
    blocker_stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut blockers = RawClient::new(blocker_stream);

    // Pipeline four blockers; each pins the single worker for ~200 ms
    // (incomplete answers are never cached, so each re-evaluates).
    for _ in 0..4 {
        blockers
            .send(&query_req("d", "t: X", Strategy::Sld, Some(200)))
            .expect("send blocker");
    }
    // Let the pump admit them so the probe is strictly behind.
    std::thread::sleep(Duration::from_millis(100));

    // The probe uses magic sets: that path re-evaluates per query (the
    // rewrite is query-specific) and fixpoint evaluation consults the
    // wall-clock at every round boundary, so a zero remaining budget
    // trips before the first round. SLD only samples the clock every
    // 1024 resolution steps (a trivial proof finishes under any
    // deadline, expired or not), and plain bottom-up answers from the
    // prebuilt snapshot model without consulting the budget at all —
    // neither proves anything about queue-wait subtraction.
    probe
        .send(&query_req("triv", "t: X", Strategy::Magic, Some(1)))
        .expect("send probe");

    // Drain the blocker answers as the worker produces them (their
    // divergent partial answer sets are big; leaving them unread would
    // stall the worker's writes and — correctly — get the connection
    // reaped for the stall). Every blocker gets its partial answer.
    for i in 0..4 {
        let resp = blockers.recv().unwrap_or_else(|e| panic!("blocker {i}: {e}"));
        assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "blocker {i}: {resp}");
        assert_eq!(
            get(&resp, "complete"),
            Some(&Json::Bool(false)),
            "blocker {i}: {resp}"
        );
    }

    let resp = probe.recv().expect("probe");
    assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "{resp}");
    assert_eq!(
        get(&resp, "complete"),
        Some(&Json::Bool(false)),
        "a 1 ms deadline that expired in the queue must trip, not grant \
         a fresh 1 ms budget: {resp}"
    );

    // Control: with queue wait subtracted from a generous deadline,
    // the same trivial query completes.
    let resp = probe
        .request(&query_req("triv", "t: X", Strategy::Magic, Some(30_000)))
        .expect("control");
    assert_eq!(get(&resp, "complete"), Some(&Json::Bool(true)), "{resp}");

    let snap = obs.metrics.snapshot();
    let (count, _) = snap.histogram("net.queue_wait_us").unwrap_or((0, 0));
    assert!(count >= 6, "queue-wait histogram missing samples: {count}");
    shutdown_within(front, Duration::from_secs(30));
}

// ---------- health + drain ----------

/// The `health` op answers without a tenant and without touching any
/// session lock, and shutdown drains admitted work within its deadline.
#[test]
fn health_answers_and_shutdown_drains_admitted_work() {
    let obs = Obs::new();
    let (mgr, front) = start_front(
        &obs,
        TcpFrontOptions {
            workers: 1,
            drain_deadline: Duration::from_secs(2),
            ..TcpFrontOptions::default()
        },
    );
    // The divergent generator filtered to zero answers: a blocker query
    // burns its whole engine budget but responds with a tiny frame.
    // This client deliberately reads nothing until after shutdown, so a
    // big partial answer set would overflow the socket buffer and get
    // the connection — correctly — reaped for the write stall,
    // destroying the very answers this test drains.
    let filtered = format!("{DIVERGENT}\nblocked(X) :- t: X, missing: X.");
    mgr.load("d", &filtered).expect("load");

    let stream = TcpStream::connect(front.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut c = RawClient::new(stream);
    let resp = c
        .request(&Request {
            tenant: String::new(),
            op: RequestOp::Health,
        })
        .expect("health");
    assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "{resp}");
    assert_eq!(get(&resp, "draining"), Some(&Json::Bool(false)), "{resp}");
    assert_eq!(get(&resp, "resident"), Some(&Json::U64(1)), "{resp}");
    match get(&resp, "open_connections") {
        Some(Json::U64(n)) => assert!(*n >= 1, "{resp}"),
        other => panic!("open_connections missing: {other:?}"),
    }
    assert!(matches!(get(&resp, "queued"), Some(Json::U64(_))), "{resp}");

    // Two CPU-blockers on the single worker, then shutdown: the drain
    // deadline covers both, so both answers arrive before the socket
    // closes, and shutdown returns promptly.
    for _ in 0..2 {
        c.send(&query_req("d", "blocked(X)", Strategy::Sld, Some(100)))
            .expect("send");
    }
    // Wait until the pump has actually admitted both queries (the
    // single worker is CPU-bound on the first one, which can starve the
    // accept loop for a while on a small box): draining stops reading,
    // so a frame still in the socket would be dropped — and an unread
    // receive buffer at close turns the FIN into an RST that destroys
    // the buffered answers on the client side.
    assert!(
        eventually(Duration::from_secs(10), || {
            obs.metrics
                .snapshot()
                .counter("net.frames.in")
                .unwrap_or(0)
                >= 3 // health + two queries
        }),
        "pump never admitted both queries"
    );
    let elapsed = shutdown_within(front, Duration::from_secs(30));
    assert!(
        elapsed < Duration::from_secs(10),
        "drain overran its deadline: {elapsed:?}"
    );
    for i in 0..2 {
        let resp = c.recv().unwrap_or_else(|e| panic!("drained answer {i}: {e}"));
        assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "{i}: {resp}");
    }
}

// ---------- focused governance clocks ----------

/// Idle, slow-read, and buffer-cap reaping, each on its own connection
/// against one front with tight clocks.
#[test]
fn governance_clocks_reap_idle_slow_and_oversized_buffers() {
    let obs = Obs::new();
    let (mgr, front) = start_front(
        &obs,
        TcpFrontOptions {
            workers: 1,
            idle_timeout: Duration::from_millis(150),
            frame_timeout: Duration::from_millis(150),
            read_buf_cap: 4096,
            ..TcpFrontOptions::default()
        },
    );
    mgr.load("t", "t: a.").expect("load");
    let addr = front.addr();

    // Idle: says nothing, gets reaped.
    let mut idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Slowloris: starts a frame, never finishes.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    slow.write_all(&1000u32.to_be_bytes()).unwrap();

    // Buffer hog: a legal frame declaration far past the read-buffer
    // cap, streamed for real.
    let mut hog = TcpStream::connect(addr).unwrap();
    hog.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    hog.write_all(&(1024u32 * 1024).to_be_bytes()).unwrap();
    let _ = hog.write_all(&vec![b'x'; 64 * 1024]);

    // All three sockets must be closed on us...
    let mut buf = [0u8; 256];
    assert!(matches!(idle.read(&mut buf), Ok(0) | Err(_)), "idle not reaped");
    assert!(matches!(slow.read(&mut buf), Ok(0) | Err(_)), "slowloris not reaped");
    assert!(matches!(hog.read(&mut buf), Ok(0) | Err(_)), "buffer hog not reaped");
    // ...with each reap on the right ledger line.
    assert!(
        eventually(Duration::from_secs(10), || {
            let snap = obs.metrics.snapshot();
            snap.counter("net.reaped.idle").unwrap_or(0) >= 1
                && snap.counter("net.reaped.slow_read").unwrap_or(0) >= 1
                && snap.counter("net.reaped.buffer").unwrap_or(0) >= 1
        }),
        "reap ledger: {:?}",
        obs.metrics.snapshot().counters
    );

    // The front still serves after all that.
    let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).unwrap();
    let resp = c
        .request(&query_req("t", "t: X", Strategy::Sld, Some(30_000)))
        .expect("serve after reaps");
    assert_eq!(get(&resp, "ok"), Some(&Json::Bool(true)), "{resp}");
    shutdown_within(front, Duration::from_secs(30));
}
