//! An interactive C-logic top level.
//!
//! ```text
//! cargo run --example repl
//! ?- person: john[age => 28].        % assert a fact (ends with '.')
//! ?- :- person: X[age => A].         % ask a query
//! X = john, A = 28
//! ?- :strategy tabled                % switch evaluation strategy
//! ?- :program                        % show the loaded program
//! ?- :translated                     % show the Theorem 1 translation
//! ?- :quit
//! ```
//!
//! Lines starting with `:-` (or `?-`) are queries; other clause-shaped
//! lines extend the program.

use clogic::session::{Session, Strategy};
use std::io::{self, BufRead, Write};

fn parse_strategy(name: &str) -> Option<Strategy> {
    match name.trim().to_ascii_lowercase().as_str() {
        "direct" => Some(Strategy::Direct),
        "sld" => Some(Strategy::Sld),
        "naive" => Some(Strategy::BottomUpNaive),
        "seminaive" | "semi-naive" => Some(Strategy::BottomUpSemiNaive),
        "tabled" | "tabling" => Some(Strategy::Tabled),
        "magic" => Some(Strategy::Magic),
        _ => None,
    }
}

fn main() -> io::Result<()> {
    let mut session = Session::new();
    let mut strategy = Strategy::Direct;
    let stdin = io::stdin();
    let mut out = io::stdout();

    println!("C-logic top level (strategy: {strategy:?}). Type :help for commands.");
    loop {
        print!("?- ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            let mut words = cmd.split_whitespace();
            match words.next() {
                Some("quit") | Some("q") => break,
                Some("help") => {
                    println!(
                        ":strategy <direct|sld|naive|seminaive|tabled|magic>\n\
                         :program      show the loaded program\n\
                         :translated   show the first-order translation\n\
                         :quit"
                    );
                    continue;
                }
                Some("strategy") => {
                    match words.next().and_then(parse_strategy) {
                        Some(s) => {
                            strategy = s;
                            println!("strategy: {strategy:?}");
                        }
                        None => println!("unknown strategy"),
                    }
                    continue;
                }
                Some("program") => {
                    print!("{}", session.program());
                    continue;
                }
                Some("translated") => {
                    print!("{}", session.translated());
                    continue;
                }
                Some("-") => {
                    // ":- query." typed at the prompt
                    let query = cmd.trim_start_matches('-');
                    run_query(&mut session, query, strategy);
                    continue;
                }
                _ => {
                    println!("unknown command; :help");
                    continue;
                }
            }
        }
        if let Some(query) = line.strip_prefix("?-") {
            run_query(&mut session, query, strategy);
            continue;
        }
        // Otherwise: program text.
        match session.load(line) {
            Ok(()) => println!("ok"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

fn run_query(session: &mut Session, query: &str, strategy: Strategy) {
    match session.query(query, strategy) {
        Ok(answers) => {
            if answers.rows.is_empty() {
                println!("no");
            } else {
                for row in &answers.rows {
                    println!("{row}");
                }
            }
            if !answers.complete {
                match &answers.degradation {
                    Some(d) => println!("% incomplete: {d}"),
                    None => println!("% warning: search truncated by resource limits"),
                }
            }
            // The session is reused across the whole top-level run, so
            // repeated queries hit the per-epoch answer cache and loads
            // only cost their delta.
            let stats = session.cache_stats();
            println!(
                "% epoch {} | answer cache: {} hit{}, {} miss{}",
                session.epoch(),
                stats.hits,
                if stats.hits == 1 { "" } else { "s" },
                stats.misses,
                if stats.misses == 1 { "" } else { "es" },
            );
        }
        Err(e) => println!("error: {e}"),
    }
}
