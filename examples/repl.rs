//! An interactive C-logic top level.
//!
//! ```text
//! cargo run --example repl
//! ?- person: john[age => 28].        % assert a fact (ends with '.')
//! ?- :- person: X[age => A].         % ask a query
//! X = john, A = 28
//! ?- :strategy tabled                % switch evaluation strategy
//! ?- :program                        % show the loaded program
//! ?- :translated                     % show the Theorem 1 translation
//! ?- :save db                       % persist the session to ./db
//! ?- :open db                       % recover a session from ./db
//! ?- :explain person: X[age => A]   % profile the query (EXPLAIN mode)
//! ?- :metrics                       % dump the metrics registry
//! ?- :serve tenants 8               % serve many tenants from ./tenants
//! ?- :tenant alice                  % switch the current tenant
//! ?- :tenants                       % list tenants (state/epoch/breaker)
//! ?- :local                         % detach, back to the local session
//! ?- :quit
//! ```
//!
//! Lines starting with `:-` (or `?-`) are queries; other clause-shaped
//! lines extend the program.
//!
//! The top level is hardened: parse errors print *all* their diagnostics
//! with positions, evaluation panics are caught and reported, and no
//! error short of stdin closing ends the loop. A session opened (or
//! saved) with `:open`/`:save` logs every load durably and survives a
//! crash — reopen it to recover, and the recovery report prints what was
//! found on disk.

use clogic::obs::Render;
use clogic::session::{Session, SessionError, Strategy};
use clogic::store::{FileStorage, Storage};
use clogic_serve::{ManagerOptions, SessionManager, StorageFactory};
use std::fmt::Display;
use std::io::{self, BufRead, Write};
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

fn parse_strategy(name: &str) -> Option<Strategy> {
    match name.trim().to_ascii_lowercase().as_str() {
        "direct" => Some(Strategy::Direct),
        "sld" => Some(Strategy::Sld),
        "naive" => Some(Strategy::BottomUpNaive),
        "seminaive" | "semi-naive" => Some(Strategy::BottomUpSemiNaive),
        "tabled" | "tabling" => Some(Strategy::Tabled),
        "magic" => Some(Strategy::Magic),
        _ => None,
    }
}

/// Prints a (possibly multi-line) diagnostic, one `!`-prefixed line per
/// underlying error, so a recovered parse with three bad clauses shows
/// three positioned messages.
fn report_error(e: &dyn Display) {
    for line in e.to_string().lines() {
        println!("! {line}");
    }
}

/// Runs a session action behind a panic guard: an engine bug becomes a
/// printed diagnostic, never an exit. The session itself is plain data
/// (no poisoned locks), so it stays usable afterwards.
fn guarded<T>(action: impl FnOnce() -> Result<T, SessionError>) -> Option<T> {
    match panic::catch_unwind(AssertUnwindSafe(action)) {
        Ok(Ok(v)) => Some(v),
        Ok(Err(e)) => {
            report_error(&e);
            None
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            println!("! internal error (caught panic): {msg}");
            None
        }
    }
}

fn main() {
    let mut session = Session::new();
    let mut strategy = Strategy::Direct;
    // `:serve` attaches a multi-tenant manager; while attached, loads
    // and queries route to the current tenant instead of `session`.
    let mut serve: Option<(SessionManager, String)> = None;
    let stdin = io::stdin();
    let mut out = io::stdout();

    println!("C-logic top level (strategy: {strategy:?}). Type :help for commands.");
    loop {
        print!("?- ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                report_error(&format!("cannot read input: {e}"));
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            let mut words = cmd.split_whitespace();
            match words.next() {
                Some("quit") | Some("q") => break,
                Some("help") => {
                    println!(
                        ":strategy <direct|sld|naive|seminaive|tabled|magic>\n\
                         :program       show the loaded program\n\
                         :retract <cls> retract loaded clauses (as :program shows them)\n\
                         :translated    show the first-order translation\n\
                         :save <path>   persist the session to a directory (then keep logging)\n\
                         :open <path>   recover a session from a directory\n\
                         :snapshot      compact the write-ahead log now\n\
                         :store         show persistence health (circuit breaker)\n\
                         :explain <q>   profile query <q> under the current strategy\n\
                         :metrics       dump the session's metrics registry\n\
                         :serve <dir> [cap]  serve many tenants from <dir> (LRU capacity cap)\n\
                         :tenant <name> switch the current tenant (serve mode)\n\
                         :tenants       list tenants: state, epoch, breaker\n\
                         :local         detach the manager, back to the local session\n\
                         :quit"
                    );
                }
                Some("strategy") => match words.next().and_then(parse_strategy) {
                    Some(s) => {
                        strategy = s;
                        println!("strategy: {strategy:?}");
                    }
                    None => println!("unknown strategy"),
                },
                Some("program") => match &serve {
                    Some((mgr, tenant)) => match mgr.open(tenant) {
                        Ok(pin) => {
                            let s = pin.lock().unwrap_or_else(|e| e.into_inner());
                            print!("{}", s.program());
                        }
                        Err(e) => report_error(&e),
                    },
                    None => print!("{}", session.program()),
                },
                Some("retract") => {
                    let src = cmd["retract".len()..].trim();
                    if src.is_empty() {
                        println!("usage: :retract <clause(s)>   (quote skolemized facts as :program shows them)");
                    } else {
                        match &serve {
                            Some((mgr, tenant)) => match mgr.retract(tenant, src) {
                                Ok(report) => println!(
                                    "retracted (tenant `{tenant}`, epoch {}, {})",
                                    report.epoch,
                                    if report.persisted() {
                                        "persisted"
                                    } else {
                                        "NOT persisted"
                                    }
                                ),
                                Err(e) => report_error(&e),
                            },
                            None => {
                                if guarded(|| session.retract(src)).is_some() {
                                    println!("retracted (epoch {})", session.epoch());
                                }
                            }
                        }
                    }
                }
                Some("translated") => {
                    let shown = guarded(|| {
                        let text = session.translated().to_string();
                        print!("{text}");
                        Ok(())
                    });
                    if shown.is_none() {
                        println!("! translation failed; program unchanged");
                    }
                }
                Some("save") if serve.is_some() => {
                    println!("! :save targets the local session; :local to detach first");
                }
                Some("save") => match words.next() {
                    Some(path) => {
                        if guarded(|| session.save(path)).is_some() {
                            println!("saved to `{path}`; further loads are logged durably");
                        }
                    }
                    None => println!("usage: :save <path>"),
                },
                Some("open") if serve.is_some() => {
                    println!("! :open targets the local session; :local to detach first");
                }
                Some("open") => match words.next() {
                    Some(path) => {
                        if let Some((recovered, report)) = guarded(|| Session::persistent(path)) {
                            session = recovered;
                            for l in report.to_string().lines() {
                                println!("% {l}");
                            }
                        }
                    }
                    None => println!("usage: :open <path>"),
                },
                Some("snapshot") if serve.is_some() => {
                    println!("! :snapshot targets the local session; :local to detach first");
                }
                Some("snapshot") => {
                    if guarded(|| session.snapshot()).is_some() {
                        println!("log compacted into snapshot");
                    }
                }
                Some("store") if serve.is_some() => print_tenants(&serve),
                Some("store") => {
                    if session.persistence_breaker_open() {
                        println!(
                            "% circuit breaker OPEN: persistence suspended; \
                             queries keep working, loads stay in memory"
                        );
                    } else {
                        println!("% persistence healthy (circuit breaker closed)");
                    }
                }
                Some("explain") if serve.is_some() => {
                    println!("! :explain targets the local session; :local to detach first");
                }
                Some("explain") => {
                    let query = cmd["explain".len()..].trim();
                    if query.is_empty() {
                        println!("usage: :explain <query>");
                    } else if let Some(profile) =
                        guarded(|| session.explain(query, strategy))
                    {
                        println!("{}", profile.render_text());
                    }
                }
                Some("metrics") => {
                    let text = match &serve {
                        Some((mgr, _)) => mgr.obs().metrics.snapshot().render_text(),
                        None => session.metrics().render_text(),
                    };
                    if text.is_empty() {
                        println!("% no metrics recorded yet");
                    } else {
                        println!("{text}");
                    }
                }
                Some("serve") => match words.next() {
                    Some(dir) => {
                        let capacity = words.next().and_then(|w| w.parse().ok()).unwrap_or(8);
                        match attach_manager(dir, capacity) {
                            Ok(mgr) => {
                                serve = Some((mgr, "default".to_string()));
                                println!(
                                    "serving tenants from `{dir}` (LRU capacity {capacity}); \
                                     current tenant `default` — :tenant <name> to switch, \
                                     :local to detach"
                                );
                            }
                            Err(e) => report_error(&e),
                        }
                    }
                    None => println!("usage: :serve <dir> [capacity]"),
                },
                Some("tenant") => match (&mut serve, words.next()) {
                    (Some((_, tenant)), Some(name)) => {
                        *tenant = name.to_string();
                        println!("tenant: {name}");
                    }
                    (None, _) => println!("no manager attached; :serve <dir> first"),
                    (_, None) => println!("usage: :tenant <name>"),
                },
                Some("tenants") => print_tenants(&serve),
                Some("local") => {
                    if serve.take().is_some() {
                        println!("detached; back to the local in-memory session");
                    } else {
                        println!("already local");
                    }
                }
                Some("-") => {
                    // ":- query." typed at the prompt
                    let query = cmd.trim_start_matches('-');
                    match &serve {
                        Some((mgr, tenant)) => run_query_multi(mgr, tenant, query, strategy),
                        None => run_query(&mut session, query, strategy),
                    }
                }
                _ => println!("unknown command; :help"),
            }
            continue;
        }
        if let Some(query) = line.strip_prefix("?-") {
            match &serve {
                Some((mgr, tenant)) => run_query_multi(mgr, tenant, query, strategy),
                None => run_query(&mut session, query, strategy),
            }
            continue;
        }
        // Otherwise: program text.
        match &serve {
            Some((mgr, tenant)) => match mgr.load(tenant, line) {
                Ok(report) => {
                    println!(
                        "ok (tenant `{tenant}`, epoch {}, {})",
                        report.epoch,
                        if report.persisted() { "persisted" } else { "NOT persisted" }
                    );
                    if report.breaker_open {
                        println!(
                            "% warning: tenant breaker open — loads stay in memory \
                             until the store heals"
                        );
                    }
                }
                Err(e) => report_error(&e),
            },
            None => {
                if guarded(|| session.load(line)).is_some() {
                    println!("ok");
                }
            }
        }
    }
}

/// Builds a [`SessionManager`] whose tenants each persist to their own
/// subdirectory of `dir`.
fn attach_manager(dir: &str, capacity: usize) -> Result<SessionManager, clogic::store::StoreError> {
    let root = std::path::PathBuf::from(dir);
    FileStorage::create(&root)?;
    let factory: StorageFactory = Arc::new(move |name| {
        Ok(Box::new(FileStorage::create(root.join(name))?) as Box<dyn Storage>)
    });
    Ok(SessionManager::new(
        factory,
        ManagerOptions {
            capacity,
            ..ManagerOptions::default()
        },
    ))
}

/// The `:tenants` listing — one line per tenant with lifecycle state,
/// epoch, and persistence-breaker health.
fn print_tenants(serve: &Option<(SessionManager, String)>) {
    let Some((mgr, current)) = serve else {
        println!("no manager attached; :serve <dir> first");
        return;
    };
    let tenants = mgr.tenants();
    if tenants.is_empty() {
        println!("% no tenants yet");
        return;
    }
    println!("% {} resident of {} known", mgr.resident(), tenants.len());
    for t in tenants {
        println!(
            "% {}{} — {}, epoch {}, breaker {}",
            t.name,
            if t.name == *current { " (current)" } else { "" },
            t.state,
            t.epoch.map_or_else(|| "?".to_string(), |e| e.to_string()),
            match t.breaker_open {
                Some(true) => "OPEN",
                Some(false) => "closed",
                None => "-",
            },
        );
    }
}

/// Routes a query to the current tenant through the manager (which
/// transparently recovers the tenant if it was evicted).
fn run_query_multi(mgr: &SessionManager, tenant: &str, query: &str, strategy: Strategy) {
    match mgr.query(tenant, query, strategy) {
        Ok(answers) => {
            if answers.rows.is_empty() {
                println!("no");
            } else {
                for row in &answers.rows {
                    println!("{row}");
                }
            }
            if !answers.complete {
                match &answers.degradation {
                    Some(d) => println!("% incomplete: {d}"),
                    None => println!("% warning: search truncated by resource limits"),
                }
            }
        }
        Err(e) => report_error(&e),
    }
}

fn run_query(session: &mut Session, query: &str, strategy: Strategy) {
    let Some(answers) = guarded(|| session.query(query, strategy)) else {
        return;
    };
    if answers.rows.is_empty() {
        println!("no");
    } else {
        for row in &answers.rows {
            println!("{row}");
        }
    }
    if !answers.complete {
        match &answers.degradation {
            Some(d) => println!("% incomplete: {d}"),
            None => println!("% warning: search truncated by resource limits"),
        }
    }
    // The session is reused across the whole top-level run, so repeated
    // queries hit the per-epoch answer cache and loads only cost their
    // delta.
    let stats = session.cache_stats();
    println!(
        "% epoch {} | answer cache: {} hit{}, {} miss{}",
        session.epoch(),
        stats.hits,
        if stats.hits == 1 { "" } else { "s" },
        stats.misses,
        if stats.misses == 1 { "" } else { "es" },
    );
    if session.persistence_breaker_open() {
        println!("% warning: persistence circuit breaker open — answers served read-only");
    }
}
