//! An interactive C-logic top level.
//!
//! ```text
//! cargo run --example repl
//! ?- person: john[age => 28].        % assert a fact (ends with '.')
//! ?- :- person: X[age => A].         % ask a query
//! X = john, A = 28
//! ?- :strategy tabled                % switch evaluation strategy
//! ?- :program                        % show the loaded program
//! ?- :translated                     % show the Theorem 1 translation
//! ?- :save db                       % persist the session to ./db
//! ?- :open db                       % recover a session from ./db
//! ?- :explain person: X[age => A]   % profile the query (EXPLAIN mode)
//! ?- :metrics                       % dump the metrics registry
//! ?- :quit
//! ```
//!
//! Lines starting with `:-` (or `?-`) are queries; other clause-shaped
//! lines extend the program.
//!
//! The top level is hardened: parse errors print *all* their diagnostics
//! with positions, evaluation panics are caught and reported, and no
//! error short of stdin closing ends the loop. A session opened (or
//! saved) with `:open`/`:save` logs every load durably and survives a
//! crash — reopen it to recover, and the recovery report prints what was
//! found on disk.

use clogic::obs::Render;
use clogic::session::{Session, SessionError, Strategy};
use std::fmt::Display;
use std::io::{self, BufRead, Write};
use std::panic::{self, AssertUnwindSafe};

fn parse_strategy(name: &str) -> Option<Strategy> {
    match name.trim().to_ascii_lowercase().as_str() {
        "direct" => Some(Strategy::Direct),
        "sld" => Some(Strategy::Sld),
        "naive" => Some(Strategy::BottomUpNaive),
        "seminaive" | "semi-naive" => Some(Strategy::BottomUpSemiNaive),
        "tabled" | "tabling" => Some(Strategy::Tabled),
        "magic" => Some(Strategy::Magic),
        _ => None,
    }
}

/// Prints a (possibly multi-line) diagnostic, one `!`-prefixed line per
/// underlying error, so a recovered parse with three bad clauses shows
/// three positioned messages.
fn report_error(e: &dyn Display) {
    for line in e.to_string().lines() {
        println!("! {line}");
    }
}

/// Runs a session action behind a panic guard: an engine bug becomes a
/// printed diagnostic, never an exit. The session itself is plain data
/// (no poisoned locks), so it stays usable afterwards.
fn guarded<T>(action: impl FnOnce() -> Result<T, SessionError>) -> Option<T> {
    match panic::catch_unwind(AssertUnwindSafe(action)) {
        Ok(Ok(v)) => Some(v),
        Ok(Err(e)) => {
            report_error(&e);
            None
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            println!("! internal error (caught panic): {msg}");
            None
        }
    }
}

fn main() {
    let mut session = Session::new();
    let mut strategy = Strategy::Direct;
    let stdin = io::stdin();
    let mut out = io::stdout();

    println!("C-logic top level (strategy: {strategy:?}). Type :help for commands.");
    loop {
        print!("?- ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                report_error(&format!("cannot read input: {e}"));
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(cmd) = line.strip_prefix(':') {
            let mut words = cmd.split_whitespace();
            match words.next() {
                Some("quit") | Some("q") => break,
                Some("help") => {
                    println!(
                        ":strategy <direct|sld|naive|seminaive|tabled|magic>\n\
                         :program       show the loaded program\n\
                         :translated    show the first-order translation\n\
                         :save <path>   persist the session to a directory (then keep logging)\n\
                         :open <path>   recover a session from a directory\n\
                         :snapshot      compact the write-ahead log now\n\
                         :store         show persistence health (circuit breaker)\n\
                         :explain <q>   profile query <q> under the current strategy\n\
                         :metrics       dump the session's metrics registry\n\
                         :quit"
                    );
                }
                Some("strategy") => match words.next().and_then(parse_strategy) {
                    Some(s) => {
                        strategy = s;
                        println!("strategy: {strategy:?}");
                    }
                    None => println!("unknown strategy"),
                },
                Some("program") => print!("{}", session.program()),
                Some("translated") => {
                    let shown = guarded(|| {
                        let text = session.translated().to_string();
                        print!("{text}");
                        Ok(())
                    });
                    if shown.is_none() {
                        println!("! translation failed; program unchanged");
                    }
                }
                Some("save") => match words.next() {
                    Some(path) => {
                        if guarded(|| session.save(path)).is_some() {
                            println!("saved to `{path}`; further loads are logged durably");
                        }
                    }
                    None => println!("usage: :save <path>"),
                },
                Some("open") => match words.next() {
                    Some(path) => {
                        if let Some((recovered, report)) = guarded(|| Session::persistent(path)) {
                            session = recovered;
                            for l in report.to_string().lines() {
                                println!("% {l}");
                            }
                        }
                    }
                    None => println!("usage: :open <path>"),
                },
                Some("snapshot") => {
                    if guarded(|| session.snapshot()).is_some() {
                        println!("log compacted into snapshot");
                    }
                }
                Some("store") => {
                    if session.persistence_breaker_open() {
                        println!(
                            "% circuit breaker OPEN: persistence suspended; \
                             queries keep working, loads stay in memory"
                        );
                    } else {
                        println!("% persistence healthy (circuit breaker closed)");
                    }
                }
                Some("explain") => {
                    let query = cmd["explain".len()..].trim();
                    if query.is_empty() {
                        println!("usage: :explain <query>");
                    } else if let Some(profile) =
                        guarded(|| session.explain(query, strategy))
                    {
                        println!("{}", profile.render_text());
                    }
                }
                Some("metrics") => {
                    let text = session.metrics().render_text();
                    if text.is_empty() {
                        println!("% no metrics recorded yet");
                    } else {
                        println!("{text}");
                    }
                }
                Some("-") => {
                    // ":- query." typed at the prompt
                    let query = cmd.trim_start_matches('-');
                    run_query(&mut session, query, strategy);
                }
                _ => println!("unknown command; :help"),
            }
            continue;
        }
        if let Some(query) = line.strip_prefix("?-") {
            run_query(&mut session, query, strategy);
            continue;
        }
        // Otherwise: program text.
        if guarded(|| session.load(line)).is_some() {
            println!("ok");
        }
    }
}

fn run_query(session: &mut Session, query: &str, strategy: Strategy) {
    let Some(answers) = guarded(|| session.query(query, strategy)) else {
        return;
    };
    if answers.rows.is_empty() {
        println!("no");
    } else {
        for row in &answers.rows {
            println!("{row}");
        }
    }
    if !answers.complete {
        match &answers.degradation {
            Some(d) => println!("% incomplete: {d}"),
            None => println!("% warning: search truncated by resource limits"),
        }
    }
    // The session is reused across the whole top-level run, so repeated
    // queries hit the per-epoch answer cache and loads only cost their
    // delta.
    let stats = session.cache_stats();
    println!(
        "% epoch {} | answer cache: {} hit{}, {} miss{}",
        session.epoch(),
        stats.hits,
        if stats.hits == 1 { "" } else { "s" },
        stats.misses,
        if stats.misses == 1 { "" } else { "es" },
    );
    if session.persistence_breaker_open() {
        println!("% warning: persistence circuit breaker open — answers served read-only");
    }
}
