//! A registrar database: the complex-object workload the paper's
//! introduction motivates — entities with multi-valued properties
//! (students with several co-advisors, §2.2), a type hierarchy, derived
//! dynamic types, and the optional static-typing layer (§2.3/§6) checked
//! as schema constraints rather than built into the logic.
//!
//! Run with `cargo run --example registrar`.

use clogic::core::schema::Schema;
use clogic::core::transform::Transformer;
use clogic::session::{Session, Strategy};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

const DB: &str = r#"
    student < person.
    instructor < person.
    ta < student.
    ta < instructor.

    instructor: david[course => {courseid: cse538, courseid: cse505}].
    instructor: maria[course => courseid: cse526].

    student: ann[advisor => {david, maria}, credits => 24].
    student: bob[advisor => david, credits => 9].
    ta: carol[advisor => maria, course => courseid: cse114, credits => 18].

    % dynamic type: seniors are students with enough credits
    senior < student.
    senior: X :- student: X[credits => C], C >= 18.

    % co-advised students have two distinct advisors (§2.2)
    coadvised: X :- student: X[advisor => A], student: X[advisor => B], A \= B.

    % teaching load as a derived multi-valued label
    load: I[teaches => C] :- instructor: I[course => C].
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    session.load(DB)?;

    println!("== co-advised students (multi-valued advisor label) ==");
    for row in &session.query("coadvised: X", Strategy::Direct)?.rows {
        println!("  {row}");
    }

    println!("\n== seniors (derived dynamic type) ==");
    for row in &session
        .query("senior: X[credits => C]", Strategy::BottomUpSemiNaive)?
        .rows
    {
        println!("  {row}");
    }

    println!("\n== TAs are both students and instructors (hierarchy) ==");
    println!(
        "  student: carol ? {}",
        session.query("student: carol", Strategy::Direct)?.holds()
    );
    println!(
        "  instructor: carol ? {}",
        session
            .query("instructor: carol", Strategy::Direct)?
            .holds()
    );
    println!(
        "  person: carol ? {}",
        session.query("person: carol", Strategy::Direct)?.holds()
    );

    println!("\n== subset query over derived load (§5) ==");
    let r = session.query(
        "load: david[teaches => {courseid: cse538, courseid: cse505}]",
        Strategy::Tabled,
    )?;
    println!("  david teaches both cse538 and cse505 ? {}", r.holds());

    println!("\n== negation as failure (the §4 extension) ==");
    session.load(
        "overloaded: X :- instructor: X, \\+ light_load(X).\n\
                  light_load(X) :- instructor: X[course => C1], \\+ multi(X).\n\
                  multi(X) :- instructor: X[course => C1], instructor: X[course => C2], C1 \\= C2.",
    )?;
    for row in &session
        .query("overloaded: X", Strategy::BottomUpSemiNaive)?
        .rows
    {
        println!("  {row}");
    }

    // --- the optional static layer: schema constraints (§2.3, §6) ---
    let mut schema = Schema::new();
    schema.require("student", "advisor", "instructor");
    schema.require("student", "credits", "object");
    schema.declare_functional("credits");

    // Check the least model of the translated program.
    let program = session.program().clone();
    let fo = Transformer::new().program(&program);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    let model = evaluate(&compiled, FixpointOptions::default())?;
    let mut sig = program.signature();
    sig.types.insert(clogic::core::object_type());
    let violations = schema.check(&model.ground_atoms(), &sig);

    println!("\n== schema audit (static types layered on top) ==");
    if violations.is_empty() {
        println!("  database satisfies the schema");
    } else {
        for v in &violations {
            println!("  violation: {v}");
        }
    }

    // The static-type reading as rules: objects with all required
    // properties automatically belong to the type (§2.3).
    println!("\n== static-type membership rules (generated) ==");
    for rule in schema.membership_rules() {
        println!("  {rule}");
    }
    Ok(())
}
