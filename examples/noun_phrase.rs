//! The paper's Example 3: a noun-phrase grammar as a C-logic program.
//!
//! Reproduces the query of §4 — `:- noun_phrase: X[num => plural].` with
//! answers `np(the, students)` and `np(all, students)` — and shows the
//! generalized logic program and the §4 redundancy elimination at work.
//!
//! Run with `cargo run --example noun_phrase`.

use clogic::core::optimize::Optimizer;
use clogic::core::transform::Transformer;
use clogic::session::{Session, Strategy};
use clogic_parser::parse_program;

const GRAMMAR: &str = r#"
    name: john.
    name: bob.

    determiner: the[num => {singular, plural}, def => definite].
    determiner: a[num => singular, def => indef].
    determiner: all[num => plural, def => indef].

    noun: student[num => singular].
    noun: students[num => plural].

    propernp: X[pers => 3, num => singular, def => definite] :-
        name: X.

    commonnp: np(Det, Noun)[pers => 3, num => N, def => D] :-
        determiner: Det[num => N, def => D],
        noun: Noun[num => N].

    propernp < noun_phrase.
    commonnp < noun_phrase.
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();
    session.load(GRAMMAR)?;

    println!("== the paper's query: plural noun phrases ==");
    let answers = session.query(":- noun_phrase: X[num => plural].", Strategy::Direct)?;
    for row in &answers.rows {
        println!("  X = {}", row.get("X").unwrap());
    }

    println!("\n== all noun phrases with their definiteness ==");
    let answers = session.query("noun_phrase: X[def => D]", Strategy::Tabled)?;
    for row in &answers.rows {
        println!("  {row}");
    }

    // Show the generalized logic program for the commonnp rule and its
    // optimized form (the paper's §4 walk-through).
    let program = parse_program(GRAMMAR)?;
    let transformer = Transformer::new();
    let optimizer = Optimizer::new(&program);
    let commonnp = program
        .clauses
        .iter()
        .find(|c| c.to_string().starts_with("commonnp"))
        .expect("grammar has the commonnp rule");

    println!("\n== commonnp as a generalized definite clause ==");
    let generalized = transformer.clause(commonnp);
    println!("  {generalized}");

    println!("\n== after the two redundancy-elimination rules ==");
    let optimized = optimizer
        .optimize_clause(&generalized)
        .expect("not subsumed");
    println!("  {optimized}");

    println!("\n== split into ordinary first-order definite clauses ==");
    for clause in optimized.split() {
        println!("  {clause}");
    }

    let plain = transformer.program(&program);
    let opt = optimizer.optimized_program(&transformer, &program);
    println!(
        "\nwhole-program effect: {} clauses / {} atoms  →  {} clauses / {} atoms",
        plain.len(),
        plain.atom_count(),
        opt.len(),
        opt.atom_count()
    );
    Ok(())
}
