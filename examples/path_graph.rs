//! The paper's §2.1 entity-creating `path` rules: object identity by
//! skolemization.
//!
//! Demonstrates (a) the high-level interface — write the rules with an
//! existential object variable `C` and let the system construct
//! identities; (b) the three identity semantics the paper discusses and
//! how they change the set of created objects; (c) termination behaviour
//! of the strategies on a cyclic graph.
//!
//! Run with `cargo run --example path_graph`.

use clogic::session::{Session, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A graph with a diamond a→b→d, a→c→d and a shortcut a→d.
    let graph = r#"
        node: a[linkto => {b, c, d}].
        node: b[linkto => d].
        node: c[linkto => d].
    "#;

    println!("== (a) the paper's rules, identities left to the system ==");
    let mut s = Session::new();
    s.load(graph)?;
    s.load(
        r#"
        path: C[src => X, dest => Y] :- node: X[linkto => Y].
        path: C[src => X, dest => Y] :-
            node: X[linkto => Z],
            path: CO[src => Z, dest => Y].
    "#,
    )?;
    for report in s.skolem_reports() {
        println!(
            "  clause {}: {} skolemized as {}({})",
            report.clause_index,
            report.spec.var,
            report.spec.functor,
            report
                .spec
                .deps
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let r = s.query("path: P[src => a, dest => d]", Strategy::BottomUpSemiNaive)?;
    println!("  path objects a→d (by endpoints): {}", r.rows.len());

    println!("\n== (b) identity by endpoints + length: more objects ==");
    let mut s2 = Session::new();
    s2.load(graph)?;
    s2.load(
        r#"
        path: id(X, Y, 1)[src => X, dest => Y, length => 1] :-
            node: X[linkto => Y].
        path: id(X, Y, L)[src => X, dest => Y, length => L] :-
            node: X[linkto => Z],
            path: id(Z, Y, LO)[src => Z, dest => Y, length => LO],
            L is LO + 1.
    "#,
    )?;
    let r2 = s2.query(
        "path: P[src => a, dest => d, length => L]",
        Strategy::BottomUpSemiNaive,
    )?;
    println!("  path objects a→d (by endpoints+length):");
    for row in &r2.rows {
        println!("    {row}");
    }

    println!("\n== (c) a cyclic graph: SLD vs tabling ==");
    let mut s3 = Session::with_options(clogic::SessionOptions {
        sld: folog::SldOptions {
            max_depth: Some(100),
            max_steps: Some(50_000),
            ..folog::SldOptions::default()
        },
        ..clogic::SessionOptions::default()
    });
    s3.load(
        r#"
        node: a[linkto => b].
        node: b[linkto => c].
        node: c[linkto => a].
        path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].
        path: id(X, Y)[src => X, dest => Y] :-
            node: X[linkto => Z], path: id(Z, Y)[src => Z, dest => Y].
    "#,
    )?;
    let sld = s3.query("path: P[src => a, dest => D]", Strategy::Sld)?;
    println!(
        "  SLD:    {} answers, search exhausted: {}",
        sld.rows.len(),
        sld.complete
    );
    let tabled = s3.query("path: P[src => a, dest => D]", Strategy::Tabled)?;
    println!(
        "  Tabled: {} answers, search exhausted: {}",
        tabled.rows.len(),
        tabled.complete
    );
    for row in &tabled.rows {
        println!("    {row}");
    }
    Ok(())
}
