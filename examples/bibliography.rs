//! A bibliography database — the paper's §2.2 motif ("the author of the
//! book *Foundations of Logic Programming* is John W. Lloyd") grown into
//! a small catalogue: string-valued labels, multi-valued authorship,
//! piecewise accumulation of descriptions, nested molecules in queries,
//! and negation for the closed-world reading.
//!
//! Run with `cargo run --example bibliography`.

use clogic::session::{Session, Strategy};

const CATALOGUE: &str = r#"
    % Books carry identity; information accumulates piecewise (§2.2).
    book: folp[title => "Foundations of Logic Programming"].
    book: folp[author => lloyd, year => 1984].
    book: aibook[title => "Principles of Artificial Intelligence",
                 author => nilsson, year => 1980].
    book: aaai_paper[title => "A Logic for Objects",
                     author => maier, year => 1986].
    book: clp[title => "Constraint Logic Programming",
              author => {jaffar, lassez}, year => 1987].

    person: lloyd[name => "John W. Lloyd"].
    person: nilsson[name => "Nils Nilsson"].
    person: maier[name => "David Maier"].
    person: jaffar[name => "Joxan Jaffar"].
    person: lassez[name => "Jean-Louis Lassez"].

    % Derived: who wrote with whom (multi-valued author label).
    coauthor(A, B) :- book: X[author => A], book: X[author => B], A \= B.

    % Derived dynamic type: classics are pre-1985 books.
    classic < book.
    classic: X :- book: X[year => Y], Y < 1985.

    % Closed-world: a book with a single listed author. Negated goals
    % must be ground when checked (safety), so project away the partner
    % variable through a positive rule first.
    has_coauthor(A) :- coauthor(A, B).
    solo: X :- book: X[author => A], \+ has_coauthor(A).
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();
    s.load(CATALOGUE)?;

    println!("== the paper's fact: who wrote Foundations of Logic Programming? ==");
    let r = s.query(
        r#"book: X[title => "Foundations of Logic Programming", author => A], person: A[name => N]"#,
        Strategy::Direct,
    )?;
    for row in &r.rows {
        println!(
            "  {} (object {})",
            row.get("N").unwrap(),
            row.get("A").unwrap()
        );
    }

    println!("\n== nested molecule query: books by someone named David Maier ==");
    let r = s.query(
        r#"book: X[author => person: A[name => "David Maier"]]"#,
        Strategy::Direct,
    )?;
    for row in &r.rows {
        println!("  X = {}", row.get("X").unwrap());
    }

    println!("\n== coauthors (multi-valued author label) ==");
    for row in &s.query("coauthor(A, B)", Strategy::BottomUpSemiNaive)?.rows {
        println!("  {row}");
    }

    println!("\n== classics (derived type, arithmetic comparison) ==");
    // (bottom-up here: tabling declines any program whose reachable rules
    // use negation, and `solo` is reachable through the object axioms)
    for row in &s
        .query("classic: X[title => T]", Strategy::BottomUpSemiNaive)?
        .rows
    {
        println!("  {row}");
    }

    println!("\n== solo-authored books (negation as failure) ==");
    for row in &s.query("solo: X", Strategy::BottomUpSemiNaive)?.rows {
        println!("  {row}");
    }

    println!("\n== same answers from the direct engine and the translation ==");
    let direct = s.query("classic: X", Strategy::Direct)?;
    let translated = s.query("classic: X", Strategy::BottomUpSemiNaive)?;
    println!("  direct == translated: {}", direct.rows == translated.rows);
    Ok(())
}
