//! Quickstart: load a small complex-object database, ask queries through
//! several evaluation strategies, and inspect the first-order translation.
//!
//! Run with `cargo run --example quickstart`.

use clogic::session::{Session, SessionOptions, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bound SLD so the strategy comparison below stays snappy even where
    // depth-first resolution recurses through the type axioms.
    let mut session = Session::with_options(SessionOptions {
        sld: folog::SldOptions {
            max_depth: Some(200),
            max_steps: Some(50_000),
            ..folog::SldOptions::default()
        },
        ..SessionOptions::default()
    });

    // Objects have identities, multi-valued labels and dynamic types.
    session.load(
        r#"
        % a tiny family database
        person: john[name => "John Smith", age => 28,
                     children => {bob, bill}].
        person: mary[name => "Mary Smith", age => 27,
                     children => {bob, bill}].
        person: bob[age => 3].
        person: bill[age => 1].

        % a rule: X is a parent of C
        parent_of(X, C) :- person: X[children => C].

        % subtype declaration: toddlers are persons
        toddler < person.
        toddler: X :- person: X[age => A], A =< 3.
    "#,
    )?;

    println!("== who are bob's parents? ==");
    let answers = session.query("parent_of(P, bob)", Strategy::Direct)?;
    for row in &answers.rows {
        println!("  {row}");
    }

    println!("\n== toddlers (derived dynamic type) ==");
    let answers = session.query("toddler: X[age => A]", Strategy::BottomUpSemiNaive)?;
    for row in &answers.rows {
        println!("  {row}");
    }

    println!("\n== piecewise descriptions combine (§2.2) ==");
    let q = r#"person: john[name => "John Smith", age => 28]"#;
    println!(
        "  {q} ? {}",
        if session.query(q, Strategy::Tabled)?.holds() {
            "yes"
        } else {
            "no"
        }
    );

    println!("\n== the same query under every strategy ==");
    for strategy in Strategy::ALL {
        let r = session.query("person: X[children => bob]", strategy)?;
        let xs: Vec<String> = r.rows.iter().filter_map(|row| row.get("X")).collect();
        let note = if r.complete {
            ""
        } else {
            "  (incomplete: truncated or loop-pruned; Tabled is the complete strategy here)"
        };
        println!("  {strategy:?}: X in {xs:?}{note}");
    }

    println!("\n== the Theorem 1 translation (optimized) ==");
    for clause in &session.translated().clauses {
        println!("  {clause}");
    }

    Ok(())
}
