//! Bottom-up evaluation: naive and semi-naive fixpoints (§4, "known query
//! evaluation techniques, including both bottom-up and top-down methods").
//!
//! The engine computes the least model of a first-order definite-clause
//! program by iterating its immediate-consequence operator. *Naive*
//! evaluation re-joins the full relations every round; *semi-naive*
//! evaluation restricts one body atom per join to the previous round's
//! delta, which is sound and non-redundant because relations are
//! append-only and deltas are contiguous row ranges.

use crate::budget::{Budget, BudgetMeter, Degradation, TripKind};
use crate::builtins::{solve_pattern, BuiltinError};
use crate::facts::{
    bound_positions, instantiate, match_term, trail_undo, Env, FactStore, IndexMode, IndexStats,
};
use crate::ground::{TermId, TermStore};
#[cfg(test)]
use crate::program::CompiledProgram;
use crate::program::{ClauseView, Rule};
use crate::rterm::{RAtom, RTerm};
use clogic_core::fol::{FoAtom, FoClause, FoTerm};
use clogic_core::symbol::Symbol;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Full re-evaluation every round.
    Naive,
    /// Delta-restricted joins.
    SemiNaive,
}

/// Options for fixpoint evaluation.
///
/// Limit trips are **not** errors: when any ceiling here (or in
/// [`budget`](Self::budget)) is reached, evaluation stops expanding, keeps
/// the partial model, and reports `complete: false` with a
/// [`Degradation`] record on the returned [`Evaluation`].
///
/// The library-level [`Default`] is **unbounded** (`max_facts`,
/// `max_iterations`: `None`, empty budget): a program whose least model is
/// infinite — e.g. a skolemizing recursive rule — will run until memory is
/// exhausted. Embedders that accept untrusted or generated programs should
/// set ceilings; `clogic::Session` does so by default and treats unbounded
/// evaluation as opt-in.
#[derive(Clone, Debug)]
pub struct FixpointOptions {
    /// The strategy.
    pub strategy: Strategy,
    /// Degrade gracefully after this many stored facts, if set.
    pub max_facts: Option<usize>,
    /// Degrade gracefully after this many iterations, if set.
    pub max_iterations: Option<usize>,
    /// Shared resource ceilings (deadline, steps, memory, cancellation).
    pub budget: Budget,
    /// Observability handles. The default is a disabled tracer and a
    /// private registry, so instrumentation costs one branch per span and
    /// a handful of relaxed atomic adds per evaluation. Counter deltas are
    /// flushed once at the end of each run — never from the join loops.
    pub obs: clogic_obs::Obs,
    /// Whether joins probe lazy pattern indices ([`IndexMode::Indexed`],
    /// the default) or scan whole row ranges ([`IndexMode::Scan`] — the
    /// baseline for benchmarks and equivalence tests).
    pub index_mode: IndexMode,
}

impl Default for FixpointOptions {
    fn default() -> Self {
        FixpointOptions {
            strategy: Strategy::SemiNaive,
            max_facts: None,
            max_iterations: None,
            budget: Budget::unlimited(),
            obs: clogic_obs::Obs::default(),
            index_mode: IndexMode::default(),
        }
    }
}

/// Operation counters for the experiments. On a resumed evaluation
/// ([`evaluate_delta`]) the counters accumulate across runs, so the
/// marginal cost of a delta is visible as the difference between
/// snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixpointStats {
    /// Fixpoint rounds executed.
    pub iterations: usize,
    /// Rule bodies evaluated (rule × delta-position activations).
    pub rule_activations: u64,
    /// Pattern-vs-tuple match attempts.
    pub match_attempts: u64,
    /// Facts newly inserted.
    pub facts_derived: u64,
    /// Derivations that produced an already-known fact.
    pub duplicates: u64,
    /// Facts inserted per fixpoint round, in order. A resumed run keeps
    /// appending, so the tail shows how little work a delta needed.
    pub delta_sizes: Vec<u64>,
    /// Tuples produced per rule, indexed by the rule's position in the
    /// compiled program (facts count their one tuple). Counted *before*
    /// deduplication: under the naive strategy a rule re-deriving known
    /// facts keeps counting, which is exactly the redundancy the
    /// semi-naive strategy exists to avoid.
    pub per_rule: Vec<u64>,
}

impl FixpointStats {
    /// Adds `n` produced tuples to rule `idx`, growing the vector on
    /// demand (rules may be appended between resumed runs).
    pub fn bump_rule(&mut self, idx: usize, n: u64) {
        if self.per_rule.len() <= idx {
            self.per_rule.resize(idx + 1, 0);
        }
        self.per_rule[idx] += n;
    }
}

/// Evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A rule derived a non-ground head (not range-restricted and not
    /// completed by built-ins).
    NonGroundDerivation(String),
    /// A built-in raised an error (e.g. unbound arithmetic).
    Builtin(BuiltinError),
    /// The program is not stratifiable: a predicate depends on itself
    /// through negation.
    Unstratifiable(String),
    /// A negated atom was not ground when checked (unsafe rule).
    Floundered(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NonGroundDerivation(r) => write!(f, "non-ground derivation from rule {r}"),
            EvalError::Builtin(e) => write!(f, "builtin error: {e}"),
            EvalError::Unstratifiable(p) => {
                write!(
                    f,
                    "program is not stratifiable (negative cycle through {p})"
                )
            }
            EvalError::Floundered(r) => write!(f, "negated atom not ground in rule {r}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<BuiltinError> for EvalError {
    fn from(e: BuiltinError) -> EvalError {
        EvalError::Builtin(e)
    }
}

/// The result of a fixpoint run: the term arena, the (possibly partial)
/// model, and the operation counters.
///
/// `complete` is `true` iff the fixpoint closed without hitting any
/// resource ceiling; otherwise `degradation` says which ceiling tripped
/// and the `facts` hold the partial model derived up to that point.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The term arena all tuples reference.
    pub store: TermStore,
    /// The least model (partial if `complete` is false).
    pub facts: FactStore,
    /// Counters.
    pub stats: FixpointStats,
    /// Whether the fixpoint closed (no ceiling tripped).
    pub complete: bool,
    /// Why evaluation stopped early, when `complete` is false.
    pub degradation: Option<Degradation>,
}

impl Default for Evaluation {
    fn default() -> Self {
        Evaluation {
            store: TermStore::default(),
            facts: FactStore::default(),
            stats: FixpointStats::default(),
            complete: true,
            degradation: None,
        }
    }
}

impl Evaluation {
    /// All derived facts as first-order atoms (sorted display order).
    pub fn ground_atoms(&self) -> Vec<FoAtom> {
        let mut out = Vec::with_capacity(self.facts.total);
        for (pred, arity) in self.facts.predicates() {
            if let Some(rel) = self.facts.relation(pred, arity) {
                for t in rel.tuples() {
                    out.push(FoAtom::new(
                        pred,
                        t.iter().map(|&id| self.store.to_fo(id)).collect(),
                    ));
                }
            }
        }
        out.sort();
        out
    }

    /// Answers to a conjunctive query over the least model: each answer
    /// maps the query's variable names to ground terms.
    pub fn query(&self, goals: &[FoAtom]) -> Vec<BTreeMap<Symbol, FoTerm>> {
        let mut alloc = crate::rterm::VarAlloc::new();
        let mut map = HashMap::new();
        let mut ratoms: Vec<RAtom> = goals
            .iter()
            .map(|g| crate::rterm::ratom_of_fo(g, &mut map, &mut alloc))
            .collect();
        order_query_goals(&mut ratoms, &self.facts);
        let mut env: Env = vec![None; alloc.len()];
        let mut trail = Vec::new();
        let mut out = Vec::new();
        self.query_rec(&ratoms, 0, &mut env, &mut trail, &mut |env| {
            let mut answer = BTreeMap::new();
            for (&name, &v) in &map {
                if let Some(id) = env.get(v as usize).copied().flatten() {
                    answer.insert(name, self.store.to_fo(id));
                }
            }
            out.push(answer);
        });
        out.sort();
        out.dedup();
        out
    }

    fn query_rec(
        &self,
        goals: &[RAtom],
        i: usize,
        env: &mut Env,
        trail: &mut Vec<crate::rterm::VarId>,
        emit: &mut impl FnMut(&Env),
    ) {
        if i == goals.len() {
            emit(env);
            return;
        }
        let g = &goals[i];
        let Some(rel) = self.facts.relation(g.pred, g.args.len()) else {
            return;
        };
        let bound = bound_positions(&g.args, env, &self.store);
        let rows = rel.candidate_rows(
            &bound,
            0..rel.len() as u32,
            &self.store,
            self.facts.index_mode(),
        );
        for row in rows {
            let mark = trail.len();
            let tuple = rel.tuple(row).to_vec();
            let ok = g
                .args
                .iter()
                .zip(&tuple)
                .all(|(p, &d)| match_term(p, d, &self.store, env, trail));
            if ok {
                self.query_rec(goals, i + 1, env, trail, emit);
            }
            trail_undo(env, trail, mark);
        }
    }

    /// Convenience: whether a ground conjunctive query holds.
    pub fn holds(&self, goals: &[FoAtom]) -> bool {
        !self.query(goals).is_empty()
    }

    /// Total facts newly inserted over this evaluation (accumulated
    /// across resumed runs).
    pub fn facts_derived(&self) -> u64 {
        self.stats.facts_derived
    }

    /// Fixpoint rounds executed (accumulated across resumed runs).
    pub fn iterations(&self) -> usize {
        self.stats.iterations
    }

    /// Facts inserted per fixpoint round, in order. After a resume, the
    /// tail entries are the rounds the delta needed.
    pub fn delta_sizes(&self) -> &[u64] {
        &self.stats.delta_sizes
    }

    /// Answers to a query with negated goals: positives matched against
    /// the least model, then answers filtered by the absence of each
    /// (substituted, necessarily ground) negated atom.
    pub fn query_with_negation(
        &self,
        goals: &[FoAtom],
        neg_goals: &[FoAtom],
    ) -> Result<Vec<BTreeMap<Symbol, FoTerm>>, EvalError> {
        let answers = self.query(goals);
        let mut out = Vec::with_capacity(answers.len());
        'answers: for a in answers {
            for n in neg_goals {
                let g = subst_fo_atom(n, &a);
                if !g.is_ground() {
                    return Err(EvalError::Floundered(n.to_string()));
                }
                let holds = if crate::builtins::is_builtin(g.pred) {
                    holds_ground_builtin(&g)?
                } else {
                    self.holds(std::slice::from_ref(&g))
                };
                if holds {
                    continue 'answers;
                }
            }
            out.push(a);
        }
        Ok(out)
    }

    /// Like [`Evaluation::query_with_negation`], but negated goals whose
    /// predicate heads a clause in `aux` are checked *lazily* against the
    /// saturated base model instead of requiring the aux predicates to
    /// have been materialized into it.
    ///
    /// This is exact for the auxiliary clauses the C-logic translation
    /// generates for negated molecules (`__nauxN(V̄) :- conj`): the head
    /// collects every variable of the negated goal, so once the goal is
    /// ground the head binding determines the body up to existential
    /// variables, and `__nauxN(ḡ)` holds in the saturated model of
    /// base ∪ aux iff the bound body conjunction is satisfiable in the
    /// base model alone (aux predicates occur only under negation, so
    /// they derive nothing the base rules consume). Checking lazily
    /// replaces cloning and re-saturating the whole model per query.
    ///
    /// Multiple clauses per aux predicate act as a disjunction. Built-in
    /// conjuncts are checked once the relational conjuncts have bound
    /// their arguments; a built-in left non-ground flounders.
    pub fn query_with_negation_aux(
        &self,
        goals: &[FoAtom],
        neg_goals: &[FoAtom],
        aux: &[FoClause],
    ) -> Result<Vec<BTreeMap<Symbol, FoTerm>>, EvalError> {
        if aux.is_empty() {
            return self.query_with_negation(goals, neg_goals);
        }
        let mut by_pred: HashMap<(Symbol, usize), Vec<&FoClause>> = HashMap::new();
        for c in aux {
            by_pred
                .entry((c.head.pred, c.head.args.len()))
                .or_default()
                .push(c);
        }
        let answers = self.query(goals);
        let mut out = Vec::with_capacity(answers.len());
        'answers: for a in answers {
            for n in neg_goals {
                let g = subst_fo_atom(n, &a);
                if !g.is_ground() {
                    return Err(EvalError::Floundered(n.to_string()));
                }
                let holds = if let Some(clauses) = by_pred.get(&(g.pred, g.args.len())) {
                    let mut any = false;
                    for c in clauses {
                        if self.aux_clause_holds(c, &g)? {
                            any = true;
                            break;
                        }
                    }
                    any
                } else if crate::builtins::is_builtin(g.pred) {
                    holds_ground_builtin(&g)?
                } else {
                    self.holds(std::slice::from_ref(&g))
                };
                if holds {
                    continue 'answers;
                }
            }
            out.push(a);
        }
        Ok(out)
    }

    /// Whether `goal` (ground) is derivable from `clause` over the base
    /// model: head-match the goal, then check the bound body conjunction
    /// (existential variables range over base-model answers).
    fn aux_clause_holds(&self, clause: &FoClause, goal: &FoAtom) -> Result<bool, EvalError> {
        let mut bind: BTreeMap<Symbol, FoTerm> = BTreeMap::new();
        if clause.head.args.len() != goal.args.len() {
            return Ok(false);
        }
        for (p, g) in clause.head.args.iter().zip(&goal.args) {
            if !match_fo_term(p, g, &mut bind) {
                return Ok(false);
            }
        }
        // Split the bound body: relational conjuncts are joined against
        // the model; ground built-ins filter up front; built-ins still
        // open wait for the relational answers to bind them.
        let mut relational = Vec::new();
        let mut open_builtins = Vec::new();
        for b in &clause.body {
            let s = subst_fo_atom(b, &bind);
            if crate::builtins::is_builtin(s.pred) {
                if s.is_ground() {
                    if !holds_ground_builtin(&s)? {
                        return Ok(false);
                    }
                } else {
                    open_builtins.push(s);
                }
            } else {
                relational.push(s);
            }
        }
        let neg: Vec<FoAtom> = clause
            .negative_body
            .iter()
            .map(|n| subst_fo_atom(n, &bind))
            .collect();
        let solutions = if relational.is_empty() {
            vec![BTreeMap::new()]
        } else {
            self.query(&relational)
        };
        'solutions: for s in solutions {
            for b in &open_builtins {
                let g = subst_fo_atom(b, &s);
                if !g.is_ground() {
                    return Err(EvalError::Floundered(b.to_string()));
                }
                if !holds_ground_builtin(&g)? {
                    continue 'solutions;
                }
            }
            for n in &neg {
                let g = subst_fo_atom(n, &s);
                if !g.is_ground() {
                    return Err(EvalError::Floundered(n.to_string()));
                }
                let holds = if crate::builtins::is_builtin(g.pred) {
                    holds_ground_builtin(&g)?
                } else {
                    self.holds(std::slice::from_ref(&g))
                };
                if holds {
                    continue 'solutions;
                }
            }
            return Ok(true);
        }
        Ok(false)
    }
}

/// Structural match of a clause-head pattern against a ground term,
/// accumulating (and checking the consistency of) variable bindings.
fn match_fo_term(pattern: &FoTerm, ground: &FoTerm, bind: &mut BTreeMap<Symbol, FoTerm>) -> bool {
    match pattern {
        FoTerm::Var(v) => match bind.get(v) {
            Some(prev) => prev == ground,
            None => {
                bind.insert(*v, ground.clone());
                true
            }
        },
        FoTerm::Const(_) => pattern == ground,
        FoTerm::App(f, args) => match ground {
            FoTerm::App(gf, gargs) if gf == f && gargs.len() == args.len() => args
                .iter()
                .zip(gargs)
                .all(|(p, g)| match_fo_term(p, g, bind)),
            _ => false,
        },
    }
}

/// Evaluates a ground built-in atom.
fn holds_ground_builtin(g: &FoAtom) -> Result<bool, EvalError> {
    let mut alloc = crate::rterm::VarAlloc::new();
    let mut map = HashMap::new();
    let ra = crate::rterm::ratom_of_fo(g, &mut map, &mut alloc);
    let mut bind = crate::unify::Bindings::new();
    Ok(crate::builtins::solve(
        &ra,
        &mut bind,
        crate::unify::UnifyOptions::default(),
    )?)
}

/// Greedy selectivity-based join order for conjunctive query goals:
/// repeatedly pick the goal with the fewest still-unbound variables
/// (ties broken towards index availability, then the smaller relation),
/// then treat its variables as bound. A goal with constant arguments
/// thus runs before an open scan of a large relation, turning the scan
/// into an indexed lookup — the difference between O(model) and
/// O(answers) on point-ish queries against a saturated store. Answers
/// are unaffected: the caller sorts and deduplicates them.
fn order_query_goals(goals: &mut [RAtom], facts: &FactStore) {
    fn collect_vars(t: &RTerm, out: &mut Vec<crate::rterm::VarId>) {
        match t {
            RTerm::Var(v) => out.push(*v),
            RTerm::Const(_) => {}
            RTerm::App(_, args) => {
                for a in args {
                    collect_vars(a, out);
                }
            }
        }
    }
    fn term_bound(t: &RTerm, bound: &HashSet<crate::rterm::VarId>) -> bool {
        let mut vs = Vec::new();
        collect_vars(t, &mut vs);
        vs.iter().all(|v| bound.contains(v))
    }
    // Mirrors the index families `candidate_rows` probes: a fully bound
    // position (exact) or a compound with bound first argument (sub).
    fn arg_indexable(t: &RTerm, bound: &HashSet<crate::rterm::VarId>) -> bool {
        match t {
            RTerm::Const(_) => true,
            RTerm::Var(v) => bound.contains(v),
            RTerm::App(_, args) => {
                term_bound(t, bound) || args.first().is_some_and(|a| term_bound(a, bound))
            }
        }
    }
    let mut bound: HashSet<crate::rterm::VarId> = HashSet::new();
    for i in 0..goals.len() {
        let best = goals[i..]
            .iter()
            .enumerate()
            .min_by_key(|(_, g)| {
                let mut vars = Vec::new();
                for a in &g.args {
                    collect_vars(a, &mut vars);
                }
                vars.sort_unstable();
                vars.dedup();
                let unbound = vars.iter().filter(|v| !bound.contains(v)).count();
                let indexable = g.args.iter().any(|a| arg_indexable(a, &bound));
                let size = facts
                    .relation(g.pred, g.args.len())
                    .map_or(0, |r| r.len());
                (unbound, usize::from(!indexable), size)
            })
            .map(|(j, _)| i + j)
            .expect("non-empty tail");
        goals.swap(i, best);
        let mut vars = Vec::new();
        for a in &goals[i].args {
            collect_vars(a, &mut vars);
        }
        bound.extend(vars);
    }
}

/// Applies an answer substitution to a first-order atom.
pub fn subst_fo_atom(a: &FoAtom, bind: &BTreeMap<Symbol, FoTerm>) -> FoAtom {
    fn go(t: &FoTerm, bind: &BTreeMap<Symbol, FoTerm>) -> FoTerm {
        match t {
            FoTerm::Var(v) => bind.get(v).cloned().unwrap_or_else(|| t.clone()),
            FoTerm::Const(_) => t.clone(),
            FoTerm::App(f, args) => FoTerm::App(*f, args.iter().map(|x| go(x, bind)).collect()),
        }
    }
    FoAtom::new(a.pred, a.args.iter().map(|t| go(t, bind)).collect())
}

/// Per-relation row boundaries for one semi-naive round.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Frontier {
    /// Rows `< old` existed before the previous round.
    pub(crate) old: u32,
    /// Rows `old..cur` are the previous round's delta; `cur` is the
    /// relation length at the start of this round.
    pub(crate) cur: u32,
}

/// Runs the fixpoint for a compiled program.
///
/// ```
/// use clogic_core::fol::{FoAtom, FoClause, FoProgram, FoTerm};
/// use folog::{evaluate, CompiledProgram, FixpointOptions};
///
/// let mut p = FoProgram::new();
/// p.push(FoClause::fact(FoAtom::new("edge", vec![FoTerm::constant("a"), FoTerm::constant("b")])));
/// p.push(FoClause::rule(
///     FoAtom::new("path", vec![FoTerm::var("X"), FoTerm::var("Y")]),
///     vec![FoAtom::new("edge", vec![FoTerm::var("X"), FoTerm::var("Y")])],
/// ));
/// let compiled = CompiledProgram::compile(&p, folog::builtins::builtin_symbols());
/// let model = evaluate(&compiled, FixpointOptions::default()).unwrap();
/// assert!(model.holds(&[FoAtom::new("path", vec![FoTerm::constant("a"), FoTerm::constant("b")])]));
/// ```
pub fn evaluate<P: ClauseView>(program: &P, opts: FixpointOptions) -> Result<Evaluation, EvalError> {
    let mut ev = Evaluation::default();
    ev.facts.set_index_mode(opts.index_mode);
    let mut meter = BudgetMeter::new(&opts.budget);
    let derivable: Vec<(Symbol, usize)> = program.head_predicates();
    let mut span = opts.obs.tracer.span_with(
        "folog.evaluate",
        vec![
            ("strategy", strategy_name(opts.strategy).into()),
            ("rules", program.len().into()),
        ],
    );

    // Round 0: insert facts.
    insert_fact_rules(
        (0..program.len())
            .map(|i| (i, program.rule(i)))
            .filter(|(_, r)| r.is_fact()),
        &mut ev,
        &mut meter,
    )?;

    // Stratify: rules whose head depends on a predicate through negation
    // must evaluate after that predicate's stratum is complete. Programs
    // without negation form a single stratum.
    let all_rules: Vec<(usize, &Rule)> = (0..program.len())
        .map(|i| (i, program.rule(i)))
        .filter(|(_, r)| !r.is_fact())
        .collect();
    let strata = stratify(&all_rules, program)?;
    for (si, stratum_rules) in strata.iter().enumerate() {
        if !meter.check_time_and_cancel() {
            break;
        }
        let before_iters = ev.stats.iterations;
        let before_facts = ev.stats.facts_derived;
        let mut stratum_span = span.child("folog.stratum");
        run_stratum(
            stratum_rules,
            &derivable,
            program,
            &opts,
            &mut ev,
            &mut meter,
            None,
        )?;
        stratum_span.record("stratum", si);
        stratum_span.record("iterations", ev.stats.iterations - before_iters);
        stratum_span.record("facts", ev.stats.facts_derived - before_facts);
        drop(stratum_span);
        if meter.tripped().is_some() {
            break;
        }
    }
    finish(&mut ev, &meter, &opts);
    span.record("iterations", ev.stats.iterations);
    span.record("facts", ev.facts.total);
    span.record("complete", u64::from(ev.complete));
    flush_metrics(
        &opts.obs,
        &FixpointStats::default(),
        &ev.stats,
        &IndexStats::default(),
        &ev.facts.index_stats(),
    );
    Ok(ev)
}

/// Resumes a saturated evaluation over a program that grew by appended
/// rules: `prev` must be a **complete** model of `program.rules[..prev_rules]`,
/// and `program.rules[prev_rules..]` is the delta (new facts and/or new
/// rules). The previous [`FactStore`] — tuples, hash indexes and term
/// arena — is kept and extended in place; the semi-naive frontier is
/// seeded so that only the delta's consequences are recomputed.
///
/// Falls back to a full [`evaluate`] when the program uses negation
/// (stratified negation is non-monotonic: an appended fact can retract
/// earlier conclusions, so the saturated model is not reusable) or when
/// `prev` is incomplete (a tripped ceiling means the old model is not
/// the least model of the old program, so there is nothing sound to
/// resume from).
///
/// The resume itself is exact, not approximate: after the catch-up pass
/// (each new rule evaluated once against the whole existing model) and
/// the seeded semi-naive rounds (every rule joined against rows appended
/// since the seed snapshot), the standard semi-naive invariant holds and
/// the result equals `evaluate` on the full program.
pub fn evaluate_delta<P: ClauseView>(
    program: &P,
    prev: Evaluation,
    prev_rules: usize,
    opts: FixpointOptions,
) -> Result<Evaluation, EvalError> {
    if program.has_negation() || !prev.complete {
        return evaluate(program, opts);
    }
    let mut ev = prev;
    ev.degradation = None;
    ev.facts.set_index_mode(opts.index_mode);
    let stats_before = ev.stats.clone();
    let idx_before = ev.facts.index_stats();
    let mut meter = BudgetMeter::new(&opts.budget);
    let derivable: Vec<(Symbol, usize)> = program.head_predicates();
    let offset = prev_rules.min(program.len());
    let mut span = opts.obs.tracer.span_with(
        "folog.evaluate_delta",
        vec![
            ("strategy", strategy_name(opts.strategy).into()),
            ("rules", program.len().into()),
            ("delta_rules", (program.len() - offset).into()),
        ],
    );

    // Seed snapshot: everything stored before the delta counts as "old";
    // rows appended from here on are the frontier of the first resumed
    // round.
    let base = ev.facts.lens();

    // Round 0 of the delta: insert its facts.
    insert_fact_rules(
        (offset..program.len())
            .map(|i| (i, program.rule(i)))
            .filter(|(_, r)| r.is_fact()),
        &mut ev,
        &mut meter,
    )?;

    // Catch-up pass: a rule the old run never saw must join against the
    // *whole* existing model once (the seeded rounds below only cover
    // combinations that involve at least one appended row).
    let new_rules: Vec<(usize, &Rule)> = (offset..program.len())
        .map(|i| (i, program.rule(i)))
        .filter(|(_, r)| !r.is_fact())
        .collect();
    if !new_rules.is_empty() && meter.tripped().is_none() {
        let full: HashMap<(Symbol, usize), Frontier> = HashMap::new();
        let mut new_facts: Vec<(Symbol, Vec<TermId>)> = Vec::new();
        for &(ri, rule) in &new_rules {
            ev.stats.rule_activations += 1;
            let produced_before = new_facts.len();
            eval_rule(
                rule,
                &full,
                None,
                &ev.facts,
                &mut ev.store,
                &mut ev.stats,
                program,
                &mut new_facts,
                &mut meter,
            )?;
            let produced = (new_facts.len() - produced_before) as u64;
            ev.stats.bump_rule(ri, produced);
            if meter.tripped().is_some() {
                break;
            }
        }
        insert_derived(new_facts, &mut ev, &opts, &mut meter);
    }

    // Seeded semi-naive continuation over all rules.
    let all_rules: Vec<(usize, &Rule)> = (0..program.len())
        .map(|i| (i, program.rule(i)))
        .filter(|(_, r)| !r.is_fact())
        .collect();
    if meter.tripped().is_none() {
        run_stratum(
            &all_rules,
            &derivable,
            program,
            &opts,
            &mut ev,
            &mut meter,
            Some(&base),
        )?;
    }
    finish(&mut ev, &meter, &opts);
    span.record("iterations", ev.stats.iterations - stats_before.iterations);
    span.record("facts", ev.stats.facts_derived - stats_before.facts_derived);
    span.record("complete", u64::from(ev.complete));
    flush_metrics(
        &opts.obs,
        &stats_before,
        &ev.stats,
        &idx_before,
        &ev.facts.index_stats(),
    );
    Ok(ev)
}

/// Interns and stores the head tuples of ground fact rules.
pub(crate) fn insert_fact_rules<'r>(
    rules: impl Iterator<Item = (usize, &'r Rule)>,
    ev: &mut Evaluation,
    meter: &mut BudgetMeter,
) -> Result<(), EvalError> {
    for (ri, rule) in rules {
        if !meter.tick() {
            break;
        }
        let env: Env = Vec::new();
        let mut tuple = Vec::with_capacity(rule.head.args.len());
        for a in &rule.head.args {
            tuple.push(
                instantiate(a, &env, &mut ev.store)
                    .ok_or_else(|| EvalError::NonGroundDerivation(rule.to_string()))?,
            );
        }
        ev.stats.bump_rule(ri, 1);
        if ev.facts.insert(rule.head.pred, tuple, &ev.store) {
            ev.stats.facts_derived += 1;
        } else {
            ev.stats.duplicates += 1;
        }
    }
    Ok(())
}

/// Flushes the run's counter *deltas* into the registry, once per
/// evaluation. Snapshot-and-diff (rather than live counters in the join
/// loops) keeps the hot path free of atomics and makes resumed runs —
/// whose [`FixpointStats`] accumulate across calls — report only their
/// marginal work.
pub(crate) fn flush_metrics(
    obs: &clogic_obs::Obs,
    before: &FixpointStats,
    after: &FixpointStats,
    idx_before: &IndexStats,
    idx_after: &IndexStats,
) {
    let m = &obs.metrics;
    m.counter("folog.fixpoint.evaluations").inc();
    // Saturating: a retraction that empties a relation drops its index
    // counters from the store-wide sum, so `after` can dip below
    // `before` — report zero marginal work rather than underflowing.
    m.counter("folog.index.builds")
        .add(idx_after.builds.saturating_sub(idx_before.builds));
    m.counter("folog.index.extends")
        .add(idx_after.extends.saturating_sub(idx_before.extends));
    m.counter("folog.index.hits")
        .add(idx_after.hits.saturating_sub(idx_before.hits));
    m.counter("folog.index.misses")
        .add(idx_after.misses.saturating_sub(idx_before.misses));
    m.counter("folog.index.invalidations")
        .add(idx_after.invalidations.saturating_sub(idx_before.invalidations));
    m.counter("folog.fixpoint.iterations")
        .add((after.iterations - before.iterations) as u64);
    m.counter("folog.fixpoint.rule_activations")
        .add(after.rule_activations - before.rule_activations);
    m.counter("folog.fixpoint.match_attempts")
        .add(after.match_attempts - before.match_attempts);
    m.counter("folog.fixpoint.facts_derived")
        .add(after.facts_derived - before.facts_derived);
    m.counter("folog.fixpoint.duplicates")
        .add(after.duplicates - before.duplicates);
    let h = m.histogram("folog.fixpoint.delta_size");
    for &d in &after.delta_sizes[before.delta_sizes.len().min(after.delta_sizes.len())..] {
        h.observe(d);
    }
}

/// Stores a batch of derived tuples, enforcing the fact ceiling; returns
/// how many were new.
pub(crate) fn insert_derived(
    new_facts: Vec<(Symbol, Vec<TermId>)>,
    ev: &mut Evaluation,
    opts: &FixpointOptions,
    meter: &mut BudgetMeter,
) -> u64 {
    let mut inserted = 0u64;
    for (pred, tuple) in new_facts {
        if ev.facts.insert(pred, tuple, &ev.store) {
            ev.stats.facts_derived += 1;
            inserted += 1;
        } else {
            ev.stats.duplicates += 1;
        }
        let effective_max = match (opts.max_facts, meter.budget().max_facts) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        if let Some(limit) = effective_max {
            if ev.facts.total > limit {
                // Keep the partial model (including this tuple) and
                // stop deriving; remaining new_facts are dropped.
                meter.trip(TripKind::Facts);
                break;
            }
        }
    }
    inserted
}

/// Stamps completeness and the degradation report from the meter state.
pub(crate) fn finish(ev: &mut Evaluation, meter: &BudgetMeter, opts: &FixpointOptions) {
    if let Some(trip) = meter.tripped() {
        ev.complete = false;
        ev.degradation = Some(meter.degradation_for(
            trip,
            strategy_name(opts.strategy),
            ev.stats.facts_derived,
            format!(
                "{trip} after {} iterations, {} facts",
                ev.stats.iterations, ev.facts.total
            ),
        ));
    }
}

/// Stable strategy label used in [`Degradation`] reports.
pub(crate) fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Naive => "bottom-up-naive",
        Strategy::SemiNaive => "bottom-up-semi-naive",
    }
}

/// Assigns each rule to a stratum; returns the rules grouped by stratum.
///
/// The active-domain axioms `object(X) :- t(X)` are special-cased: they
/// never create new terms (an `object` fact always accompanies, in the
/// same generalized clause, the typed fact that justifies it), so instead
/// of pinning `object` to one stratum — which would drag every type
/// mentioned under negation into a spurious negative cycle — the axioms
/// are replicated into every stratum and `object` stays in sync with each
/// stratum's fixpoint. Negating `object` itself remains unstratifiable.
fn stratify<'r, P: ClauseView>(
    rules: &[(usize, &'r Rule)],
    program: &P,
) -> Result<Vec<Vec<(usize, &'r Rule)>>, EvalError> {
    use std::collections::HashMap as Map;
    if rules.iter().all(|(_, r)| !r.has_negation()) {
        // Fast path: no negation, one stratum.
        return Ok(vec![rules.to_vec()]);
    }
    let object = Symbol::new(crate::OBJECT_TYPE_NAME);
    let is_object_axiom = |r: &Rule| {
        r.head.pred == object
            && r.head.args.len() == 1
            && r.body.len() == 1
            && r.neg_body.is_empty()
            && r.body[0].args.len() == 1
            && r.head.args[0] == r.body[0].args[0]
    };
    if rules.iter().any(|(_, r)| {
        r.neg_body
            .iter()
            .any(|n| n.pred == object && n.args.len() == 1)
    }) {
        return Err(EvalError::Unstratifiable(object.to_string()));
    }
    type IndexedRules<'a> = Vec<(usize, &'a Rule)>;
    let (axioms, others): (IndexedRules, IndexedRules) = rules
        .iter()
        .copied()
        .partition(|&(_, r)| is_object_axiom(r));

    let mut stratum: Map<(Symbol, usize), usize> = Map::new();
    let preds: Vec<(Symbol, usize)> = program.head_predicates();
    for &p in &preds {
        stratum.insert(p, 0);
    }
    let bound = preds.len() + 1;
    loop {
        let mut changed = false;
        for (_, rule) in &others {
            let head_key = (rule.head.pred, rule.head.args.len());
            let mut need = stratum.get(&head_key).copied().unwrap_or(0);
            for b in &rule.body {
                if program.is_builtin(b.pred) || (b.pred == object && b.args.len() == 1) {
                    continue;
                }
                need = need.max(stratum.get(&(b.pred, b.args.len())).copied().unwrap_or(0));
            }
            for n in &rule.neg_body {
                if program.is_builtin(n.pred) {
                    continue;
                }
                need = need.max(stratum.get(&(n.pred, n.args.len())).copied().unwrap_or(0) + 1);
            }
            if need > bound {
                return Err(EvalError::Unstratifiable(rule.head.pred.to_string()));
            }
            if need > stratum.get(&head_key).copied().unwrap_or(0) {
                stratum.insert(head_key, need);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let max_stratum = others
        .iter()
        .map(|(_, r)| stratum[&(r.head.pred, r.head.args.len())])
        .max()
        .unwrap_or(0);
    let mut out: Vec<Vec<(usize, &Rule)>> = vec![Vec::new(); max_stratum + 1];
    for &(ri, rule) in &others {
        let sidx = stratum[&(rule.head.pred, rule.head.args.len())];
        out[sidx].push((ri, rule));
    }
    // Replicate the object axioms into every stratum.
    for level in &mut out {
        level.extend(axioms.iter().copied());
    }
    Ok(out)
}

/// Runs the fixpoint rounds for one stratum's rules.
///
/// With `seed = None` (a fresh run) the frontier map starts empty, so
/// every fact visible at stratum entry (lower strata and the extensional
/// base) counts as delta in the first round.
///
/// With `seed = Some(base)` (a resumed run, see [`evaluate_delta`]) the
/// frontiers are pre-populated from the `base` length snapshot: rows
/// below `base` are already-saturated "old" rows, rows appended since are
/// the first round's delta. `first_round` is also suppressed, so
/// builtin-only rules don't refire and an empty delta terminates
/// immediately.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_stratum<P: ClauseView>(
    rules: &[(usize, &Rule)],
    derivable: &[(Symbol, usize)],
    program: &P,
    opts: &FixpointOptions,
    ev: &mut Evaluation,
    meter: &mut BudgetMeter,
    seed: Option<&HashMap<(Symbol, usize), u32>>,
) -> Result<(), EvalError> {
    let mut frontiers: HashMap<(Symbol, usize), Frontier> = match seed {
        Some(base) => base
            .iter()
            .map(|(&k, &len)| (k, Frontier { old: 0, cur: len }))
            .collect(),
        None => HashMap::new(),
    };
    let mut first_round = seed.is_none();
    loop {
        // Round boundary: prompt deadline/cancel check plus an approximate
        // memory check (arena terms dominate; tuples are TermId rows).
        if !meter.check_time_and_cancel()
            || !meter.check_memory(ev.store.len() * 64 + ev.facts.total * 24)
        {
            return Ok(());
        }
        ev.stats.iterations += 1;
        if let Some(limit) = opts.max_iterations {
            if ev.stats.iterations > limit {
                ev.stats.iterations -= 1;
                meter.trip(TripKind::Iterations);
                return Ok(());
            }
        }
        // Snapshot current lengths.
        let mut lens: HashMap<(Symbol, usize), u32> = HashMap::new();
        for &(p, a) in derivable {
            let len = ev.facts.relation(p, a).map_or(0, |r| r.len() as u32);
            lens.insert((p, a), len);
        }
        let current_frontiers: HashMap<(Symbol, usize), Frontier> = lens
            .iter()
            .map(|(&k, &len)| {
                let old = frontiers.get(&k).map_or(0, |f| f.cur);
                (k, Frontier { old, cur: len })
            })
            .collect();
        let any_delta = current_frontiers.values().any(|f| f.old < f.cur) || first_round;
        if !any_delta {
            ev.stats.iterations -= 1; // the empty round doesn't count
            break;
        }

        let mut new_facts: Vec<(Symbol, Vec<TermId>)> = Vec::new();
        for &(ri, rule) in rules {
            let body_derivable: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, a)| !program.is_builtin(a.pred))
                .map(|(i, _)| i)
                .collect();
            let produced_before = new_facts.len();
            match opts.strategy {
                Strategy::Naive => {
                    ev.stats.rule_activations += 1;
                    eval_rule(
                        rule,
                        &current_frontiers,
                        None,
                        &ev.facts,
                        &mut ev.store,
                        &mut ev.stats,
                        program,
                        &mut new_facts,
                        meter,
                    )?;
                }
                Strategy::SemiNaive => {
                    if body_derivable.is_empty() {
                        // No derivable atoms: fire exactly once, in round 1.
                        if first_round {
                            ev.stats.rule_activations += 1;
                            eval_rule(
                                rule,
                                &current_frontiers,
                                None,
                                &ev.facts,
                                &mut ev.store,
                                &mut ev.stats,
                                program,
                                &mut new_facts,
                                meter,
                            )?;
                            let produced = (new_facts.len() - produced_before) as u64;
                            ev.stats.bump_rule(ri, produced);
                        }
                        continue;
                    }
                    for &delta_pos in &body_derivable {
                        ev.stats.rule_activations += 1;
                        eval_rule(
                            rule,
                            &current_frontiers,
                            Some(delta_pos),
                            &ev.facts,
                            &mut ev.store,
                            &mut ev.stats,
                            program,
                            &mut new_facts,
                            meter,
                        )?;
                    }
                }
            }
            let produced = (new_facts.len() - produced_before) as u64;
            ev.stats.bump_rule(ri, produced);
            if meter.tripped().is_some() {
                break;
            }
        }

        let inserted = insert_derived(new_facts, ev, opts, meter);
        ev.stats.delta_sizes.push(inserted);
        if meter.tripped().is_some() {
            return Ok(());
        }
        frontiers = current_frontiers;
        first_round = false;
        if inserted == 0 {
            break;
        }
    }
    Ok(())
}

/// Evaluates one rule body left-to-right. With `delta_pos = Some(i)`, atom
/// `i` ranges over its relation's delta, atoms before `i` over pre-delta
/// rows, and atoms after `i` over everything known at round start
/// (semi-naive); with `None`, every atom ranges over all known rows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_rule<P: ClauseView>(
    rule: &Rule,
    frontiers: &HashMap<(Symbol, usize), Frontier>,
    delta_pos: Option<usize>,
    facts: &FactStore,
    store: &mut TermStore,
    stats: &mut FixpointStats,
    program: &P,
    out: &mut Vec<(Symbol, Vec<TermId>)>,
    meter: &mut BudgetMeter,
) -> Result<(), EvalError> {
    let mut env: Env = vec![None; rule.n_vars as usize];
    let mut trail: Vec<crate::rterm::VarId> = Vec::new();
    let order = plan_order(rule, delta_pos, program, facts);
    eval_body(
        rule, &order, 0, delta_pos, frontiers, facts, store, stats, program, &mut env, &mut trail,
        out, meter,
    )
}

/// Greedy join planning for one activation. The delta atom (if any) goes
/// first — it is the small slice this activation exists for. Then,
/// repeatedly: a built-in whose inputs are bound runs as early as
/// possible (cheap filter), otherwise the relational atom with the best
/// *index availability* is chosen — some argument position fully bound
/// (exact index) or a compound argument with bound first sub-argument
/// (sub index) — breaking ties by fewest unbound variables, then the
/// smaller relation, then source order. This turns translated bodies
/// like `node(X), object(Z), linkto(X, Z), …` into `node(X),
/// linkto(X, Z), object(Z), …`: filters before generators, and among
/// equally-bound generators the cheaper scan goes first.
pub(crate) fn plan_order<P: ClauseView>(
    rule: &Rule,
    delta_pos: Option<usize>,
    program: &P,
    facts: &FactStore,
) -> Vec<usize> {
    use crate::rterm::{RTerm, VarId};
    use std::collections::HashSet;
    let n = rule.body.len();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut bound: HashSet<VarId> = HashSet::new();

    let atom_vars = |j: usize| {
        let mut vs = Vec::new();
        for a in &rule.body[j].args {
            a.collect_vars(&mut vs);
        }
        vs
    };
    fn term_bound(t: &RTerm, bound: &HashSet<VarId>) -> bool {
        let mut vs = Vec::new();
        t.collect_vars(&mut vs);
        vs.iter().all(|v| bound.contains(v))
    }
    fn arg_indexable(t: &RTerm, bound: &HashSet<VarId>) -> bool {
        match t {
            RTerm::Const(_) => true,
            RTerm::Var(v) => bound.contains(v),
            RTerm::App(_, args) => {
                term_bound(t, bound) || args.first().is_some_and(|a| term_bound(a, bound))
            }
        }
    }
    let builtin_ready = |j: usize, bound: &HashSet<VarId>| {
        let atom = &rule.body[j];
        match (atom.pred.as_str(), atom.args.len()) {
            ("is", 2) => term_bound(&atom.args[1], bound),
            ("=" | "==", 2) => term_bound(&atom.args[0], bound) || term_bound(&atom.args[1], bound),
            _ => atom.args.iter().all(|a| term_bound(a, bound)),
        }
    };

    if let Some(d) = delta_pos {
        remaining.retain(|&j| j != d);
        order.push(d);
        bound.extend(atom_vars(d));
    }
    while !remaining.is_empty() {
        // A ready built-in filters earliest.
        if let Some(pos) = remaining
            .iter()
            .position(|&j| program.is_builtin(rule.body[j].pred) && builtin_ready(j, &bound))
        {
            let j = remaining.remove(pos);
            order.push(j);
            bound.extend(atom_vars(j));
            continue;
        }
        // Best relational atom by (index availability, unbound vars, pos);
        // unready built-ins are postponed to the very end.
        let best = remaining
            .iter()
            .enumerate()
            .filter(|(_, &j)| !program.is_builtin(rule.body[j].pred))
            .min_by_key(|(_, &j)| {
                let atom = &rule.body[j];
                let indexable = atom.args.iter().any(|a| arg_indexable(a, &bound));
                let unbound = atom_vars(j).iter().filter(|v| !bound.contains(v)).count();
                let size = facts
                    .relation(atom.pred, atom.args.len())
                    .map_or(0, |r| r.len());
                (usize::from(!indexable), unbound, size, j)
            })
            .map(|(pos, _)| pos);
        let pos = best.unwrap_or(0); // only unready built-ins left: source order
        let j = remaining.remove(pos);
        order.push(j);
        bound.extend(atom_vars(j));
    }
    order
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_body<P: ClauseView>(
    rule: &Rule,
    order: &[usize],
    i: usize,
    delta_pos: Option<usize>,
    frontiers: &HashMap<(Symbol, usize), Frontier>,
    facts: &FactStore,
    store: &mut TermStore,
    stats: &mut FixpointStats,
    program: &P,
    env: &mut Env,
    trail: &mut Vec<crate::rterm::VarId>,
    out: &mut Vec<(Symbol, Vec<TermId>)>,
    meter: &mut BudgetMeter,
) -> Result<(), EvalError> {
    if i == order.len() {
        // (`order` is normally the whole body, but the retraction pass
        // evaluates partial orders with the pinned atom pre-bound.)
        // Negation as failure: every negated atom must be absent. The
        // stratification guarantees the negated relations are complete
        // by the time this stratum runs.
        for n in &rule.neg_body {
            if program.is_builtin(n.pred) {
                let mark = trail.len();
                let holds = solve_pattern(n, env, trail, store)?;
                trail_undo(env, trail, mark);
                if holds {
                    return Ok(());
                }
                continue;
            }
            let mut tuple = Vec::with_capacity(n.args.len());
            for a in &n.args {
                tuple.push(
                    instantiate(a, env, store)
                        .ok_or_else(|| EvalError::Floundered(rule.to_string()))?,
                );
            }
            if facts.contains(n.pred, &tuple) {
                return Ok(());
            }
        }
        let mut tuple = Vec::with_capacity(rule.head.args.len());
        for a in &rule.head.args {
            tuple.push(
                instantiate(a, env, store)
                    .ok_or_else(|| EvalError::NonGroundDerivation(rule.to_string()))?,
            );
        }
        out.push((rule.head.pred, tuple));
        return Ok(());
    }
    let atom_idx = order[i];
    let atom = &rule.body[atom_idx];
    if program.is_builtin(atom.pred) {
        let mark = trail.len();
        let ok = solve_pattern(atom, env, trail, store)?;
        if ok {
            eval_body(
                rule,
                order,
                i + 1,
                delta_pos,
                frontiers,
                facts,
                store,
                stats,
                program,
                env,
                trail,
                out,
                meter,
            )?;
        }
        trail_undo(env, trail, mark);
        return Ok(());
    }
    let key = (atom.pred, atom.args.len());
    let Some(rel) = facts.relation(key.0, key.1) else {
        return Ok(());
    };
    let f = frontiers.get(&key).copied().unwrap_or(Frontier {
        old: 0,
        cur: rel.len() as u32,
    });
    // The range class is tied to the atom's *original* position relative
    // to the delta atom, not its place in the join order.
    let range = match delta_pos {
        None => 0..f.cur,
        Some(d) if atom_idx < d => 0..f.old,
        Some(d) if atom_idx == d => f.old..f.cur,
        Some(_) => 0..f.cur,
    };
    if range.is_empty() {
        return Ok(());
    }
    let bound = bound_positions(&atom.args, env, store);
    let rows = rel.candidate_rows(&bound, range, store, facts.index_mode());
    for row in rows {
        if !meter.tick() {
            return Ok(());
        }
        let mark = trail.len();
        stats.match_attempts += 1;
        let tuple = rel.tuple(row).to_vec();
        let ok = atom
            .args
            .iter()
            .zip(&tuple)
            .all(|(p, &d)| match_term(p, d, store, env, trail));
        if ok {
            eval_body(
                rule,
                order,
                i + 1,
                delta_pos,
                frontiers,
                facts,
                store,
                stats,
                program,
                env,
                trail,
                out,
                meter,
            )?;
        }
        trail_undo(env, trail, mark);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::builtin_symbols;
    use clogic_core::fol::{FoClause, FoProgram};
    use clogic_core::symbol::sym;

    fn atom(p: &str, args: Vec<FoTerm>) -> FoAtom {
        FoAtom::new(p, args)
    }

    fn c(s: &str) -> FoTerm {
        FoTerm::constant(s)
    }

    fn v(s: &str) -> FoTerm {
        FoTerm::var(s)
    }

    fn chain_program(n: usize) -> FoProgram {
        // edge(n0,n1), …, edge(n_{n-1},n_n); path(X,Y) :- edge; transitive
        let mut p = FoProgram::new();
        for i in 0..n {
            p.push(FoClause::fact(atom(
                "edge",
                vec![c(&format!("n{i}")), c(&format!("n{}", i + 1))],
            )));
        }
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        p
    }

    fn eval_with(p: &FoProgram, strategy: Strategy) -> Evaluation {
        let cp = CompiledProgram::compile(p, builtin_symbols());
        evaluate(
            &cp,
            FixpointOptions {
                strategy,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn transitive_closure_chain() {
        let p = chain_program(4);
        let ev = eval_with(&p, Strategy::SemiNaive);
        // paths: all i<j pairs over 5 nodes = 10
        assert_eq!(ev.facts.relation(sym("path"), 2).unwrap().len(), 10);
        assert!(ev.holds(&[atom("path", vec![c("n0"), c("n4")])]));
        assert!(!ev.holds(&[atom("path", vec![c("n4"), c("n0")])]));
    }

    #[test]
    fn naive_and_seminaive_agree() {
        let p = chain_program(6);
        let naive = eval_with(&p, Strategy::Naive);
        let semi = eval_with(&p, Strategy::SemiNaive);
        assert_eq!(naive.ground_atoms(), semi.ground_atoms());
        // and semi-naive does strictly fewer matches
        assert!(semi.stats.match_attempts < naive.stats.match_attempts);
        // naive rederives facts every round
        assert!(naive.stats.duplicates > semi.stats.duplicates);
    }

    #[test]
    fn cycles_terminate() {
        let mut p = chain_program(3);
        p.push(FoClause::fact(atom("edge", vec![c("n3"), c("n0")])));
        let ev = eval_with(&p, Strategy::SemiNaive);
        // strongly connected: 4×4 = 16 paths
        assert_eq!(ev.facts.relation(sym("path"), 2).unwrap().len(), 16);
    }

    #[test]
    fn builtin_arithmetic_in_rules() {
        // dist(X, Y, 1) :- edge(X, Y).
        // dist(X, Z, N) :- edge(X, Y), dist(Y, Z, M), N is M + 1, N =< 3.
        let mut p = FoProgram::new();
        for i in 0..5 {
            p.push(FoClause::fact(atom(
                "edge",
                vec![c(&format!("n{i}")), c(&format!("n{}", i + 1))],
            )));
        }
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Y"), FoTerm::int(1)]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Z"), v("N")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("dist", vec![v("Y"), v("Z"), v("M")]),
                atom(
                    "is",
                    vec![v("N"), FoTerm::App(sym("+"), vec![v("M"), FoTerm::int(1)])],
                ),
                atom("=<", vec![v("N"), FoTerm::int(3)]),
            ],
        ));
        let ev = eval_with(&p, Strategy::SemiNaive);
        assert!(ev.holds(&[atom("dist", vec![c("n0"), c("n3"), FoTerm::int(3)])]));
        assert!(!ev.holds(&[atom("dist", vec![c("n0"), c("n4"), FoTerm::int(4)])]));
        // the bound keeps it finite
        let total: usize = ev.facts.relation(sym("dist"), 3).unwrap().len();
        assert_eq!(total, 5 + 4 + 3);
    }

    #[test]
    fn non_range_restricted_rule_errors() {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("a", vec![c("x")])));
        p.push(FoClause::rule(
            atom("p", vec![v("Y")]),
            vec![atom("a", vec![v("X")])],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let err = evaluate(&cp, FixpointOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::NonGroundDerivation(_)));
    }

    #[test]
    fn fact_limit_degrades_gracefully() {
        let p = chain_program(20);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let ev = evaluate(
            &cp,
            FixpointOptions {
                max_facts: Some(30),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!ev.complete);
        let d = ev.degradation.as_ref().expect("degradation report");
        assert_eq!(d.trip, TripKind::Facts);
        assert_eq!(d.strategy, "bottom-up-semi-naive");
        // The partial model is retained: all 20 edges plus some paths,
        // stopping right after the ceiling.
        assert!(ev.facts.total > 30);
        assert!(ev.facts.total <= 31);
        assert!(ev.holds(&[atom("edge", vec![c("n0"), c("n1")])]));
    }

    #[test]
    fn iteration_limit_degrades_gracefully() {
        let p = chain_program(20);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let ev = evaluate(
            &cp,
            FixpointOptions {
                max_iterations: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!ev.complete);
        assert_eq!(
            ev.degradation.as_ref().unwrap().trip,
            TripKind::Iterations
        );
        assert_eq!(ev.stats.iterations, 3);
        // Short paths derived before the cutoff survive.
        assert!(ev.holds(&[atom("path", vec![c("n0"), c("n1")])]));
    }

    #[test]
    fn budget_deadline_degrades_gracefully() {
        use std::time::Duration;
        // An infinite least model: count(s(X)) :- count(X). Without a
        // ceiling this diverges; an expired deadline must stop it with a
        // partial model rather than hang or error.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("count", vec![c("zero")])));
        p.push(FoClause::rule(
            atom("count", vec![FoTerm::App(sym("s"), vec![v("X")])]),
            vec![atom("count", vec![v("X")])],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let ev = evaluate(
            &cp,
            FixpointOptions {
                budget: crate::budget::Budget::with_deadline(Duration::from_millis(20)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!ev.complete);
        let d = ev.degradation.unwrap();
        assert!(
            matches!(d.trip, TripKind::Deadline),
            "expected deadline trip, got {:?}",
            d.trip
        );
        assert!(ev.facts.total >= 1);
    }

    #[test]
    fn budget_step_ceiling_degrades_gracefully() {
        let p = chain_program(20);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let ev = evaluate(
            &cp,
            FixpointOptions {
                budget: crate::budget::Budget::unlimited().max_steps(25),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!ev.complete);
        let d = ev.degradation.unwrap();
        assert!(matches!(d.trip, TripKind::Steps | TripKind::Deadline));
    }

    #[test]
    fn cancel_token_stops_evaluation() {
        use crate::budget::CancelToken;
        let p = chain_program(10);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let token = CancelToken::new();
        token.cancel(); // cancelled before the run even starts
        let ev = evaluate(
            &cp,
            FixpointOptions {
                budget: crate::budget::Budget::unlimited().cancel_token(token),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!ev.complete);
        assert_eq!(ev.degradation.unwrap().trip, TripKind::Cancelled);
    }

    #[test]
    fn query_with_multiple_goals_and_join() {
        let p = chain_program(4);
        let ev = eval_with(&p, Strategy::SemiNaive);
        // pairs X,Z connected through an explicit middle node Y=n2
        let answers = ev.query(&[
            atom("path", vec![v("X"), c("n2")]),
            atom("path", vec![c("n2"), v("Z")]),
        ]);
        // X ∈ {n0,n1}, Z ∈ {n3,n4}
        assert_eq!(answers.len(), 4);
        for a in &answers {
            assert!(a.contains_key(&sym("X")));
            assert!(a.contains_key(&sym("Z")));
        }
    }

    #[test]
    fn query_on_empty_relation() {
        let p = chain_program(2);
        let ev = eval_with(&p, Strategy::SemiNaive);
        assert!(ev.query(&[atom("nothing", vec![v("X")])]).is_empty());
    }

    #[test]
    fn rules_with_builtin_only_bodies_fire_once() {
        let mut p = FoProgram::new();
        p.push(FoClause::rule(
            atom("answer", vec![v("X")]),
            vec![atom(
                "is",
                vec![
                    v("X"),
                    FoTerm::App(sym("+"), vec![FoTerm::int(40), FoTerm::int(2)]),
                ],
            )],
        ));
        let ev = eval_with(&p, Strategy::SemiNaive);
        assert!(ev.holds(&[atom("answer", vec![FoTerm::int(42)])]));
        assert_eq!(ev.facts.total, 1);
    }

    #[test]
    fn stats_are_populated() {
        let p = chain_program(4);
        let ev = eval_with(&p, Strategy::SemiNaive);
        assert!(ev.stats.iterations >= 4); // path lengths grow one per round
        assert!(ev.stats.facts_derived >= 14);
        assert!(ev.stats.rule_activations > 0);
        assert!(ev.stats.match_attempts > 0);
    }

    #[test]
    fn evaluate_delta_matches_full_evaluation() {
        // Saturate a chain, append one edge, resume — must equal the
        // from-scratch model, with far less matching work.
        let p = chain_program(6);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let prev = evaluate(&cp, FixpointOptions::default()).unwrap();
        let prev_rules = cp.len();
        let mut p2 = p.clone();
        p2.push(FoClause::fact(atom("edge", vec![c("n7"), c("n8")])));
        p2.push(FoClause::fact(atom("edge", vec![c("n6"), c("n7")])));
        let cp2 = CompiledProgram::compile(&p2, builtin_symbols());
        let full = evaluate(&cp2, FixpointOptions::default()).unwrap();
        let before_matches = prev.stats.match_attempts;
        let resumed = evaluate_delta(&cp2, prev, prev_rules, FixpointOptions::default()).unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.ground_atoms(), full.ground_atoms());
        let delta_matches = resumed.stats.match_attempts - before_matches;
        assert!(
            delta_matches < full.stats.match_attempts,
            "resume did {delta_matches} matches, full run {}",
            full.stats.match_attempts
        );
    }

    #[test]
    fn evaluate_delta_with_new_rules_catches_up() {
        // The delta appends a *rule* (not just facts): the catch-up pass
        // must join it against the whole pre-existing saturated store.
        let mut p = FoProgram::new();
        for i in 0..4 {
            p.push(FoClause::fact(atom(
                "edge",
                vec![c(&format!("n{i}")), c(&format!("n{}", i + 1))],
            )));
        }
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let prev = evaluate(&cp, FixpointOptions::default()).unwrap();
        let prev_rules = cp.len();
        let mut p2 = p.clone();
        p2.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p2.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        let cp2 = CompiledProgram::compile(&p2, builtin_symbols());
        let full = evaluate(&cp2, FixpointOptions::default()).unwrap();
        let resumed = evaluate_delta(&cp2, prev, prev_rules, FixpointOptions::default()).unwrap();
        assert_eq!(resumed.ground_atoms(), full.ground_atoms());
        assert_eq!(
            resumed.facts.relation(sym("path"), 2).unwrap().len(),
            10 // all i<j pairs over 5 nodes
        );
    }

    #[test]
    fn evaluate_delta_with_empty_delta_is_a_noop_round() {
        let p = chain_program(4);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let prev = evaluate(&cp, FixpointOptions::default()).unwrap();
        let iterations = prev.stats.iterations;
        let total = prev.facts.total;
        let resumed = evaluate_delta(&cp, prev, cp.len(), FixpointOptions::default()).unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.facts.total, total);
        // the empty termination round is not counted
        assert_eq!(resumed.stats.iterations, iterations);
    }

    #[test]
    fn evaluate_delta_falls_back_on_negation() {
        // Stratified negation is non-monotonic: adding reached(b) must
        // *retract* unreachable(b), which a resumed run can't do — so
        // evaluate_delta recomputes from scratch and stays correct.
        let mut p = FoProgram::new();
        for n in ["a", "b"] {
            p.push(FoClause::fact(atom("node", vec![c(n)])));
        }
        p.push(FoClause::fact(atom("reached", vec![c("a")])));
        p.push(FoClause::rule_with_negation(
            atom("unreachable", vec![v("X")]),
            vec![atom("node", vec![v("X")])],
            vec![atom("reached", vec![v("X")])],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let prev = evaluate(&cp, FixpointOptions::default()).unwrap();
        assert!(prev.holds(&[atom("unreachable", vec![c("b")])]));
        let prev_rules = cp.len();
        let mut p2 = p.clone();
        p2.push(FoClause::fact(atom("reached", vec![c("b")])));
        let cp2 = CompiledProgram::compile(&p2, builtin_symbols());
        let resumed = evaluate_delta(&cp2, prev, prev_rules, FixpointOptions::default()).unwrap();
        assert!(!resumed.holds(&[atom("unreachable", vec![c("b")])]));
    }

    #[test]
    fn delta_sizes_track_per_round_insertions() {
        let p = chain_program(4);
        let ev = eval_with(&p, Strategy::SemiNaive);
        let sizes = ev.delta_sizes();
        assert_eq!(sizes.iter().sum::<u64>() + 4, ev.facts_derived()); // 4 edges in round 0
        assert_eq!(sizes.len(), ev.iterations()); // one entry per counted round
        // round 1 derives the 4 one-step paths
        assert_eq!(sizes[0], 4);
    }

    #[test]
    fn fact_store_epoch_stamps_grown_relations() {
        let p = chain_program(2);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let mut prev = evaluate(&cp, FixpointOptions::default()).unwrap();
        assert_eq!(prev.facts.relation(sym("edge"), 2).unwrap().stamp(), 0);
        prev.facts.set_epoch(7);
        let prev_rules = cp.len();
        let mut p2 = p.clone();
        p2.push(FoClause::fact(atom("edge", vec![c("n2"), c("n3")])));
        let cp2 = CompiledProgram::compile(&p2, builtin_symbols());
        let resumed = evaluate_delta(&cp2, prev, prev_rules, FixpointOptions::default()).unwrap();
        // grown relations carry the new stamp; the indexes were extended,
        // not rebuilt (same store, same tuple prefix)
        assert_eq!(resumed.facts.relation(sym("edge"), 2).unwrap().stamp(), 7);
        assert_eq!(resumed.facts.epoch(), 7);
    }

    #[test]
    fn ground_atoms_sorted_and_complete() {
        let p = chain_program(2);
        let ev = eval_with(&p, Strategy::SemiNaive);
        let atoms = ev.ground_atoms();
        assert_eq!(atoms.len(), ev.facts.total);
        let mut sorted = atoms.clone();
        sorted.sort();
        assert_eq!(atoms, sorted);
    }
}

#[cfg(test)]
mod negation_tests {
    use super::*;
    use crate::builtins::builtin_symbols;
    use crate::program::CompiledProgram;
    use clogic_core::fol::{FoClause, FoProgram};
    use clogic_core::symbol::sym;

    fn atom(p: &str, args: Vec<FoTerm>) -> FoAtom {
        FoAtom::new(p, args)
    }
    fn c(s: &str) -> FoTerm {
        FoTerm::constant(s)
    }
    fn v(s: &str) -> FoTerm {
        FoTerm::var(s)
    }

    fn eval(p: &FoProgram) -> Result<Evaluation, EvalError> {
        let cp = CompiledProgram::compile(p, builtin_symbols());
        evaluate(&cp, FixpointOptions::default())
    }

    #[test]
    fn stratified_negation_basic() {
        // unreachable(X) :- node(X), \+ reached(X).
        let mut p = FoProgram::new();
        for n in ["a", "b", "c"] {
            p.push(FoClause::fact(atom("node", vec![c(n)])));
        }
        p.push(FoClause::fact(atom("reached", vec![c("a")])));
        p.push(FoClause::rule_with_negation(
            atom("unreachable", vec![v("X")]),
            vec![atom("node", vec![v("X")])],
            vec![atom("reached", vec![v("X")])],
        ));
        let ev = eval(&p).unwrap();
        assert!(ev.holds(&[atom("unreachable", vec![c("b")])]));
        assert!(ev.holds(&[atom("unreachable", vec![c("c")])]));
        assert!(!ev.holds(&[atom("unreachable", vec![c("a")])]));
    }

    #[test]
    fn negation_over_derived_relation() {
        // reached via recursion, complement computed in a later stratum.
        let mut p = FoProgram::new();
        for n in ["a", "b", "c", "d"] {
            p.push(FoClause::fact(atom("node", vec![c(n)])));
        }
        p.push(FoClause::fact(atom("edge", vec![c("a"), c("b")])));
        p.push(FoClause::fact(atom("edge", vec![c("b"), c("c")])));
        p.push(FoClause::rule(atom("reached", vec![c("a")]), vec![]));
        p.push(FoClause::rule(
            atom("reached", vec![v("Y")]),
            vec![
                atom("reached", vec![v("X")]),
                atom("edge", vec![v("X"), v("Y")]),
            ],
        ));
        p.push(FoClause::rule_with_negation(
            atom("unreachable", vec![v("X")]),
            vec![atom("node", vec![v("X")])],
            vec![atom("reached", vec![v("X")])],
        ));
        let ev = eval(&p).unwrap();
        let q = ev.query(&[atom("unreachable", vec![v("X")])]);
        let xs: Vec<String> = q.iter().map(|a| a[&sym("X")].to_string()).collect();
        assert_eq!(xs, vec!["d"]);
    }

    #[test]
    fn three_strata_chain() {
        // s2 negates s1 which negates s0.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("base", vec![c("x")])));
        p.push(FoClause::fact(atom("all", vec![c("x")])));
        p.push(FoClause::fact(atom("all", vec![c("y")])));
        p.push(FoClause::rule_with_negation(
            atom("not_base", vec![v("X")]),
            vec![atom("all", vec![v("X")])],
            vec![atom("base", vec![v("X")])],
        ));
        p.push(FoClause::rule_with_negation(
            atom("base_again", vec![v("X")]),
            vec![atom("all", vec![v("X")])],
            vec![atom("not_base", vec![v("X")])],
        ));
        let ev = eval(&p).unwrap();
        assert!(ev.holds(&[atom("not_base", vec![c("y")])]));
        assert!(!ev.holds(&[atom("not_base", vec![c("x")])]));
        assert!(ev.holds(&[atom("base_again", vec![c("x")])]));
        assert!(!ev.holds(&[atom("base_again", vec![c("y")])]));
    }

    #[test]
    fn unstratifiable_program_rejected() {
        // p :- \+ q.  q :- \+ p.  — negative cycle.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("seed", vec![c("s")])));
        p.push(FoClause::rule_with_negation(
            atom("p", vec![v("X")]),
            vec![atom("seed", vec![v("X")])],
            vec![atom("q", vec![v("X")])],
        ));
        p.push(FoClause::rule_with_negation(
            atom("q", vec![v("X")]),
            vec![atom("seed", vec![v("X")])],
            vec![atom("p", vec![v("X")])],
        ));
        assert!(matches!(eval(&p), Err(EvalError::Unstratifiable(_))));
    }

    #[test]
    fn unsafe_negation_flounders() {
        // head var appears only in the negated atom.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("seed", vec![c("s")])));
        p.push(FoClause::fact(atom("q", vec![c("z")])));
        p.push(FoClause::rule_with_negation(
            atom("p", vec![v("X")]),
            vec![atom("seed", vec![v("X")])],
            vec![atom("q", vec![v("Y")])],
        ));
        assert!(matches!(eval(&p), Err(EvalError::Floundered(_))));
    }

    #[test]
    fn negated_builtins() {
        // keep(X, N) :- val(X, N), \+ N >= 10.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("val", vec![c("a"), FoTerm::int(5)])));
        p.push(FoClause::fact(atom("val", vec![c("b"), FoTerm::int(15)])));
        p.push(FoClause::rule_with_negation(
            atom("keep", vec![v("X")]),
            vec![atom("val", vec![v("X"), v("N")])],
            vec![atom(">=", vec![v("N"), FoTerm::int(10)])],
        ));
        let ev = eval(&p).unwrap();
        assert!(ev.holds(&[atom("keep", vec![c("a")])]));
        assert!(!ev.holds(&[atom("keep", vec![c("b")])]));
    }

    #[test]
    fn sld_agrees_with_stratified_bottom_up() {
        use crate::sld::{SldEngine, SldOptions};
        let mut p = FoProgram::new();
        for n in ["a", "b", "c"] {
            p.push(FoClause::fact(atom("node", vec![c(n)])));
        }
        p.push(FoClause::fact(atom("reached", vec![c("a")])));
        p.push(FoClause::rule_with_negation(
            atom("unreachable", vec![v("X")]),
            vec![atom("node", vec![v("X")])],
            vec![atom("reached", vec![v("X")])],
        ));
        let ev = eval(&p).unwrap();
        let bu = ev.query(&[atom("unreachable", vec![v("X")])]);
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let sld = SldEngine::new(&cp, SldOptions::default())
            .solve(&[atom("unreachable", vec![v("X")])])
            .unwrap();
        assert_eq!(sld.answers, bu);
        assert_eq!(sld.answers.len(), 2);
    }

    #[test]
    fn sld_floundering_is_an_error() {
        use crate::builtins::BuiltinError;
        use crate::sld::{SldEngine, SldOptions};
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("q", vec![c("z")])));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        // :- \+ q(Y). with Y unbound
        let e = SldEngine::new(&cp, SldOptions::default());
        let err = e
            .solve_with_negation(&[], &[atom("q", vec![v("Y")])])
            .unwrap_err();
        assert!(matches!(err, BuiltinError::Floundered(_)));
    }

    #[test]
    fn tabling_and_magic_reject_negation() {
        use crate::magic::solve_magic;
        use crate::tabling::{TabledEngine, TablingError, TablingOptions};
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("seed", vec![c("s")])));
        p.push(FoClause::rule_with_negation(
            atom("p", vec![v("X")]),
            vec![atom("seed", vec![v("X")])],
            vec![atom("q", vec![v("X")])],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let t = TabledEngine::new(&cp, TablingOptions::default()).solve(&[atom("p", vec![v("X")])]);
        assert!(matches!(t, Err(TablingError::NegationUnsupported)));
        let builtins: std::collections::BTreeSet<_> = builtin_symbols().collect();
        let m = solve_magic(
            &p,
            &[atom("p", vec![v("X")])],
            &builtins,
            FixpointOptions::default(),
        );
        assert!(matches!(m, Err(EvalError::Unstratifiable(_))));
    }
}
