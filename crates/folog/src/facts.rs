//! The extensional store of derived ground facts — interned columnar
//! tuple storage plus lazy argument-pattern indices — and matching of
//! rule patterns against stored tuples.
//!
//! Bottom-up evaluation is join processing: a rule body is evaluated
//! left-to-right, each atom matched against the relation of its
//! predicate under the bindings accumulated so far. Relations keep
//! insertion order (so semi-naive deltas are contiguous ranges) in a
//! flat row-major arena of interned [`TermId`]s, and build hash indices
//! *lazily*, keyed on the bound-position projection a body literal
//! actually asks for:
//!
//! - an **exact** index per bitmask of bound positions, mapping the
//!   projected value vector to its (sorted) row list;
//! - a **sub** index per `(position, functor)` pair, mapping a
//!   compound's first argument to rows — the shape of skolem identities
//!   like `id(Z, Y)` with `Z` bound, ubiquitous in translated C-logic.
//!
//! Laziness means an evaluation pays only for the access patterns its
//! rules exercise, and the cost is paid once: each pattern index
//! carries a `covered` row watermark, and as long as a relation only
//! ever *appends* the index is *extended* in place — never rebuilt —
//! when later delta iterations (or a new epoch's facts) append rows.
//! The same property makes a published snapshot's indices shareable:
//! indices live behind [`RwLock`]s inside the relation, so concurrent
//! readers of an `Arc`-shared store reuse whatever the first probe
//! built, and cloning a store (the copy-on-write path) carries the
//! built indices along.
//!
//! Retraction breaks the append-only premise, so the watermark
//! contract is **versioned** rather than unconditional: every
//! non-append mutation ([`Relation::remove_rows`], reached through
//! [`FactStore::remove`] / [`FactStore::remove_all`]) bumps the
//! relation's `version`, and a probe whose index was built under an
//! older version discards and rebuilds it (counted in
//! [`IndexStats::invalidations`]) instead of trusting row ids that may
//! have been compacted away. A debug assertion on every probe return
//! path catches a stale index serving rows past the current length.

use crate::ground::{GroundTerm, TermId, TermStore};
use crate::rterm::{RTerm, VarId};
use clogic_core::symbol::Symbol;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

/// An index key derived from a partially bound pattern position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// The position's full value is known.
    Exact(u32, TermId),
    /// The position holds a compound with this principal functor whose
    /// first argument is known — the shape of skolem identities like
    /// `id(Z, Y)` with `Z` bound, ubiquitous in translated C-logic.
    Sub(u32, Symbol, TermId),
}

/// Whether stores answer `candidate_rows` from pattern indices or by
/// scanning. `Scan` exists for baseline benchmarking and for the
/// indexed-≡-scan equivalence tests; it is never faster.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IndexMode {
    /// Build and probe lazy pattern indices (the default).
    #[default]
    Indexed,
    /// Ignore indices; every probe enumerates its whole row range.
    Scan,
}

/// A point-in-time reading of the index counters, for metrics deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Pattern indices constructed for the first time.
    pub builds: u64,
    /// Existing pattern indices caught up with rows appended since
    /// their last probe (the delta-iteration reuse path).
    pub extends: u64,
    /// Probes answered from an index.
    pub hits: u64,
    /// Probes with no derivable key that fell back to a range scan.
    pub misses: u64,
    /// Pattern indices discarded and rebuilt because their relation was
    /// mutated non-append-only (a retraction) since they were built.
    pub invalidations: u64,
}

/// Shared index counters: atomics so concurrent snapshot readers can
/// account probes through `&self`.
#[derive(Debug, Default)]
struct IndexCounters {
    builds: AtomicU64,
    extends: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl IndexCounters {
    fn snapshot(&self) -> IndexStats {
        IndexStats {
            builds: self.builds.load(Ordering::Relaxed),
            extends: self.extends.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

impl Clone for IndexCounters {
    fn clone(&self) -> IndexCounters {
        let s = self.snapshot();
        IndexCounters {
            builds: AtomicU64::new(s.builds),
            extends: AtomicU64::new(s.extends),
            hits: AtomicU64::new(s.hits),
            misses: AtomicU64::new(s.misses),
            invalidations: AtomicU64::new(s.invalidations),
        }
    }
}

/// One lazily built exact index: rows grouped by their projection onto
/// a fixed set of bound positions. `covered` is the exclusive row
/// watermark the map reflects; rows at or past it are folded in on the
/// next probe. `version` is the relation version the map was built
/// under — a mismatch at probe time means rows were removed (ids
/// compacted) and the whole map is rebuilt.
#[derive(Clone, Debug, Default)]
struct PatternIndex {
    covered: u32,
    version: u64,
    map: HashMap<Vec<TermId>, Vec<u32>>,
}

/// One lazily built sub-term index for a `(position, functor)` pair:
/// rows whose value at the position is `functor(first, …)`, grouped by
/// `first`. Carries the same `covered`/`version` contract as
/// [`PatternIndex`].
#[derive(Clone, Debug, Default)]
struct SubPatternIndex {
    covered: u32,
    version: u64,
    map: HashMap<TermId, Vec<u32>>,
}

fn hash_tuple(tuple: &[TermId]) -> u64 {
    let mut h = DefaultHasher::new();
    tuple.hash(&mut h);
    h.finish()
}

/// Restricts a sorted row list to `range` (binary search on both ends).
fn slice_rows(rows: &[u32], range: &Range<u32>) -> Vec<u32> {
    let lo = rows.partition_point(|&r| r < range.start);
    let hi = rows.partition_point(|&r| r < range.end);
    rows[lo..hi].to_vec()
}

/// A relation: the tuple set of one predicate, stored columnar-style as
/// one flat row-major arena of interned term handles.
#[derive(Debug, Default)]
pub struct Relation {
    /// Tuple width; fixed by the first insert (relations are keyed by
    /// `(predicate, arity)` in the store, so it never varies).
    arity: usize,
    /// Number of tuples. Kept explicitly so zero-arity relations (the
    /// magic-set seed `m__q__()` is one) still count rows.
    len: u32,
    /// Row-major tuple arena: row `r` is `flat[r·arity .. (r+1)·arity]`.
    flat: Vec<TermId>,
    /// Dedup buckets: tuple hash → rows with that hash.
    dedup: HashMap<u64, Vec<u32>>,
    /// Lazy exact indices, keyed by the bitmask of projected positions.
    exact: RwLock<HashMap<u64, PatternIndex>>,
    /// Lazy sub-term indices, keyed by `(position, functor)`.
    sub: RwLock<HashMap<(u32, Symbol), SubPatternIndex>>,
    /// Probe accounting, surfaced as `folog.index.*` metrics.
    counters: IndexCounters,
    /// Epoch (set by the owning [`FactStore`]) at which this relation
    /// last grew. Inserts extend the arena in place and leave index
    /// watermarks behind — a delta load never rebuilds an index.
    stamp: u64,
    /// Mutation version: bumped by every non-append mutation
    /// ([`Relation::remove_rows`]). Pattern indices record the version
    /// they were built under; a mismatch at probe time forces a full
    /// rebuild instead of trusting compacted-away row ids.
    version: u64,
}

impl Clone for Relation {
    /// Cloning (the snapshot copy-on-write path) carries built indices
    /// along, so a new writer — and every reader of the published
    /// artifact — starts warm instead of rebuilding per reader.
    fn clone(&self) -> Relation {
        let exact = self.exact.read().unwrap_or_else(PoisonError::into_inner);
        let sub = self.sub.read().unwrap_or_else(PoisonError::into_inner);
        Relation {
            arity: self.arity,
            len: self.len,
            flat: self.flat.clone(),
            dedup: self.dedup.clone(),
            exact: RwLock::new(exact.clone()),
            sub: RwLock::new(sub.clone()),
            counters: self.counters.clone(),
            stamp: self.stamp,
            version: self.version,
        }
    }
}

impl Relation {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// The epoch at which this relation last grew (0 until touched
    /// inside an epoch-stamped store).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// The mutation version: 0 while the relation has only ever been
    /// appended to, bumped by every [`Relation::remove_rows`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a tuple; returns true when it was new. Insertion is
    /// index-free: pattern indices are built on first probe and caught
    /// up lazily, so bulk loads pay only the arena append and a hash
    /// bucket check. The store parameter is kept for call-site
    /// stability; dedup no longer consults it.
    pub fn insert(&mut self, tuple: Vec<TermId>, _store: &TermStore) -> bool {
        if self.len == 0 {
            self.arity = tuple.len();
        }
        debug_assert_eq!(tuple.len(), self.arity, "arity fixed per relation");
        let row = self.len;
        let (arity, flat) = (self.arity, &self.flat);
        let bucket = self.dedup.entry(hash_tuple(&tuple)).or_default();
        if bucket.iter().any(|&r| {
            let start = r as usize * arity;
            flat[start..start + arity] == tuple[..]
        }) {
            return false;
        }
        bucket.push(row);
        self.flat.extend_from_slice(&tuple);
        self.len += 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[TermId]) -> bool {
        self.row_of(tuple).is_some()
    }

    /// The row id of `tuple`, if stored.
    pub fn row_of(&self, tuple: &[TermId]) -> Option<u32> {
        if self.len > 0 && tuple.len() != self.arity {
            return None;
        }
        self.dedup.get(&hash_tuple(tuple)).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&r| {
                    let start = r as usize * self.arity;
                    self.flat[start..start + self.arity] == *tuple
                })
                .copied()
        })
    }

    /// Removes the given rows (any order, duplicates and out-of-range
    /// ids ignored), compacting the arena in insertion order and
    /// rebuilding the dedup buckets (row ids shift). Bumps the mutation
    /// version so every pattern index built before this call is
    /// discarded on its next probe. Returns how many rows were removed.
    pub fn remove_rows(&mut self, rows: &[u32]) -> usize {
        let mut doomed: Vec<u32> = rows.iter().copied().filter(|&r| r < self.len).collect();
        doomed.sort_unstable();
        doomed.dedup();
        if doomed.is_empty() {
            return 0;
        }
        let mut next = doomed.iter().copied().peekable();
        let mut keep = 0u32;
        for row in 0..self.len {
            if next.peek() == Some(&row) {
                next.next();
                continue;
            }
            if keep != row {
                let src = row as usize * self.arity;
                let dst = keep as usize * self.arity;
                for i in 0..self.arity {
                    self.flat[dst + i] = self.flat[src + i];
                }
            }
            keep += 1;
        }
        self.flat.truncate(keep as usize * self.arity);
        self.len = keep;
        self.dedup.clear();
        for row in 0..self.len {
            let h = hash_tuple(self.tuple(row));
            self.dedup.entry(h).or_default().push(row);
        }
        self.version += 1;
        doomed.len()
    }

    /// The tuple at `row`.
    pub fn tuple(&self, row: u32) -> &[TermId] {
        let start = row as usize * self.arity;
        &self.flat[start..start + self.arity]
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> impl Iterator<Item = &[TermId]> {
        (0..self.len).map(|r| self.tuple(r))
    }

    /// A point-in-time reading of this relation's index counters.
    pub fn index_stats(&self) -> IndexStats {
        self.counters.snapshot()
    }

    /// Rows whose `pos`-th component equals `v` (index-probing; builds
    /// the single-position index on first use).
    pub fn rows_with(&self, pos: u32, v: TermId, store: &TermStore) -> Vec<u32> {
        self.candidate_rows(&[IndexKey::Exact(pos, v)], 0..self.len, store, IndexMode::Indexed)
    }

    /// Rows matching an index key (index-probing).
    pub fn rows_for(&self, key: IndexKey, store: &TermStore) -> Vec<u32> {
        self.candidate_rows(&[key], 0..self.len, store, IndexMode::Indexed)
    }

    /// Candidate rows within `range` for a partially bound pattern.
    ///
    /// All `Exact` keys are combined into one multi-position projection
    /// probe (maximal selectivity among the hash indices); with no
    /// exact key the first `Sub` key is probed; with no keys at all —
    /// or in [`IndexMode::Scan`] — the whole range is enumerated.
    /// Candidates are a superset filter: callers still unify the
    /// pattern against each returned row, so sub-key probes (which
    /// pin only functor and first argument) stay sound.
    pub fn candidate_rows(
        &self,
        keys: &[IndexKey],
        range: Range<u32>,
        store: &TermStore,
        mode: IndexMode,
    ) -> Vec<u32> {
        if mode == IndexMode::Scan {
            return range.collect();
        }
        // Positions past 63 don't fit the bitmask; such arities don't
        // occur in practice, and dropping the key is merely less
        // selective, never wrong.
        let mut exact: Vec<(u32, TermId)> = keys
            .iter()
            .filter_map(|k| match *k {
                IndexKey::Exact(pos, v) if pos < 64 => Some((pos, v)),
                _ => None,
            })
            .collect();
        if !exact.is_empty() {
            exact.sort_unstable_by_key(|&(pos, _)| pos);
            let mask = exact.iter().fold(0u64, |m, &(pos, _)| m | (1 << pos));
            let positions: Vec<u32> = exact.iter().map(|&(pos, _)| pos).collect();
            let proj: Vec<TermId> = exact.iter().map(|&(_, v)| v).collect();
            let rows = self.probe_exact(mask, &positions, &proj);
            return slice_rows(&rows, &range);
        }
        if let Some(&IndexKey::Sub(pos, f, first)) = keys
            .iter()
            .find(|k| matches!(k, IndexKey::Sub(..)))
        {
            let rows = self.probe_sub(pos, f, first, store);
            return slice_rows(&rows, &range);
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        range.collect()
    }

    /// Probes (building or extending as needed) the exact index for
    /// `mask`, returning the sorted rows whose projection onto
    /// `positions` equals `proj`.
    fn probe_exact(&self, mask: u64, positions: &[u32], proj: &[TermId]) -> Vec<u32> {
        {
            let guard = self.exact.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(idx) = guard.get(&mask) {
                if idx.covered == self.len && idx.version == self.version {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    let rows = idx.map.get(proj).cloned().unwrap_or_default();
                    self.assert_rows_live(&rows);
                    return rows;
                }
            }
        }
        let mut guard = self.exact.write().unwrap_or_else(PoisonError::into_inner);
        let idx = guard.entry(mask).or_insert_with(|| {
            self.counters.builds.fetch_add(1, Ordering::Relaxed);
            PatternIndex {
                version: self.version,
                ..PatternIndex::default()
            }
        });
        if idx.version != self.version {
            // Rows were removed since this index was built: its row ids
            // are meaningless after compaction. Rebuild from scratch.
            self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
            idx.map.clear();
            idx.covered = 0;
            idx.version = self.version;
        }
        if idx.covered < self.len {
            if idx.covered > 0 {
                self.counters.extends.fetch_add(1, Ordering::Relaxed);
            }
            for row in idx.covered..self.len {
                let t = self.tuple(row);
                let key: Vec<TermId> = positions.iter().map(|&p| t[p as usize]).collect();
                idx.map.entry(key).or_default().push(row);
            }
            idx.covered = self.len;
        }
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        let rows = idx.map.get(proj).cloned().unwrap_or_default();
        self.assert_rows_live(&rows);
        rows
    }

    /// Probes (building or extending as needed) the sub-term index for
    /// `(pos, f)`, returning the sorted rows whose value there is
    /// `f(first, …)`.
    fn probe_sub(&self, pos: u32, f: Symbol, first: TermId, store: &TermStore) -> Vec<u32> {
        {
            let guard = self.sub.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(idx) = guard.get(&(pos, f)) {
                if idx.covered == self.len && idx.version == self.version {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    let rows = idx.map.get(&first).cloned().unwrap_or_default();
                    self.assert_rows_live(&rows);
                    return rows;
                }
            }
        }
        let mut guard = self.sub.write().unwrap_or_else(PoisonError::into_inner);
        let idx = guard.entry((pos, f)).or_insert_with(|| {
            self.counters.builds.fetch_add(1, Ordering::Relaxed);
            SubPatternIndex {
                version: self.version,
                ..SubPatternIndex::default()
            }
        });
        if idx.version != self.version {
            self.counters.invalidations.fetch_add(1, Ordering::Relaxed);
            idx.map.clear();
            idx.covered = 0;
            idx.version = self.version;
        }
        if idx.covered < self.len {
            if idx.covered > 0 {
                self.counters.extends.fetch_add(1, Ordering::Relaxed);
            }
            for row in idx.covered..self.len {
                let v = self.tuple(row)[pos as usize];
                if let GroundTerm::App(g, args) = store.get(v) {
                    if *g == f {
                        if let Some(&head) = args.first() {
                            idx.map.entry(head).or_default().push(row);
                        }
                    }
                }
            }
            idx.covered = self.len;
        }
        self.counters.hits.fetch_add(1, Ordering::Relaxed);
        let rows = idx.map.get(&first).cloned().unwrap_or_default();
        self.assert_rows_live(&rows);
        rows
    }

    /// Debug guard on every index return path: a row id at or past
    /// `len` means a stale index (built before a removal) was served —
    /// exactly the bug the version check exists to prevent.
    #[inline]
    fn assert_rows_live(&self, rows: &[u32]) {
        debug_assert!(
            rows.iter().all(|&r| r < self.len),
            "stale pattern index served rows {:?} past relation length {}",
            rows.iter().filter(|&&r| r >= self.len).collect::<Vec<_>>(),
            self.len,
        );
    }
}

/// The fact store: one relation per `(predicate, arity)`.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    relations: HashMap<(Symbol, usize), Relation>,
    /// Total number of stored tuples.
    pub total: usize,
    /// Current epoch; every insert stamps its relation with this value.
    epoch: u64,
    /// How `candidate_rows` answers: indexed (default) or scanning.
    index_mode: IndexMode,
}

impl FactStore {
    /// An empty store.
    pub fn new() -> FactStore {
        FactStore::default()
    }

    /// The store's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the store to `epoch`. Relations grown from now on carry
    /// this stamp; existing tuples and index watermarks are untouched,
    /// so a resumed fixpoint extends them in place instead of
    /// rebuilding.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The active [`IndexMode`].
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    /// Switches between indexed probing and the scan baseline.
    pub fn set_index_mode(&mut self, mode: IndexMode) {
        self.index_mode = mode;
    }

    /// Index counters summed over every relation.
    pub fn index_stats(&self) -> IndexStats {
        let mut out = IndexStats::default();
        for rel in self.relations.values() {
            let s = rel.index_stats();
            out.builds += s.builds;
            out.extends += s.extends;
            out.hits += s.hits;
            out.misses += s.misses;
            out.invalidations += s.invalidations;
        }
        out
    }

    /// A snapshot of every relation's current length, used to seed a
    /// resumed semi-naive run: rows appended after the snapshot form the
    /// delta frontier.
    pub fn lens(&self) -> HashMap<(Symbol, usize), u32> {
        self.relations
            .iter()
            .map(|(&k, r)| (k, r.len() as u32))
            .collect()
    }

    /// Inserts a fact; returns true when new.
    pub fn insert(&mut self, pred: Symbol, tuple: Vec<TermId>, store: &TermStore) -> bool {
        let arity = tuple.len();
        let epoch = self.epoch;
        let rel = self.relations.entry((pred, arity)).or_default();
        let fresh = rel.insert(tuple, store);
        if fresh {
            rel.stamp = epoch;
            self.total += 1;
        }
        fresh
    }

    /// Removes one fact; returns true when it was present. A non-append
    /// mutation: the relation's version is bumped so every pattern
    /// index built before this call rebuilds on its next probe.
    pub fn remove(&mut self, pred: Symbol, tuple: &[TermId]) -> bool {
        self.remove_all(&[(pred, tuple.to_vec())]) == 1
    }

    /// Batch removal (one arena compaction per touched relation).
    /// Facts not present are ignored; returns how many were removed.
    /// Relations emptied by the removal are dropped from the store so
    /// `predicates()` keeps meaning "pairs with tuples".
    pub fn remove_all(&mut self, facts: &[(Symbol, Vec<TermId>)]) -> usize {
        let mut doomed: HashMap<(Symbol, usize), Vec<u32>> = HashMap::new();
        for (pred, tuple) in facts {
            let key = (*pred, tuple.len());
            if let Some(row) = self.relations.get(&key).and_then(|r| r.row_of(tuple)) {
                doomed.entry(key).or_default().push(row);
            }
        }
        let epoch = self.epoch;
        let mut removed = 0;
        for (key, rows) in doomed {
            let rel = self.relations.get_mut(&key).expect("relation looked up above");
            let k = rel.remove_rows(&rows);
            rel.stamp = epoch;
            removed += k;
            self.total -= k;
            if rel.is_empty() {
                self.relations.remove(&key);
            }
        }
        removed
    }

    /// The relation of a predicate, if any tuples exist.
    pub fn relation(&self, pred: Symbol, arity: usize) -> Option<&Relation> {
        self.relations.get(&(pred, arity))
    }

    /// Membership test.
    pub fn contains(&self, pred: Symbol, tuple: &[TermId]) -> bool {
        self.relations
            .get(&(pred, tuple.len()))
            .is_some_and(|r| r.contains(tuple))
    }

    /// All `(predicate, arity)` pairs with tuples.
    pub fn predicates(&self) -> Vec<(Symbol, usize)> {
        let mut out: Vec<(Symbol, usize)> = self.relations.keys().copied().collect();
        out.sort();
        out
    }

    /// Renders the whole store, sorted, for golden tests.
    pub fn display(&self, store: &TermStore) -> Vec<String> {
        let mut out = Vec::with_capacity(self.total);
        for (&(pred, _), rel) in &self.relations {
            for t in rel.tuples() {
                let args: Vec<String> = t.iter().map(|&a| store.display(a)).collect();
                out.push(format!("{}({})", pred, args.join(", ")));
            }
        }
        out.sort();
        out
    }
}

/// A pattern environment: rule-local variable bindings to ground terms.
pub type Env = Vec<Option<TermId>>;

/// Matches a pattern term against a ground term, extending `env`.
/// Returns false (with `env` possibly partially extended — callers
/// snapshot/restore via the trail mark and [`trail_undo`]) on mismatch.
pub fn match_term(
    pat: &RTerm,
    data: TermId,
    store: &TermStore,
    env: &mut Env,
    trail: &mut Vec<VarId>,
) -> bool {
    match pat {
        RTerm::Var(v) => {
            let slot = *v as usize;
            if slot >= env.len() {
                env.resize(slot + 1, None);
            }
            match env[slot] {
                Some(bound) => bound == data,
                None => {
                    env[slot] = Some(data);
                    trail.push(*v);
                    true
                }
            }
        }
        RTerm::Const(c) => matches!(store.get(data), GroundTerm::Const(d) if d == c),
        RTerm::App(f, args) => match store.get(data) {
            GroundTerm::App(g, data_args) if g == f && data_args.len() == args.len() => {
                // Clone the arg ids to release the borrow on `store`.
                let data_args = data_args.clone();
                args.iter()
                    .zip(data_args)
                    .all(|(p, d)| match_term(p, d, store, env, trail))
            }
            _ => false,
        },
    }
}

/// Undoes all env bindings recorded on the trail past `mark`.
pub fn trail_undo(env: &mut Env, trail: &mut Vec<VarId>, mark: usize) {
    while trail.len() > mark {
        let v = trail.pop().expect("non-empty");
        env[v as usize] = None;
    }
}

/// Instantiates a pattern under an env, interning any new ground
/// structure. Returns `None` if an unbound variable remains.
pub fn instantiate(pat: &RTerm, env: &Env, store: &mut TermStore) -> Option<TermId> {
    match pat {
        RTerm::Var(v) => env.get(*v as usize).copied().flatten(),
        RTerm::Const(c) => Some(store.intern_const(*c)),
        RTerm::App(f, args) => {
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(instantiate(a, env, store)?);
            }
            Some(store.intern_app(*f, ids))
        }
    }
}

/// The index keys derivable from a pattern atom under an env: exact keys
/// for fully instantiable positions, sub-keys for compound patterns whose
/// first argument is instantiable (e.g. `id(Z, Y)` with `Z` bound).
pub fn bound_positions(args: &[RTerm], env: &Env, store: &TermStore) -> Vec<IndexKey> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if let Some(id) = peek_ground(a, env, store) {
            out.push(IndexKey::Exact(i as u32, id));
        } else if let RTerm::App(f, sub) = a {
            if let Some(first) = sub.first().and_then(|x| peek_ground(x, env, store)) {
                out.push(IndexKey::Sub(i as u32, *f, first));
            }
        }
    }
    out
}

/// Like [`instantiate`] but read-only: succeeds only when every piece of
/// the pattern is already interned.
fn peek_ground(pat: &RTerm, env: &Env, store: &TermStore) -> Option<TermId> {
    match pat {
        RTerm::Var(v) => env.get(*v as usize).copied().flatten(),
        RTerm::Const(c) => {
            // Reuse the interning map without inserting.
            let probe = GroundTerm::Const(*c);
            store_lookup(store, &probe)
        }
        RTerm::App(f, args) => {
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(peek_ground(a, env, store)?);
            }
            store_lookup(store, &GroundTerm::App(*f, ids))
        }
    }
}

fn store_lookup(store: &TermStore, probe: &GroundTerm) -> Option<TermId> {
    store.lookup(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;
    use clogic_core::term::Const;

    fn setup() -> (TermStore, TermId, TermId, TermId) {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let b = st.intern_const(Const::Sym(sym("b")));
        let c = st.intern_const(Const::Sym(sym("c")));
        (st, a, b, c)
    }

    #[test]
    fn relation_insert_dedup_and_index() {
        let (st, a, b, c) = setup();
        let mut r = Relation::default();
        assert!(r.insert(vec![a, b], &st));
        assert!(!r.insert(vec![a, b], &st));
        assert!(r.insert(vec![a, c], &st));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[a, b]));
        assert!(!r.contains(&[b, a]));
        assert_eq!(r.rows_with(0, a, &st), vec![0, 1]);
        assert_eq!(r.rows_with(1, c, &st), vec![1]);
        assert_eq!(r.rows_with(1, a, &st), Vec::<u32>::new());
    }

    #[test]
    fn zero_arity_relation_counts_rows() {
        let (st, _, _, _) = setup();
        let mut r = Relation::default();
        assert!(r.insert(vec![], &st));
        assert!(!r.insert(vec![], &st));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.tuples().count(), 1);
        assert_eq!(r.candidate_rows(&[], 0..1, &st, IndexMode::Indexed), vec![0]);
    }

    #[test]
    fn candidate_rows_combine_exact_keys() {
        let (st, a, b, c) = setup();
        let mut r = Relation::default();
        r.insert(vec![a, b], &st);
        r.insert(vec![a, c], &st);
        r.insert(vec![b, c], &st);
        // both bound: the multi-position projection pins the exact row
        let both = r.candidate_rows(
            &[IndexKey::Exact(0, a), IndexKey::Exact(1, c)],
            0..3,
            &st,
            IndexMode::Indexed,
        );
        assert_eq!(both, vec![1]);
        // no bound positions: whole range
        assert_eq!(r.candidate_rows(&[], 1..3, &st, IndexMode::Indexed), vec![1, 2]);
        // range filters delta scans
        assert_eq!(
            r.candidate_rows(&[IndexKey::Exact(0, a)], 1..3, &st, IndexMode::Indexed),
            vec![1]
        );
        // scan mode ignores keys entirely
        assert_eq!(
            r.candidate_rows(&[IndexKey::Exact(0, a)], 0..3, &st, IndexMode::Scan),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn lazy_index_builds_once_then_extends() {
        let (st, a, b, c) = setup();
        let mut r = Relation::default();
        r.insert(vec![a, b], &st);
        r.insert(vec![a, c], &st);
        assert_eq!(r.index_stats(), IndexStats::default());
        // first probe builds
        assert_eq!(r.rows_with(0, a, &st), vec![0, 1]);
        let s1 = r.index_stats();
        assert_eq!((s1.builds, s1.extends, s1.hits), (1, 0, 1));
        // second probe with the same shape is a pure hit
        assert_eq!(r.rows_with(0, b, &st), Vec::<u32>::new());
        assert_eq!(r.index_stats().builds, 1);
        assert_eq!(r.index_stats().hits, 2);
        // appending rows leaves the index behind; the next probe
        // extends it in place rather than rebuilding
        r.insert(vec![b, c], &st);
        assert_eq!(r.rows_with(0, b, &st), vec![2]);
        let s2 = r.index_stats();
        assert_eq!((s2.builds, s2.extends), (1, 1));
        // keyless probes count as misses
        r.candidate_rows(&[], 0..3, &st, IndexMode::Indexed);
        assert_eq!(r.index_stats().misses, 1);
    }

    #[test]
    fn remove_rows_compacts_and_invalidates_indices() {
        let (st, a, b, c) = setup();
        let mut r = Relation::default();
        r.insert(vec![a, b], &st);
        r.insert(vec![b, c], &st);
        r.insert(vec![a, c], &st);
        // Build an index, then remove the middle row.
        assert_eq!(r.rows_with(0, a, &st), vec![0, 2]);
        assert_eq!(r.remove_rows(&[1]), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.version(), 1);
        // Row ids shifted: (a, c) is now row 1, and the stale index is
        // rebuilt rather than served.
        assert!(r.contains(&[a, c]));
        assert!(!r.contains(&[b, c]));
        assert_eq!(r.row_of(&[a, c]), Some(1));
        assert_eq!(r.rows_with(0, a, &st), vec![0, 1]);
        assert_eq!(r.index_stats().invalidations, 1);
        // Duplicates and out-of-range row ids are ignored.
        assert_eq!(r.remove_rows(&[7, 7, 9]), 0);
        assert_eq!(r.version(), 1);
    }

    #[test]
    fn fact_store_remove_drops_empty_relations() {
        let (st, a, b, _) = setup();
        let mut fs = FactStore::new();
        fs.insert(sym("edge"), vec![a, b], &st);
        fs.insert(sym("node"), vec![a], &st);
        fs.insert(sym("node"), vec![b], &st);
        assert!(!fs.remove(sym("edge"), &[b, a]));
        assert!(fs.remove(sym("edge"), &[a, b]));
        assert_eq!(fs.total, 2);
        assert!(fs.relation(sym("edge"), 2).is_none());
        assert_eq!(fs.predicates(), vec![(sym("node"), 1)]);
        assert_eq!(
            fs.remove_all(&[
                (sym("node"), vec![a]),
                (sym("node"), vec![a]), // duplicate request, one row
                (sym("missing"), vec![b]),
            ]),
            1
        );
        assert_eq!(fs.total, 1);
        assert!(fs.contains(sym("node"), &[b]));
    }

    #[test]
    fn clone_preserves_built_indices() {
        let (st, a, b, c) = setup();
        let mut r = Relation::default();
        r.insert(vec![a, b], &st);
        r.insert(vec![a, c], &st);
        r.rows_with(0, a, &st);
        let clone = r.clone();
        assert_eq!(clone.rows_with(0, a, &st), vec![0, 1]);
        // the clone served from the carried-over index: no new build
        assert_eq!(clone.index_stats().builds, 1);
        assert_eq!(clone.index_stats().hits, 2);
    }

    #[test]
    fn sub_index_finds_compounds_by_first_argument() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let b = st.intern_const(Const::Sym(sym("b")));
        let id_ab = st.intern_app(sym("id"), vec![a, b]);
        let id_ba = st.intern_app(sym("id"), vec![b, a]);
        let mut r = Relation::default();
        r.insert(vec![id_ab], &st);
        r.insert(vec![id_ba], &st);
        assert_eq!(r.rows_for(IndexKey::Sub(0, sym("id"), a), &st), vec![0]);
        assert_eq!(r.rows_for(IndexKey::Sub(0, sym("id"), b), &st), vec![1]);
        assert!(r.rows_for(IndexKey::Sub(0, sym("mk"), a), &st).is_empty());
        // bound_positions derives the sub key from a partial pattern
        let env: Env = vec![Some(a)];
        let pat = vec![RTerm::App(sym("id"), vec![RTerm::Var(0), RTerm::Var(1)])];
        let keys = bound_positions(&pat, &env, &st);
        assert_eq!(keys, vec![IndexKey::Sub(0, sym("id"), a)]);
    }

    #[test]
    fn fact_store_roundtrip() {
        let (st, a, b, _) = setup();
        let mut fs = FactStore::new();
        assert!(fs.insert(sym("edge"), vec![a, b], &st));
        assert!(!fs.insert(sym("edge"), vec![a, b], &st));
        assert!(fs.insert(sym("node"), vec![a], &st));
        assert_eq!(fs.total, 2);
        assert!(fs.contains(sym("edge"), &[a, b]));
        assert_eq!(fs.predicates(), vec![(sym("edge"), 2), (sym("node"), 1)]);
        assert_eq!(fs.display(&st), vec!["edge(a, b)", "node(a)"]);
    }

    #[test]
    fn fact_store_aggregates_index_stats() {
        let (st, a, b, _) = setup();
        let mut fs = FactStore::new();
        fs.insert(sym("edge"), vec![a, b], &st);
        fs.insert(sym("node"), vec![a], &st);
        assert_eq!(fs.index_mode(), IndexMode::Indexed);
        let e = fs.relation(sym("edge"), 2).unwrap();
        e.candidate_rows(&[IndexKey::Exact(0, a)], 0..1, &st, fs.index_mode());
        let n = fs.relation(sym("node"), 1).unwrap();
        n.candidate_rows(&[IndexKey::Exact(0, a)], 0..1, &st, fs.index_mode());
        let s = fs.index_stats();
        assert_eq!((s.builds, s.hits), (2, 2));
    }

    #[test]
    fn same_predicate_different_arities_are_distinct() {
        let (st, a, b, _) = setup();
        let mut fs = FactStore::new();
        fs.insert(sym("p"), vec![a], &st);
        fs.insert(sym("p"), vec![a, b], &st);
        assert_eq!(fs.relation(sym("p"), 1).unwrap().len(), 1);
        assert_eq!(fs.relation(sym("p"), 2).unwrap().len(), 1);
    }

    #[test]
    fn match_var_binds_and_checks() {
        let (st, a, b, _) = setup();
        let mut env: Env = Vec::new();
        let mut trail = Vec::new();
        assert!(match_term(&RTerm::Var(0), a, &st, &mut env, &mut trail));
        assert_eq!(env[0], Some(a));
        // bound variable must agree
        assert!(!match_term(&RTerm::Var(0), b, &st, &mut env, &mut trail));
        assert!(match_term(&RTerm::Var(0), a, &st, &mut env, &mut trail));
    }

    #[test]
    fn match_compound_and_trail_undo() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let b = st.intern_const(Const::Sym(sym("b")));
        let fab = st.intern_app(sym("f"), vec![a, b]);
        let mut env: Env = Vec::new();
        let mut trail = Vec::new();
        let mark = trail.len();
        let pat = RTerm::App(sym("f"), vec![RTerm::Var(0), RTerm::Var(1)]);
        assert!(match_term(&pat, fab, &st, &mut env, &mut trail));
        assert_eq!(env[0], Some(a));
        assert_eq!(env[1], Some(b));
        trail_undo(&mut env, &mut trail, mark);
        assert_eq!(env[0], None);
        assert_eq!(env[1], None);
        // functor mismatch
        let gpat = RTerm::App(sym("g"), vec![RTerm::Var(0), RTerm::Var(1)]);
        assert!(!match_term(&gpat, fab, &st, &mut env, &mut trail));
        // constant pattern against compound
        assert!(!match_term(
            &RTerm::Const(Const::Sym(sym("a"))),
            fab,
            &st,
            &mut env,
            &mut trail
        ));
    }

    #[test]
    fn instantiate_interns_new_structure() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let env: Env = vec![Some(a)];
        let pat = RTerm::App(sym("id"), vec![RTerm::Var(0), RTerm::Const(Const::Int(1))]);
        let id = instantiate(&pat, &env, &mut st).unwrap();
        assert_eq!(st.display(id), "id(a, 1)");
        // unbound variable fails
        let pat2 = RTerm::Var(3);
        assert!(instantiate(&pat2, &env, &mut st).is_none());
    }

    #[test]
    fn bound_positions_sees_existing_terms_only() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let env: Env = vec![Some(a)];
        let args = vec![
            RTerm::Var(0),                        // bound via env
            RTerm::Const(Const::Sym(sym("a"))),   // interned
            RTerm::Const(Const::Sym(sym("zzz"))), // never interned: can't match anything…
            RTerm::Var(9),                        // unbound
        ];
        let bp = bound_positions(&args, &env, &st);
        assert_eq!(bp, vec![IndexKey::Exact(0, a), IndexKey::Exact(1, a)]);
    }
}
