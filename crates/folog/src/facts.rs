//! The extensional store of derived ground facts, with per-position
//! indexing, and matching of rule patterns against stored tuples.
//!
//! Bottom-up evaluation is join processing: a rule body is evaluated
//! left-to-right, each atom matched against the relation of its predicate
//! under the bindings accumulated so far. Relations keep insertion order
//! (so semi-naive deltas are contiguous ranges) plus hash indexes per
//! argument position.

use crate::ground::{GroundTerm, TermId, TermStore};
use crate::rterm::{RTerm, VarId};
use clogic_core::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// An index key derived from a partially bound pattern position.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexKey {
    /// The position's full value is known.
    Exact(u32, TermId),
    /// The position holds a compound with this principal functor whose
    /// first argument is known — the shape of skolem identities like
    /// `id(Z, Y)` with `Z` bound, ubiquitous in translated C-logic.
    Sub(u32, Symbol, TermId),
}

/// A relation: the tuple set of one predicate.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    /// Tuples in insertion order.
    tuples: Vec<Vec<TermId>>,
    /// Dedup set.
    seen: HashSet<Vec<TermId>>,
    /// `(position, value) → rows`.
    index: HashMap<(u32, TermId), Vec<u32>>,
    /// `(position, functor, first argument) → rows`, for compound values.
    sub_index: HashMap<(u32, Symbol, TermId), Vec<u32>>,
    /// Epoch (set by the owning [`FactStore`]) at which this relation
    /// last grew. Inserts extend the tuple vector and hash indexes in
    /// place — a delta load never rebuilds an index.
    stamp: u64,
}

impl Relation {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// The epoch at which this relation last grew (0 until touched
    /// inside an epoch-stamped store).
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns true when it was new. The store is
    /// consulted to maintain the compound sub-index.
    pub fn insert(&mut self, tuple: Vec<TermId>, store: &TermStore) -> bool {
        if self.seen.contains(&tuple) {
            return false;
        }
        let row = self.tuples.len() as u32;
        for (pos, &v) in tuple.iter().enumerate() {
            self.index.entry((pos as u32, v)).or_default().push(row);
            if let GroundTerm::App(f, args) = store.get(v) {
                if let Some(&first) = args.first() {
                    self.sub_index
                        .entry((pos as u32, *f, first))
                        .or_default()
                        .push(row);
                }
            }
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[TermId]) -> bool {
        self.seen.contains(tuple)
    }

    /// The tuple at `row`.
    pub fn tuple(&self, row: u32) -> &[TermId] {
        &self.tuples[row as usize]
    }

    /// All tuples.
    pub fn tuples(&self) -> impl Iterator<Item = &[TermId]> {
        self.tuples.iter().map(Vec::as_slice)
    }

    /// Rows whose `pos`-th component equals `v`.
    pub fn rows_with(&self, pos: u32, v: TermId) -> &[u32] {
        self.index.get(&(pos, v)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Rows matching an index key.
    pub fn rows_for(&self, key: IndexKey) -> &[u32] {
        match key {
            IndexKey::Exact(pos, v) => self.rows_with(pos, v),
            IndexKey::Sub(pos, f, first) => self
                .sub_index
                .get(&(pos, f, first))
                .map(Vec::as_slice)
                .unwrap_or(&[]),
        }
    }

    /// Candidate rows within `range` for a partially bound pattern:
    /// picks the most selective index among the derived keys, falling
    /// back to a scan of the range.
    pub fn candidate_rows(&self, keys: &[IndexKey], range: std::ops::Range<u32>) -> Vec<u32> {
        let best = keys
            .iter()
            .map(|&k| self.rows_for(k))
            .min_by_key(|rows| rows.len());
        match best {
            Some(rows) => rows.iter().copied().filter(|r| range.contains(r)).collect(),
            None => range.collect(),
        }
    }
}

/// The fact store: one relation per `(predicate, arity)`.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    relations: HashMap<(Symbol, usize), Relation>,
    /// Total number of stored tuples.
    pub total: usize,
    /// Current epoch; every insert stamps its relation with this value.
    epoch: u64,
}

impl FactStore {
    /// An empty store.
    pub fn new() -> FactStore {
        FactStore::default()
    }

    /// The store's current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the store to `epoch`. Relations grown from now on carry
    /// this stamp; existing tuples and indexes are untouched, so a
    /// resumed fixpoint extends them in place instead of rebuilding.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// A snapshot of every relation's current length, used to seed a
    /// resumed semi-naive run: rows appended after the snapshot form the
    /// delta frontier.
    pub fn lens(&self) -> HashMap<(Symbol, usize), u32> {
        self.relations
            .iter()
            .map(|(&k, r)| (k, r.len() as u32))
            .collect()
    }

    /// Inserts a fact; returns true when new.
    pub fn insert(&mut self, pred: Symbol, tuple: Vec<TermId>, store: &TermStore) -> bool {
        let arity = tuple.len();
        let epoch = self.epoch;
        let rel = self.relations.entry((pred, arity)).or_default();
        let fresh = rel.insert(tuple, store);
        if fresh {
            rel.stamp = epoch;
            self.total += 1;
        }
        fresh
    }

    /// The relation of a predicate, if any tuples exist.
    pub fn relation(&self, pred: Symbol, arity: usize) -> Option<&Relation> {
        self.relations.get(&(pred, arity))
    }

    /// Membership test.
    pub fn contains(&self, pred: Symbol, tuple: &[TermId]) -> bool {
        self.relations
            .get(&(pred, tuple.len()))
            .is_some_and(|r| r.contains(tuple))
    }

    /// All `(predicate, arity)` pairs with tuples.
    pub fn predicates(&self) -> Vec<(Symbol, usize)> {
        let mut out: Vec<(Symbol, usize)> = self.relations.keys().copied().collect();
        out.sort();
        out
    }

    /// Renders the whole store, sorted, for golden tests.
    pub fn display(&self, store: &TermStore) -> Vec<String> {
        let mut out = Vec::with_capacity(self.total);
        for (&(pred, _), rel) in &self.relations {
            for t in rel.tuples() {
                let args: Vec<String> = t.iter().map(|&a| store.display(a)).collect();
                out.push(format!("{}({})", pred, args.join(", ")));
            }
        }
        out.sort();
        out
    }
}

/// A pattern environment: rule-local variable bindings to ground terms.
pub type Env = Vec<Option<TermId>>;

/// Matches a pattern term against a ground term, extending `env`.
/// Returns false (with `env` possibly partially extended — callers
/// snapshot/restore via the trail mark and [`trail_undo`]) on mismatch.
pub fn match_term(
    pat: &RTerm,
    data: TermId,
    store: &TermStore,
    env: &mut Env,
    trail: &mut Vec<VarId>,
) -> bool {
    match pat {
        RTerm::Var(v) => {
            let slot = *v as usize;
            if slot >= env.len() {
                env.resize(slot + 1, None);
            }
            match env[slot] {
                Some(bound) => bound == data,
                None => {
                    env[slot] = Some(data);
                    trail.push(*v);
                    true
                }
            }
        }
        RTerm::Const(c) => matches!(store.get(data), GroundTerm::Const(d) if d == c),
        RTerm::App(f, args) => match store.get(data) {
            GroundTerm::App(g, data_args) if g == f && data_args.len() == args.len() => {
                // Clone the arg ids to release the borrow on `store`.
                let data_args = data_args.clone();
                args.iter()
                    .zip(data_args)
                    .all(|(p, d)| match_term(p, d, store, env, trail))
            }
            _ => false,
        },
    }
}

/// Undoes all env bindings recorded on the trail past `mark`.
pub fn trail_undo(env: &mut Env, trail: &mut Vec<VarId>, mark: usize) {
    while trail.len() > mark {
        let v = trail.pop().expect("non-empty");
        env[v as usize] = None;
    }
}

/// Instantiates a pattern under an env, interning any new ground
/// structure. Returns `None` if an unbound variable remains.
pub fn instantiate(pat: &RTerm, env: &Env, store: &mut TermStore) -> Option<TermId> {
    match pat {
        RTerm::Var(v) => env.get(*v as usize).copied().flatten(),
        RTerm::Const(c) => Some(store.intern_const(*c)),
        RTerm::App(f, args) => {
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(instantiate(a, env, store)?);
            }
            Some(store.intern_app(*f, ids))
        }
    }
}

/// The index keys derivable from a pattern atom under an env: exact keys
/// for fully instantiable positions, sub-keys for compound patterns whose
/// first argument is instantiable (e.g. `id(Z, Y)` with `Z` bound).
pub fn bound_positions(args: &[RTerm], env: &Env, store: &TermStore) -> Vec<IndexKey> {
    let mut out = Vec::new();
    for (i, a) in args.iter().enumerate() {
        if let Some(id) = peek_ground(a, env, store) {
            out.push(IndexKey::Exact(i as u32, id));
        } else if let RTerm::App(f, sub) = a {
            if let Some(first) = sub.first().and_then(|x| peek_ground(x, env, store)) {
                out.push(IndexKey::Sub(i as u32, *f, first));
            }
        }
    }
    out
}

/// Like [`instantiate`] but read-only: succeeds only when every piece of
/// the pattern is already interned.
fn peek_ground(pat: &RTerm, env: &Env, store: &TermStore) -> Option<TermId> {
    match pat {
        RTerm::Var(v) => env.get(*v as usize).copied().flatten(),
        RTerm::Const(c) => {
            // Reuse the interning map without inserting.
            let probe = GroundTerm::Const(*c);
            store_lookup(store, &probe)
        }
        RTerm::App(f, args) => {
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(peek_ground(a, env, store)?);
            }
            store_lookup(store, &GroundTerm::App(*f, ids))
        }
    }
}

fn store_lookup(store: &TermStore, probe: &GroundTerm) -> Option<TermId> {
    store.lookup(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;
    use clogic_core::term::Const;

    fn setup() -> (TermStore, TermId, TermId, TermId) {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let b = st.intern_const(Const::Sym(sym("b")));
        let c = st.intern_const(Const::Sym(sym("c")));
        (st, a, b, c)
    }

    #[test]
    fn relation_insert_dedup_and_index() {
        let (st, a, b, c) = setup();
        let mut r = Relation::default();
        assert!(r.insert(vec![a, b], &st));
        assert!(!r.insert(vec![a, b], &st));
        assert!(r.insert(vec![a, c], &st));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[a, b]));
        assert!(!r.contains(&[b, a]));
        assert_eq!(r.rows_with(0, a), &[0, 1]);
        assert_eq!(r.rows_with(1, c), &[1]);
        assert_eq!(r.rows_with(1, a), &[] as &[u32]);
    }

    #[test]
    fn candidate_rows_pick_selective_index() {
        let (st, a, b, c) = setup();
        let mut r = Relation::default();
        r.insert(vec![a, b], &st);
        r.insert(vec![a, c], &st);
        r.insert(vec![b, c], &st);
        // bound: pos0=a (2 rows), pos1=c (2 rows) → either, filtered by range
        let rows = r.candidate_rows(&[IndexKey::Exact(0, a), IndexKey::Exact(1, c)], 0..3);
        assert!(rows == vec![0, 1] || rows == vec![1, 2]);
        // no bound positions: whole range
        assert_eq!(r.candidate_rows(&[], 1..3), vec![1, 2]);
        // range filters delta scans
        assert_eq!(r.candidate_rows(&[IndexKey::Exact(0, a)], 1..3), vec![1]);
    }

    #[test]
    fn sub_index_finds_compounds_by_first_argument() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let b = st.intern_const(Const::Sym(sym("b")));
        let id_ab = st.intern_app(sym("id"), vec![a, b]);
        let id_ba = st.intern_app(sym("id"), vec![b, a]);
        let mut r = Relation::default();
        r.insert(vec![id_ab], &st);
        r.insert(vec![id_ba], &st);
        assert_eq!(r.rows_for(IndexKey::Sub(0, sym("id"), a)), &[0]);
        assert_eq!(r.rows_for(IndexKey::Sub(0, sym("id"), b)), &[1]);
        assert!(r.rows_for(IndexKey::Sub(0, sym("mk"), a)).is_empty());
        // bound_positions derives the sub key from a partial pattern
        let env: Env = vec![Some(a)];
        let pat = vec![RTerm::App(sym("id"), vec![RTerm::Var(0), RTerm::Var(1)])];
        let keys = bound_positions(&pat, &env, &st);
        assert_eq!(keys, vec![IndexKey::Sub(0, sym("id"), a)]);
    }

    #[test]
    fn fact_store_roundtrip() {
        let (st, a, b, _) = setup();
        let mut fs = FactStore::new();
        assert!(fs.insert(sym("edge"), vec![a, b], &st));
        assert!(!fs.insert(sym("edge"), vec![a, b], &st));
        assert!(fs.insert(sym("node"), vec![a], &st));
        assert_eq!(fs.total, 2);
        assert!(fs.contains(sym("edge"), &[a, b]));
        assert_eq!(fs.predicates(), vec![(sym("edge"), 2), (sym("node"), 1)]);
        assert_eq!(fs.display(&st), vec!["edge(a, b)", "node(a)"]);
    }

    #[test]
    fn same_predicate_different_arities_are_distinct() {
        let (st, a, b, _) = setup();
        let mut fs = FactStore::new();
        fs.insert(sym("p"), vec![a], &st);
        fs.insert(sym("p"), vec![a, b], &st);
        assert_eq!(fs.relation(sym("p"), 1).unwrap().len(), 1);
        assert_eq!(fs.relation(sym("p"), 2).unwrap().len(), 1);
    }

    #[test]
    fn match_var_binds_and_checks() {
        let (st, a, b, _) = setup();
        let mut env: Env = Vec::new();
        let mut trail = Vec::new();
        assert!(match_term(&RTerm::Var(0), a, &st, &mut env, &mut trail));
        assert_eq!(env[0], Some(a));
        // bound variable must agree
        assert!(!match_term(&RTerm::Var(0), b, &st, &mut env, &mut trail));
        assert!(match_term(&RTerm::Var(0), a, &st, &mut env, &mut trail));
    }

    #[test]
    fn match_compound_and_trail_undo() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let b = st.intern_const(Const::Sym(sym("b")));
        let fab = st.intern_app(sym("f"), vec![a, b]);
        let mut env: Env = Vec::new();
        let mut trail = Vec::new();
        let mark = trail.len();
        let pat = RTerm::App(sym("f"), vec![RTerm::Var(0), RTerm::Var(1)]);
        assert!(match_term(&pat, fab, &st, &mut env, &mut trail));
        assert_eq!(env[0], Some(a));
        assert_eq!(env[1], Some(b));
        trail_undo(&mut env, &mut trail, mark);
        assert_eq!(env[0], None);
        assert_eq!(env[1], None);
        // functor mismatch
        let gpat = RTerm::App(sym("g"), vec![RTerm::Var(0), RTerm::Var(1)]);
        assert!(!match_term(&gpat, fab, &st, &mut env, &mut trail));
        // constant pattern against compound
        assert!(!match_term(
            &RTerm::Const(Const::Sym(sym("a"))),
            fab,
            &st,
            &mut env,
            &mut trail
        ));
    }

    #[test]
    fn instantiate_interns_new_structure() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let env: Env = vec![Some(a)];
        let pat = RTerm::App(sym("id"), vec![RTerm::Var(0), RTerm::Const(Const::Int(1))]);
        let id = instantiate(&pat, &env, &mut st).unwrap();
        assert_eq!(st.display(id), "id(a, 1)");
        // unbound variable fails
        let pat2 = RTerm::Var(3);
        assert!(instantiate(&pat2, &env, &mut st).is_none());
    }

    #[test]
    fn bound_positions_sees_existing_terms_only() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let env: Env = vec![Some(a)];
        let args = vec![
            RTerm::Var(0),                        // bound via env
            RTerm::Const(Const::Sym(sym("a"))),   // interned
            RTerm::Const(Const::Sym(sym("zzz"))), // never interned: can't match anything…
            RTerm::Var(9),                        // unbound
        ];
        let bp = bound_positions(&args, &env, &st);
        assert_eq!(bp, vec![IndexKey::Exact(0, a), IndexKey::Exact(1, a)]);
    }
}
