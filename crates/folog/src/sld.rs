//! Top-down evaluation: SLD resolution over definite clauses.
//!
//! Depth-first, left-to-right, with trailed backtracking, per-position
//! argument clause indexing, and resource limits (depth, resolution steps, number
//! of solutions). The result records whether the search space was
//! exhausted — an SLD run cut off by a limit reports `complete = false`,
//! which the experiments use to demonstrate that plain SLD diverges on
//! recursive programs over cyclic data where tabling terminates.

use crate::budget::{Budget, BudgetMeter, Degradation, TripKind};
use crate::builtins::BuiltinError;
use crate::program::{arg_key, shift_atom, ArgKey, ClauseView, CompiledProgram};
use crate::rterm::{RAtom, RTerm, VarAlloc, VarId};
use crate::unify::{unify_atoms, Bindings, UnifyOptions};
use clogic_core::fol::{FoAtom, FoTerm};
use clogic_core::symbol::Symbol;
use std::collections::{BTreeMap, HashMap};

/// Limits and options for an SLD run.
///
/// Hitting any limit is graceful: answers found so far are returned with
/// `complete: false` and a [`Degradation`] report.
#[derive(Clone, Debug)]
pub struct SldOptions {
    /// Maximum resolution depth (goal-stack depth); `None` = unbounded.
    pub max_depth: Option<usize>,
    /// Maximum number of resolution steps; `None` = unbounded.
    pub max_steps: Option<u64>,
    /// Stop after this many solutions; `None` = all.
    pub max_solutions: Option<usize>,
    /// Unification options.
    pub unify: UnifyOptions,
    /// Shared resource ceilings (deadline, steps, memory, cancellation).
    pub budget: Budget,
    /// Observability handles; counter deltas are flushed once per solve,
    /// never from the resolution loop.
    pub obs: clogic_obs::Obs,
}

impl Default for SldOptions {
    fn default() -> Self {
        SldOptions {
            max_depth: Some(10_000),
            max_steps: Some(10_000_000),
            max_solutions: None,
            unify: UnifyOptions::default(),
            budget: Budget::unlimited(),
            obs: clogic_obs::Obs::default(),
        }
    }
}

/// Counters for an SLD run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SldStats {
    /// Resolution steps (clause-activation attempts).
    pub steps: u64,
    /// Head-unification attempts.
    pub unify_attempts: u64,
    /// Successful head unifications.
    pub unify_successes: u64,
    /// Deepest goal stack reached.
    pub max_depth_reached: usize,
}

/// The outcome of an SLD run.
#[derive(Clone, Debug)]
pub struct SldResult {
    /// Answers: query-variable name → ground (or residual) term.
    pub answers: Vec<BTreeMap<Symbol, FoTerm>>,
    /// Counters.
    pub stats: SldStats,
    /// True iff the whole search space was explored within the limits
    /// (when false, missing answers prove nothing).
    pub complete: bool,
    /// Why the search was cut short, when `complete` is false.
    pub degradation: Option<Degradation>,
    /// Successful head unifications per clause, indexed by the clause's
    /// position in the compiled program — the top-down analogue of the
    /// fixpoint's per-rule tuple counts. (Lives on the result, not
    /// [`SldStats`], which stays `Copy`.)
    pub per_rule: Vec<u64>,
}

/// A resolution goal: a positive atom or a negated one (NAF).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SldGoal {
    /// Prove the atom.
    Pos(RAtom),
    /// Succeed iff the atom is *not* provable under the current bindings
    /// (which must ground it — otherwise the computation flounders).
    Neg(RAtom),
}

/// A query solver over a compiled program (or any [`ClauseView`], e.g. a
/// [`crate::program::ClauseOverlay`] layering query-local aux clauses
/// over a shared base).
pub struct SldEngine<'p, P: ClauseView = CompiledProgram> {
    program: &'p P,
    opts: SldOptions,
}

struct Search<'p, P: ClauseView> {
    program: &'p P,
    opts: SldOptions,
    bind: Bindings,
    next_var: VarId,
    stats: SldStats,
    truncated: bool,
    /// First engine-local cutoff cause (depth/step bound). Budget trips
    /// (deadline, cancel, budget steps) live in the meter instead.
    trunc: Option<TripKind>,
    meter: BudgetMeter,
    emitted: usize,
    per_rule: Vec<u64>,
}

impl<'p, P: ClauseView + Sync> SldEngine<'p, P> {
    /// Creates an engine.
    pub fn new(program: &'p P, opts: SldOptions) -> SldEngine<'p, P> {
        SldEngine { program, opts }
    }

    /// Solves a conjunctive query given as first-order atoms.
    pub fn solve(&self, goals: &[FoAtom]) -> Result<SldResult, BuiltinError> {
        self.solve_with_negation(goals, &[])
    }

    /// Solves a query with negated goals (checked after the positives).
    pub fn solve_with_negation(
        &self,
        goals: &[FoAtom],
        neg_goals: &[FoAtom],
    ) -> Result<SldResult, BuiltinError> {
        let mut alloc = VarAlloc::new();
        let mut map: HashMap<Symbol, VarId> = HashMap::new();
        let mut rgoals: Vec<SldGoal> = goals
            .iter()
            .map(|g| SldGoal::Pos(crate::rterm::ratom_of_fo(g, &mut map, &mut alloc)))
            .collect();
        rgoals.extend(
            neg_goals
                .iter()
                .map(|g| SldGoal::Neg(crate::rterm::ratom_of_fo(g, &mut map, &mut alloc))),
        );
        let query_vars: Vec<(Symbol, VarId)> = {
            let mut v: Vec<_> = map.into_iter().collect();
            v.sort();
            v
        };
        let meter = BudgetMeter::new(&self.opts.budget);
        let mut search = Search {
            program: self.program,
            opts: self.opts.clone(),
            bind: Bindings::new(),
            next_var: alloc.len() as VarId,
            stats: SldStats::default(),
            truncated: false,
            trunc: None,
            meter,
            emitted: 0,
            per_rule: Vec::new(),
        };
        let mut answers = Vec::new();
        let mut span = self.opts.obs.tracer.span_with(
            "folog.sld.solve",
            vec![("goals", (goals.len() + neg_goals.len()).into())],
        );
        // SLD recursion is depth-limited but can legitimately run
        // thousands of frames deep; use a dedicated big-stack thread so
        // callers (including 2 MiB test threads) never overflow.
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("folog-sld-search".into())
                .stack_size(256 * 1024 * 1024)
                .spawn_scoped(scope, || {
                    search.solve(&rgoals, 0, &mut |bind| {
                        let mut answer = BTreeMap::new();
                        for &(name, v) in &query_vars {
                            answer.insert(name, fo_of_rterm(&bind.resolve(&RTerm::Var(v))));
                        }
                        answers.push(answer);
                    })
                })
                .expect("spawn search thread")
                .join()
                .expect("search thread panicked")
        })?;
        let hit_solution_cap = self.opts.max_solutions.is_some_and(|m| answers.len() >= m);
        let complete = !search.truncated && !hit_solution_cap;
        answers.sort();
        answers.dedup();
        let degradation = if complete {
            None
        } else {
            // Budget trips (deadline/cancel) outrank engine-local bounds,
            // which outrank the requested solution cap.
            let trip = search
                .meter
                .tripped()
                .or(search.trunc)
                .unwrap_or(TripKind::Solutions);
            Some(search.meter.degradation_for(
                trip,
                "sld",
                search.stats.steps,
                format!(
                    "{trip} after {} steps, {} answers, depth {}",
                    search.stats.steps,
                    answers.len(),
                    search.stats.max_depth_reached
                ),
            ))
        };
        span.record("steps", search.stats.steps);
        span.record("answers", answers.len());
        span.record("complete", u64::from(complete));
        drop(span);
        let m = &self.opts.obs.metrics;
        m.counter("folog.sld.queries").inc();
        m.counter("folog.sld.steps").add(search.stats.steps);
        m.counter("folog.sld.unify_attempts")
            .add(search.stats.unify_attempts);
        m.counter("folog.sld.unify_successes")
            .add(search.stats.unify_successes);
        m.histogram("folog.sld.depth")
            .observe(search.stats.max_depth_reached as u64);
        Ok(SldResult {
            answers,
            stats: search.stats,
            complete,
            degradation,
            per_rule: search.per_rule,
        })
    }
}

impl<P: ClauseView> Search<'_, P> {
    /// Record an engine-local cutoff: the search space was truncated.
    fn cut(&mut self, kind: TripKind) {
        self.truncated = true;
        if self.trunc.is_none() {
            self.trunc = Some(kind);
        }
    }

    /// Returns `Ok(true)` to continue searching, `Ok(false)` to stop
    /// (solution cap reached).
    fn solve(
        &mut self,
        goals: &[SldGoal],
        depth: usize,
        emit: &mut impl FnMut(&Bindings),
    ) -> Result<bool, BuiltinError> {
        self.stats.max_depth_reached = self.stats.max_depth_reached.max(depth);
        let Some((next, rest)) = goals.split_first() else {
            emit(&self.bind);
            self.emitted += 1;
            if self.opts.max_solutions.is_some_and(|m| self.emitted >= m) {
                return Ok(false);
            }
            return Ok(true);
        };
        if self.opts.max_depth.is_some_and(|m| depth > m) {
            self.cut(TripKind::Depth);
            return Ok(true);
        }
        if self.opts.max_steps.is_some_and(|m| self.stats.steps > m) {
            self.cut(TripKind::Steps);
            return Ok(true);
        }
        if self.meter.tripped().is_some() {
            self.truncated = true;
            return Ok(true);
        }
        let goal = match next {
            SldGoal::Neg(inner) => {
                // Negation as failure: the selected goal must be ground
                // under the current bindings (floundering otherwise), and
                // succeeds iff the positive goal has no proof.
                let resolved = RAtom {
                    pred: inner.pred,
                    args: inner.args.iter().map(|a| self.bind.resolve(a)).collect(),
                };
                if resolved.args.iter().any(|a| !a.is_ground()) {
                    return Err(BuiltinError::Floundered(resolved.to_string()));
                }
                let provable = self.provable(&resolved, depth)?;
                return if provable {
                    Ok(true)
                } else {
                    self.solve(rest, depth, emit)
                };
            }
            SldGoal::Pos(g) => g,
        };
        if self.program.is_builtin(goal.pred) {
            let cp = self.bind.checkpoint();
            let ok = crate::builtins::solve(goal, &mut self.bind, self.opts.unify)?;
            let cont = if ok {
                self.solve(rest, depth, emit)?
            } else {
                true
            };
            self.bind.rollback(cp);
            return Ok(cont);
        }
        // Resolve against program clauses, selecting through every
        // argument position bound (after walking) to a non-variable —
        // the most selective one wins inside `candidates_bound`.
        let keys: Vec<(u32, ArgKey)> = goal
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| arg_key(self.bind.walk(a)).map(|k| (i as u32, k)))
            .collect();
        let candidates = self
            .program
            .candidates_bound(goal.pred, goal.args.len(), &keys);
        for ci in candidates {
            self.stats.steps += 1;
            if self.opts.max_steps.is_some_and(|m| self.stats.steps > m) {
                self.cut(TripKind::Steps);
                return Ok(true);
            }
            if !self.meter.tick() {
                self.truncated = true;
                return Ok(true);
            }
            let rule = self.program.rule(ci);
            let offset = self.next_var;
            let head = shift_atom(&rule.head, offset);
            let cp = self.bind.checkpoint();
            self.stats.unify_attempts += 1;
            if unify_atoms(goal, &head, &mut self.bind, self.opts.unify) {
                self.stats.unify_successes += 1;
                if self.per_rule.len() <= ci {
                    self.per_rule.resize(ci + 1, 0);
                }
                self.per_rule[ci] += 1;
                let saved_next = self.next_var;
                self.next_var += rule.n_vars;
                let mut new_goals: Vec<SldGoal> =
                    Vec::with_capacity(rule.body.len() + rule.neg_body.len() + rest.len());
                new_goals.extend(
                    rule.body
                        .iter()
                        .map(|b| SldGoal::Pos(shift_atom(b, offset))),
                );
                new_goals.extend(
                    rule.neg_body
                        .iter()
                        .map(|n| SldGoal::Neg(shift_atom(n, offset))),
                );
                new_goals.extend_from_slice(rest);
                let cont = self.solve(&new_goals, depth + 1, emit)?;
                self.next_var = saved_next.max(self.next_var);
                if !cont {
                    self.bind.rollback(cp);
                    return Ok(false);
                }
            }
            self.bind.rollback(cp);
        }
        Ok(true)
    }

    /// Existence sub-proof for NAF: succeeds iff `goal` has at least one
    /// solution. Bindings are restored afterwards; resource limits and
    /// step counters are shared with the outer search.
    fn provable(&mut self, goal: &RAtom, depth: usize) -> Result<bool, BuiltinError> {
        let saved_emitted = self.emitted;
        let saved_max = self.opts.max_solutions;
        self.emitted = 0;
        self.opts.max_solutions = Some(1);
        let cp = self.bind.checkpoint();
        self.solve(&[SldGoal::Pos(goal.clone())], depth + 1, &mut |_| {})?;
        let found = self.emitted > 0;
        self.bind.rollback(cp);
        self.emitted = saved_emitted;
        self.opts.max_solutions = saved_max;
        Ok(found)
    }
}

/// Converts a resolved runtime term back to a first-order term; residual
/// variables are rendered as `_Gn` named variables.
pub fn fo_of_rterm(t: &RTerm) -> FoTerm {
    match t {
        RTerm::Var(v) => FoTerm::Var(Symbol::new(&format!("_G{v}"))),
        RTerm::Const(c) => FoTerm::Const(*c),
        RTerm::App(f, args) => FoTerm::App(*f, args.iter().map(fo_of_rterm).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::builtin_symbols;
    use clogic_core::fol::{FoClause, FoProgram};
    use clogic_core::symbol::sym;

    fn atom(p: &str, args: Vec<FoTerm>) -> FoAtom {
        FoAtom::new(p, args)
    }
    fn c(s: &str) -> FoTerm {
        FoTerm::constant(s)
    }
    fn v(s: &str) -> FoTerm {
        FoTerm::var(s)
    }

    fn family() -> CompiledProgram {
        let mut p = FoProgram::new();
        for (a, b) in [
            ("tom", "bob"),
            ("tom", "liz"),
            ("bob", "ann"),
            ("bob", "pat"),
        ] {
            p.push(FoClause::fact(atom("parent", vec![c(a), c(b)])));
        }
        p.push(FoClause::rule(
            atom("grandparent", vec![v("X"), v("Z")]),
            vec![
                atom("parent", vec![v("X"), v("Y")]),
                atom("parent", vec![v("Y"), v("Z")]),
            ],
        ));
        CompiledProgram::compile(&p, builtin_symbols())
    }

    #[test]
    fn ground_query_succeeds() {
        let cp = family();
        let e = SldEngine::new(&cp, SldOptions::default());
        let r = e
            .solve(&[atom("parent", vec![c("tom"), c("bob")])])
            .unwrap();
        assert_eq!(r.answers.len(), 1);
        assert!(r.complete);
        let r2 = e
            .solve(&[atom("parent", vec![c("bob"), c("tom")])])
            .unwrap();
        assert!(r2.answers.is_empty());
        assert!(r2.complete);
    }

    #[test]
    fn open_query_enumerates_answers() {
        let cp = family();
        let e = SldEngine::new(&cp, SldOptions::default());
        let r = e
            .solve(&[atom("grandparent", vec![c("tom"), v("Z")])])
            .unwrap();
        let zs: Vec<String> = r.answers.iter().map(|a| a[&sym("Z")].to_string()).collect();
        assert_eq!(zs, vec!["ann", "pat"]);
    }

    #[test]
    fn conjunctive_query_joins() {
        let cp = family();
        let e = SldEngine::new(&cp, SldOptions::default());
        let r = e
            .solve(&[
                atom("parent", vec![v("X"), v("Y")]),
                atom("parent", vec![v("Y"), v("Z")]),
            ])
            .unwrap();
        assert_eq!(r.answers.len(), 2); // tom-bob-ann, tom-bob-pat
    }

    #[test]
    fn recursion_terminates_on_acyclic_data() {
        let mut p = FoProgram::new();
        for i in 0..5 {
            p.push(FoClause::fact(atom(
                "edge",
                vec![c(&format!("n{i}")), c(&format!("n{}", i + 1))],
            )));
        }
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let e = SldEngine::new(&cp, SldOptions::default());
        let r = e.solve(&[atom("path", vec![c("n0"), v("Y")])]).unwrap();
        assert_eq!(r.answers.len(), 5);
        assert!(r.complete);
    }

    #[test]
    fn cyclic_data_hits_limits_incomplete() {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("edge", vec![c("a"), c("b")])));
        p.push(FoClause::fact(atom("edge", vec![c("b"), c("a")])));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let e = SldEngine::new(
            &cp,
            SldOptions {
                max_depth: Some(50),
                max_steps: Some(10_000),
                ..Default::default()
            },
        );
        let r = e.solve(&[atom("path", vec![c("a"), v("Y")])]).unwrap();
        // It finds answers but cannot exhaust the infinite SLD tree.
        assert!(!r.answers.is_empty());
        assert!(!r.complete);
        let d = r.degradation.expect("incomplete result carries a report");
        assert!(matches!(d.trip, TripKind::Depth | TripKind::Steps));
        assert_eq!(d.strategy, "sld");
        assert!(d.work > 0);
    }

    #[test]
    fn budget_deadline_cuts_cyclic_search() {
        use std::time::Duration;
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("edge", vec![c("a"), c("b")])));
        p.push(FoClause::fact(atom("edge", vec![c("b"), c("a")])));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let e = SldEngine::new(
            &cp,
            SldOptions {
                max_depth: None,
                max_steps: None,
                budget: crate::budget::Budget::with_deadline(Duration::from_millis(20)),
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        let r = e.solve(&[atom("path", vec![c("a"), v("Y")])]).unwrap();
        assert!(start.elapsed() < Duration::from_secs(1), "deadline ignored");
        assert!(!r.complete);
        assert_eq!(r.degradation.unwrap().trip, TripKind::Deadline);
        assert!(!r.answers.is_empty()); // partial answers retained
    }

    #[test]
    fn builtins_in_queries_and_rules() {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("n", vec![FoTerm::int(3)])));
        p.push(FoClause::rule(
            atom("double", vec![v("X"), v("Y")]),
            vec![
                atom("n", vec![v("X")]),
                atom(
                    "is",
                    vec![v("Y"), FoTerm::App(sym("*"), vec![v("X"), FoTerm::int(2)])],
                ),
            ],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let e = SldEngine::new(&cp, SldOptions::default());
        let r = e.solve(&[atom("double", vec![v("A"), v("B")])]).unwrap();
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0][&sym("B")], FoTerm::int(6));
    }

    #[test]
    fn builtin_error_propagates() {
        let cp = family();
        let e = SldEngine::new(&cp, SldOptions::default());
        let err = e.solve(&[atom("is", vec![v("X"), v("Y")])]).unwrap_err();
        assert!(matches!(err, BuiltinError::NotEvaluable(_)));
    }

    #[test]
    fn max_solutions_caps_and_reports_incomplete() {
        let cp = family();
        let e = SldEngine::new(
            &cp,
            SldOptions {
                max_solutions: Some(2),
                ..Default::default()
            },
        );
        let r = e.solve(&[atom("parent", vec![v("X"), v("Y")])]).unwrap();
        assert_eq!(r.answers.len(), 2);
        assert!(!r.complete);
        assert_eq!(r.degradation.unwrap().trip, TripKind::Solutions);
    }

    #[test]
    fn non_ground_answers_render_residual_vars() {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("any", vec![v("X")])));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let e = SldEngine::new(&cp, SldOptions::default());
        let r = e.solve(&[atom("any", vec![v("Q")])]).unwrap();
        assert_eq!(r.answers.len(), 1);
        let t = r.answers[0][&sym("Q")].to_string();
        assert!(t.starts_with("_G"), "{t}");
    }

    #[test]
    fn stats_counted() {
        let cp = family();
        let e = SldEngine::new(&cp, SldOptions::default());
        let r = e
            .solve(&[atom("grandparent", vec![v("X"), v("Z")])])
            .unwrap();
        assert!(r.stats.steps > 0);
        assert!(r.stats.unify_attempts >= r.stats.unify_successes);
        assert!(r.stats.max_depth_reached >= 2);
    }

    #[test]
    fn first_arg_indexing_reduces_steps() {
        // A ground first argument should touch fewer clauses than an
        // unbound one.
        let mut p = FoProgram::new();
        for i in 0..100 {
            p.push(FoClause::fact(atom("f", vec![c(&format!("k{i}")), c("v")])));
        }
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let e = SldEngine::new(&cp, SldOptions::default());
        let bound = e.solve(&[atom("f", vec![c("k7"), v("V")])]).unwrap();
        let open = e.solve(&[atom("f", vec![v("K"), v("V")])]).unwrap();
        assert!(bound.stats.steps < open.stats.steps);
        assert_eq!(bound.answers.len(), 1);
        assert_eq!(open.answers.len(), 100);
    }
}
