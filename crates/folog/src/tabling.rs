//! Tabled evaluation: goal-directed top-down resolution that terminates
//! where plain SLD loops.
//!
//! Recursive programs such as the paper's `path` rules make SLD diverge on
//! cyclic data. Tabling memoizes answers per *variant subgoal*: every
//! derivable predicate is tabled, each table's answers are produced by
//! one-clause-deep resolution in which tabled subgoals consume answers
//! from their own tables, and the whole table space is iterated to a
//! fixpoint (answers only grow, so this converges whenever the answer set
//! is finite — always, for datalog). This is the classic OLDT/DRA scheme
//! in its simplest correct form, chosen over suspended-consumer SLG for
//! clarity; the asymptotics match.

use crate::budget::{Budget, BudgetMeter, Degradation, TripKind};
use crate::builtins::BuiltinError;
use crate::program::{shift_atom, ClauseOverlay, ClauseView, CompiledProgram};
use crate::rterm::{RAtom, RTerm, VarId};
use crate::sld::fo_of_rterm;
use crate::unify::{unify_atoms, Bindings, UnifyOptions};
use clogic_core::fol::{FoAtom, FoTerm};
use clogic_core::symbol::Symbol;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Options for tabled evaluation.
///
/// Hitting `max_answers` or any [`budget`](Self::budget) ceiling degrades
/// gracefully: the answers derived so far are returned with
/// `complete: false` and a [`Degradation`] report.
#[derive(Clone, Debug)]
pub struct TablingOptions {
    /// Stop expanding once the total number of answers across all tables
    /// exceeds this, if set — the guard against programs with genuinely
    /// infinite answer sets (e.g. unbounded path lengths on a cycle).
    pub max_answers: Option<usize>,
    /// Unification options.
    pub unify: UnifyOptions,
    /// Shared resource ceilings (deadline, steps, memory, cancellation).
    pub budget: Budget,
    /// Observability handles; counter deltas are flushed once per solve,
    /// never from the production loop.
    pub obs: clogic_obs::Obs,
}

impl Default for TablingOptions {
    fn default() -> Self {
        TablingOptions {
            max_answers: Some(1_000_000),
            unify: UnifyOptions::default(),
            budget: Budget::unlimited(),
            obs: clogic_obs::Obs::default(),
        }
    }
}

/// Counters for a tabled run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TablingStats {
    /// Distinct variant subgoals tabled.
    pub tables_created: usize,
    /// Total answers across all tables.
    pub answers: usize,
    /// Fixpoint passes over the table space.
    pub passes: usize,
    /// Clause activations attempted.
    pub clause_activations: u64,
}

/// Tabled evaluation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TablingError {
    /// A built-in raised an error.
    Builtin(BuiltinError),
    /// The program uses negation, which the tabled engine does not
    /// support (use stratified bottom-up or SLD).
    NegationUnsupported,
}

impl std::fmt::Display for TablingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TablingError::Builtin(e) => write!(f, "builtin error: {e}"),
            TablingError::NegationUnsupported => {
                write!(f, "tabled evaluation does not support negation")
            }
        }
    }
}

impl std::error::Error for TablingError {}

impl From<BuiltinError> for TablingError {
    fn from(e: BuiltinError) -> TablingError {
        TablingError::Builtin(e)
    }
}

/// The result of a tabled run.
#[derive(Clone, Debug)]
pub struct TabledResult {
    /// Answers: query-variable name → term.
    pub answers: Vec<BTreeMap<Symbol, FoTerm>>,
    /// Counters.
    pub stats: TablingStats,
    /// True iff the table space reached its fixpoint within the limits.
    pub complete: bool,
    /// Why evaluation stopped early, when `complete` is false.
    pub degradation: Option<Degradation>,
    /// Table answers produced per clause, indexed by the clause's position
    /// in the compiled program. The synthetic `__query` wrapper rule is
    /// one past the program's last clause. (Lives on the result, not
    /// [`TablingStats`], which stays `Copy`.)
    pub per_rule: Vec<u64>,
}

/// Canonical (variant-normalized) form of a goal: variables renumbered in
/// first-occurrence order.
fn canonicalize(goal: &RAtom, bind: &Bindings) -> RAtom {
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    fn go(t: &RTerm, bind: &Bindings, map: &mut HashMap<VarId, VarId>) -> RTerm {
        let w = bind.walk(t).clone();
        match w {
            RTerm::Var(v) => {
                let n = map.len() as VarId;
                RTerm::Var(*map.entry(v).or_insert(n))
            }
            RTerm::Const(_) => w,
            RTerm::App(f, args) => RTerm::App(f, args.iter().map(|a| go(a, bind, map)).collect()),
        }
    }
    RAtom {
        pred: goal.pred,
        args: goal.args.iter().map(|a| go(a, bind, &mut map)).collect(),
    }
}

#[derive(Clone, Debug, Default)]
struct Table {
    /// Ground (or maximally instantiated) instances of the canonical goal.
    answers: Vec<RAtom>,
    seen: HashSet<RAtom>,
}

/// The tabled engine, over a compiled program or any [`ClauseView`].
pub struct TabledEngine<'p, P: ClauseView = CompiledProgram> {
    program: &'p P,
    opts: TablingOptions,
}

struct TableSpace {
    tables: HashMap<RAtom, Table>,
    /// Keys in creation order, so fixpoint passes are deterministic.
    order: Vec<RAtom>,
    /// consumer table → producer tables whose answers it consumed.
    deps: HashMap<RAtom, HashSet<RAtom>>,
    /// Tables that gained answers during the current pass.
    gained: HashSet<RAtom>,
    stats: TablingStats,
    opts: TablingOptions,
    meter: BudgetMeter,
    per_rule: Vec<u64>,
}

impl TableSpace {
    fn ensure(&mut self, key: RAtom) -> bool {
        if self.tables.contains_key(&key) {
            return false;
        }
        self.tables.insert(key.clone(), Table::default());
        self.order.push(key);
        self.stats.tables_created += 1;
        true
    }

    fn add_answer(&mut self, key: &RAtom, answer: RAtom) -> bool {
        let table = self.tables.get_mut(key).expect("table exists");
        if table.seen.contains(&answer) {
            return false;
        }
        table.seen.insert(answer.clone());
        table.answers.push(answer);
        self.gained.insert(key.clone());
        self.stats.answers += 1;
        // The answer that crossed the ceiling is kept; production stops
        // at the next check point.
        let effective_max = match (self.opts.max_answers, self.meter.budget().max_facts) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
        if effective_max.is_some_and(|m| self.stats.answers > m) {
            self.meter.trip(TripKind::Answers);
        }
        true
    }
}

impl<'p, P: ClauseView> TabledEngine<'p, P> {
    /// Creates an engine.
    pub fn new(program: &'p P, opts: TablingOptions) -> TabledEngine<'p, P> {
        TabledEngine { program, opts }
    }

    /// Whether any rule using negation is reachable from the query goals
    /// through the predicate-dependency graph.
    fn negation_reachable(&self, goals: &[FoAtom]) -> bool {
        use std::collections::VecDeque;
        let mut seen: HashSet<(Symbol, usize)> = HashSet::new();
        let mut queue: VecDeque<(Symbol, usize)> = VecDeque::new();
        for g in goals {
            if seen.insert((g.pred, g.arity())) {
                queue.push_back((g.pred, g.arity()));
            }
        }
        while let Some((pred, arity)) = queue.pop_front() {
            for ri in self.program.rules_for(pred, arity) {
                let rule = self.program.rule(ri);
                if rule.has_negation() {
                    return true;
                }
                for b in &rule.body {
                    let key = (b.pred, b.args.len());
                    if !self.program.is_builtin(b.pred) && seen.insert(key) {
                        queue.push_back(key);
                    }
                }
            }
        }
        false
    }

    /// Solves a conjunctive query. Internally wraps the query in a
    /// synthetic `__query(V1,…,Vk)` rule, tables it alongside the
    /// program's own predicates, and reads the answers off its table.
    pub fn solve(&self, goals: &[FoAtom]) -> Result<TabledResult, TablingError> {
        // Negation is unsupported — but only rules *reachable* from the
        // query matter; an unrelated negated rule elsewhere in the
        // program is fine.
        if self.negation_reachable(goals) {
            return Err(TablingError::NegationUnsupported);
        }
        // Collect query variables in sorted order.
        let mut var_set = std::collections::BTreeSet::new();
        for g in goals {
            g.collect_vars(&mut var_set);
        }
        let vars: Vec<Symbol> = var_set.into_iter().collect();
        let query_pred = Symbol::new("__query");
        // The synthetic `__query` wrapper lives in a private overlay tail
        // (index one past the program's last clause, as before) — the
        // shared program itself is never cloned or mutated.
        let mut program = ClauseOverlay::new(self.program);
        let head = FoAtom::new(query_pred, vars.iter().map(|&v| FoTerm::Var(v)).collect());
        program.push_clause(&clogic_core::fol::FoClause::rule(head, goals.to_vec()));

        let mut space = TableSpace {
            tables: HashMap::new(),
            order: Vec::new(),
            deps: HashMap::new(),
            gained: HashSet::new(),
            stats: TablingStats::default(),
            opts: self.opts.clone(),
            meter: BudgetMeter::new(&self.opts.budget),
            per_rule: Vec::new(),
        };
        let mut span = self
            .opts
            .obs
            .tracer
            .span_with("folog.tabling.solve", vec![("goals", goals.len().into())]);
        let root = RAtom {
            pred: query_pred,
            args: (0..vars.len()).map(|i| RTerm::Var(i as VarId)).collect(),
        };
        space.ensure(root.clone());

        // Iterate the table space to fixpoint, recomputing in each pass
        // only the tables whose consumed producers gained answers in the
        // previous pass (plus tables never produced yet).
        let mut dirty: HashSet<RAtom> = [root.clone()].into_iter().collect();
        loop {
            // Pass boundary: prompt deadline/cancel check plus an
            // approximate memory check (answer atoms dominate).
            if !space.meter.check_time_and_cancel()
                || !space.meter.check_memory(space.stats.answers * 96)
                || space.meter.tripped().is_some()
            {
                break;
            }
            space.stats.passes += 1;
            space.gained.clear();
            let before_tables = space.order.len();
            let mut i = 0;
            while i < space.order.len() {
                let key = space.order[i].clone();
                let is_new = i >= before_tables;
                if is_new || dirty.contains(&key) {
                    self.produce(&program, &key, &mut space)?;
                }
                if space.meter.tripped().is_some() {
                    break;
                }
                i += 1;
            }
            // Next pass: consumers of tables that gained answers.
            dirty = space
                .order
                .iter()
                .filter(|t| {
                    space
                        .deps
                        .get(*t)
                        .is_some_and(|ds| ds.iter().any(|d| space.gained.contains(d)))
                })
                .cloned()
                .collect();
            if dirty.is_empty() && space.gained.is_empty() {
                break;
            }
        }

        let table = &space.tables[&root];
        let mut answers: Vec<BTreeMap<Symbol, FoTerm>> = table
            .answers
            .iter()
            .map(|a| {
                vars.iter()
                    .zip(&a.args)
                    .map(|(&v, t)| (v, fo_of_rterm(t)))
                    .collect()
            })
            .collect();
        answers.sort();
        answers.dedup();
        let complete = space.meter.tripped().is_none();
        let degradation = space.meter.tripped().map(|trip| {
            space.meter.degradation_for(
                trip,
                "tabled",
                space.stats.answers as u64,
                format!(
                    "{trip} after {} passes, {} tables, {} answers",
                    space.stats.passes, space.stats.tables_created, space.stats.answers
                ),
            )
        });
        span.record("tables", space.stats.tables_created);
        span.record("passes", space.stats.passes);
        span.record("answers", space.stats.answers);
        span.record("complete", u64::from(complete));
        drop(span);
        let m = &self.opts.obs.metrics;
        m.counter("folog.tabling.queries").inc();
        m.counter("folog.tabling.tables_created")
            .add(space.stats.tables_created as u64);
        m.counter("folog.tabling.answers")
            .add(space.stats.answers as u64);
        m.counter("folog.tabling.clause_activations")
            .add(space.stats.clause_activations);
        m.histogram("folog.tabling.passes")
            .observe(space.stats.passes as u64);
        Ok(TabledResult {
            answers,
            stats: space.stats,
            complete,
            degradation,
            per_rule: space.per_rule,
        })
    }

    /// One production pass for a table: resolve the canonical goal against
    /// every matching clause, consuming subgoal answers from tables.
    /// Returns whether any new answer (or table) appeared.
    fn produce<Q: ClauseView>(
        &self,
        program: &Q,
        key: &RAtom,
        space: &mut TableSpace,
    ) -> Result<bool, TablingError> {
        let mut changed = false;
        // Variables of the canonical goal occupy 0..n; clause activations
        // start above them.
        let mut max_var: VarId = 0;
        let mut vs = Vec::new();
        for a in &key.args {
            a.collect_vars(&mut vs);
        }
        for v in vs {
            max_var = max_var.max(v + 1);
        }
        // Canonical goals are already resolved, so argument keys read
        // straight off the args; every bound position is offered and
        // `candidates_bound` selects through the most selective one.
        let keys: Vec<(u32, crate::program::ArgKey)> = key
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| crate::program::arg_key(a).map(|k| (i as u32, k)))
            .collect();
        let candidates = program.candidates_bound(key.pred, key.args.len(), &keys);
        for ci in candidates {
            if !space.meter.tick() {
                return Ok(changed);
            }
            let rule = program.rule(ci);
            space.stats.clause_activations += 1;
            let mut bind = Bindings::new();
            let head = shift_atom(&rule.head, max_var);
            if !unify_atoms(key, &head, &mut bind, self.opts.unify) {
                continue;
            }
            let body: Vec<RAtom> = rule.body.iter().map(|b| shift_atom(b, max_var)).collect();
            let mut next_var = max_var + rule.n_vars;
            changed |=
                self.solve_body(program, key, ci, &body, 0, &mut bind, &mut next_var, space)?;
        }
        Ok(changed)
    }

    #[allow(clippy::too_many_arguments)]
    fn solve_body<Q: ClauseView>(
        &self,
        program: &Q,
        key: &RAtom,
        ci: usize,
        body: &[RAtom],
        i: usize,
        bind: &mut Bindings,
        next_var: &mut VarId,
        space: &mut TableSpace,
    ) -> Result<bool, TablingError> {
        if i == body.len() {
            // Instantiate the goal as an answer.
            let answer = RAtom {
                pred: key.pred,
                args: key.args.iter().map(|a| bind.resolve(a)).collect(),
            };
            let added = space.add_answer(key, answer);
            if added {
                if space.per_rule.len() <= ci {
                    space.per_rule.resize(ci + 1, 0);
                }
                space.per_rule[ci] += 1;
            }
            return Ok(added);
        }
        let goal = &body[i];
        if program.is_builtin(goal.pred) {
            let cp = bind.checkpoint();
            let ok = crate::builtins::solve(goal, bind, self.opts.unify)?;
            let mut changed = false;
            if ok {
                changed = self.solve_body(program, key, ci, body, i + 1, bind, next_var, space)?;
            }
            bind.rollback(cp);
            return Ok(changed);
        }
        // Tabled subgoal: consult (and create) its table.
        let sub_key = canonicalize(goal, bind);
        space
            .deps
            .entry(key.clone())
            .or_default()
            .insert(sub_key.clone());
        let mut changed = space.ensure(sub_key.clone());
        // Consume a snapshot of current answers.
        let answers: Vec<RAtom> = space.tables[&sub_key].answers.clone();
        for ans in answers {
            if !space.meter.tick() {
                return Ok(changed);
            }
            let cp = bind.checkpoint();
            // Answers are canonical-variable instances: shift their
            // variables out of the way before unifying.
            let shifted = shift_atom(&ans, *next_var);
            let mut local_next = *next_var;
            let mut bump = Vec::new();
            for a in &shifted.args {
                a.collect_vars(&mut bump);
            }
            for v in &bump {
                local_next = local_next.max(v + 1);
            }
            if unify_atoms(goal, &shifted, bind, self.opts.unify) {
                let saved = *next_var;
                *next_var = local_next;
                changed |=
                    self.solve_body(program, key, ci, body, i + 1, bind, next_var, space)?;
                *next_var = (*next_var).max(saved);
            }
            bind.rollback(cp);
        }
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::builtin_symbols;
    use clogic_core::fol::{FoClause, FoProgram};
    use clogic_core::symbol::sym;

    fn atom(p: &str, args: Vec<FoTerm>) -> FoAtom {
        FoAtom::new(p, args)
    }
    fn c(s: &str) -> FoTerm {
        FoTerm::constant(s)
    }
    fn v(s: &str) -> FoTerm {
        FoTerm::var(s)
    }

    fn path_program(edges: &[(&str, &str)]) -> CompiledProgram {
        let mut p = FoProgram::new();
        for &(a, b) in edges {
            p.push(FoClause::fact(atom("edge", vec![c(a), c(b)])));
        }
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        CompiledProgram::compile(&p, builtin_symbols())
    }

    #[test]
    fn terminates_on_cyclic_graph() {
        // SLD diverges here; tabling must terminate with the full answer set.
        let cp = path_program(&[("a", "b"), ("b", "a"), ("b", "c")]);
        let e = TabledEngine::new(&cp, TablingOptions::default());
        let r = e.solve(&[atom("path", vec![c("a"), v("Y")])]).unwrap();
        let ys: Vec<String> = r.answers.iter().map(|a| a[&sym("Y")].to_string()).collect();
        assert_eq!(ys, vec!["a", "b", "c"]);
    }

    #[test]
    fn matches_bottom_up_on_chain() {
        let edges: Vec<(String, String)> = (0..6)
            .map(|i| (format!("n{i}"), format!("n{}", i + 1)))
            .collect();
        let edge_refs: Vec<(&str, &str)> = edges
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let cp = path_program(&edge_refs);
        let e = TabledEngine::new(&cp, TablingOptions::default());
        let r = e.solve(&[atom("path", vec![v("X"), v("Y")])]).unwrap();
        assert_eq!(r.answers.len(), 7 * 6 / 2); // all i<j pairs
    }

    #[test]
    fn ground_query() {
        let cp = path_program(&[("a", "b"), ("b", "c")]);
        let e = TabledEngine::new(&cp, TablingOptions::default());
        let yes = e.solve(&[atom("path", vec![c("a"), c("c")])]).unwrap();
        assert_eq!(yes.answers.len(), 1);
        let no = e.solve(&[atom("path", vec![c("c"), c("a")])]).unwrap();
        assert!(no.answers.is_empty());
    }

    #[test]
    fn conjunctive_query() {
        let cp = path_program(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let e = TabledEngine::new(&cp, TablingOptions::default());
        let r = e
            .solve(&[
                atom("path", vec![v("X"), c("c")]),
                atom("path", vec![c("c"), v("Z")]),
            ])
            .unwrap();
        // X ∈ {a, b}, Z ∈ {d}
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn goal_directedness_tables_fewer_than_whole_model() {
        // Querying from one node should not table goals for unreachable
        // components.
        let cp = path_program(&[("a", "b"), ("x", "y"), ("y", "z")]);
        let e = TabledEngine::new(&cp, TablingOptions::default());
        let r = e.solve(&[atom("path", vec![c("a"), v("Y")])]).unwrap();
        assert_eq!(r.answers.len(), 1);
        // tables: __query, path(a,V), edge(a,V), path(b,V), edge(b,V) — none for x/y/z.
        assert!(r.stats.tables_created <= 6, "{}", r.stats.tables_created);
    }

    #[test]
    fn builtins_inside_tabled_rules() {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("edge", vec![c("a"), c("b")])));
        p.push(FoClause::fact(atom("edge", vec![c("b"), c("c")])));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Y"), FoTerm::int(1)]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Z"), v("N")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("dist", vec![v("Y"), v("Z"), v("M")]),
                atom(
                    "is",
                    vec![v("N"), FoTerm::App(sym("+"), vec![v("M"), FoTerm::int(1)])],
                ),
            ],
        ));
        let cp = CompiledProgram::compile(&p, builtin_symbols());
        let e = TabledEngine::new(&cp, TablingOptions::default());
        let r = e
            .solve(&[atom("dist", vec![c("a"), c("c"), v("N")])])
            .unwrap();
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0][&sym("N")], FoTerm::int(2));
    }

    fn infinite_dist_program() -> CompiledProgram {
        // Unbounded lengths on a cycle: infinitely many dist answers.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("edge", vec![c("a"), c("b")])));
        p.push(FoClause::fact(atom("edge", vec![c("b"), c("a")])));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Y"), FoTerm::int(1)]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Z"), v("N")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("dist", vec![v("Y"), v("Z"), v("M")]),
                atom(
                    "is",
                    vec![v("N"), FoTerm::App(sym("+"), vec![v("M"), FoTerm::int(1)])],
                ),
            ],
        ));
        CompiledProgram::compile(&p, builtin_symbols())
    }

    #[test]
    fn answer_limit_degrades_gracefully() {
        let cp = infinite_dist_program();
        let e = TabledEngine::new(
            &cp,
            TablingOptions {
                max_answers: Some(100),
                ..Default::default()
            },
        );
        let r = e
            .solve(&[atom("dist", vec![c("a"), v("Y"), v("N")])])
            .unwrap();
        assert!(!r.complete);
        assert!(!r.answers.is_empty());
        let d = r.degradation.expect("degradation report");
        assert_eq!(d.trip, TripKind::Answers);
        assert_eq!(d.strategy, "tabled");
        assert!(d.work > 0);
    }

    #[test]
    fn budget_deadline_degrades_gracefully() {
        let cp = infinite_dist_program();
        let e = TabledEngine::new(
            &cp,
            TablingOptions {
                max_answers: None,
                budget: Budget::with_deadline(std::time::Duration::from_millis(20)),
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        let r = e
            .solve(&[atom("dist", vec![c("a"), v("Y"), v("N")])])
            .unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        assert!(!r.complete);
        let d = r.degradation.expect("degradation report");
        assert_eq!(d.trip, TripKind::Deadline);
        assert_eq!(d.strategy, "tabled");
    }

    #[test]
    fn variant_canonicalization() {
        let bind = Bindings::new();
        let g1 = RAtom {
            pred: sym("p"),
            args: vec![RTerm::Var(7), RTerm::Var(7), RTerm::Var(9)],
        };
        let g2 = RAtom {
            pred: sym("p"),
            args: vec![RTerm::Var(1), RTerm::Var(1), RTerm::Var(0)],
        };
        assert_eq!(canonicalize(&g1, &bind), canonicalize(&g2, &bind));
        let g3 = RAtom {
            pred: sym("p"),
            args: vec![RTerm::Var(1), RTerm::Var(2), RTerm::Var(1)],
        };
        assert_ne!(canonicalize(&g1, &bind), canonicalize(&g3, &bind));
    }

    #[test]
    fn stats_populated() {
        let cp = path_program(&[("a", "b"), ("b", "c")]);
        let e = TabledEngine::new(&cp, TablingOptions::default());
        let r = e.solve(&[atom("path", vec![c("a"), v("Y")])]).unwrap();
        assert!(r.stats.tables_created >= 2);
        assert!(r.stats.passes >= 2);
        assert!(r.stats.clause_activations > 0);
        assert_eq!(r.answers.len(), 2);
    }
}
