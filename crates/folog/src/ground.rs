//! Hash-consed ground terms and the fact store's tuple representation.
//!
//! Term graphs with identity are awkward to share under ownership, so the
//! engine interns every ground term into a [`TermStore`] arena: a
//! [`TermId`] is a 4-byte handle, structural equality is integer equality,
//! and the store is the single owner of all term structure. Derived facts
//! — of which bottom-up evaluation produces many — are then just small
//! vectors of ids.

use clogic_core::fol::FoTerm;
use clogic_core::symbol::Symbol;
use clogic_core::term::Const;
use std::collections::HashMap;
use std::fmt;

/// Handle to a hash-consed ground term inside a [`TermStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// The stored shape of a ground term.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum GroundTerm {
    /// A constant.
    Const(Const),
    /// `f(t1,…,tn)` with interned argument handles.
    App(Symbol, Vec<TermId>),
}

/// An arena of hash-consed ground terms.
///
/// Interning the same term twice yields the same [`TermId`]; ids are dense
/// and stable for the store's lifetime.
#[derive(Clone, Debug, Default)]
pub struct TermStore {
    terms: Vec<GroundTerm>,
    map: HashMap<GroundTerm, TermId>,
}

impl TermStore {
    /// An empty store.
    pub fn new() -> TermStore {
        TermStore::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a ground term shape.
    pub fn intern(&mut self, t: GroundTerm) -> TermId {
        if let Some(&id) = self.map.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.map.insert(t, id);
        id
    }

    /// Interns a constant.
    pub fn intern_const(&mut self, c: Const) -> TermId {
        self.intern(GroundTerm::Const(c))
    }

    /// Interns `f(args…)`.
    pub fn intern_app(&mut self, f: Symbol, args: Vec<TermId>) -> TermId {
        self.intern(GroundTerm::App(f, args))
    }

    /// Interns a ground [`FoTerm`]; returns `None` if it contains a
    /// variable.
    pub fn intern_fo(&mut self, t: &FoTerm) -> Option<TermId> {
        match t {
            FoTerm::Var(_) => None,
            FoTerm::Const(c) => Some(self.intern_const(*c)),
            FoTerm::App(f, args) => {
                let mut ids = Vec::with_capacity(args.len());
                for a in args {
                    ids.push(self.intern_fo(a)?);
                }
                Some(self.intern_app(*f, ids))
            }
        }
    }

    /// Looks up the shape of an interned term.
    pub fn get(&self, id: TermId) -> &GroundTerm {
        &self.terms[id.0 as usize]
    }

    /// The id of a shape, if it has been interned (read-only probe).
    pub fn lookup(&self, t: &GroundTerm) -> Option<TermId> {
        self.map.get(t).copied()
    }

    /// Reconstructs the [`FoTerm`] for an id (for display and for handing
    /// answers back to callers).
    pub fn to_fo(&self, id: TermId) -> FoTerm {
        match self.get(id) {
            GroundTerm::Const(c) => FoTerm::Const(*c),
            GroundTerm::App(f, args) => {
                FoTerm::App(*f, args.iter().map(|&a| self.to_fo(a)).collect())
            }
        }
    }

    /// Renders an interned term.
    pub fn display(&self, id: TermId) -> String {
        self.to_fo(id).to_string()
    }

    /// The integer value of an interned term, if it is an integer
    /// constant — used by the arithmetic built-ins.
    pub fn as_int(&self, id: TermId) -> Option<i64> {
        match self.get(id) {
            GroundTerm::Const(Const::Int(i)) => Some(*i),
            _ => None,
        }
    }
}

/// A derived ground fact: predicate symbol plus interned argument tuple.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundAtom {
    /// The predicate symbol.
    pub pred: Symbol,
    /// The argument tuple.
    pub args: Vec<TermId>,
}

impl GroundAtom {
    /// Builds a ground atom.
    pub fn new(pred: Symbol, args: Vec<TermId>) -> GroundAtom {
        GroundAtom { pred, args }
    }

    /// Renders via a store.
    pub fn display(&self, store: &TermStore) -> String {
        let args: Vec<String> = self.args.iter().map(|&a| store.display(a)).collect();
        format!("{}({})", self.pred, args.join(", "))
    }

    /// Converts back to a first-order atom.
    pub fn to_fo(&self, store: &TermStore) -> clogic_core::fol::FoAtom {
        clogic_core::fol::FoAtom::new(
            self.pred,
            self.args.iter().map(|&a| store.to_fo(a)).collect(),
        )
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;

    #[test]
    fn interning_is_idempotent() {
        let mut st = TermStore::new();
        let a1 = st.intern_const(Const::Sym(sym("a")));
        let a2 = st.intern_const(Const::Sym(sym("a")));
        assert_eq!(a1, a2);
        assert_eq!(st.len(), 1);
    }

    #[test]
    fn compound_terms_share_substructure() {
        let mut st = TermStore::new();
        let a = st.intern_const(Const::Sym(sym("a")));
        let f1 = st.intern_app(sym("f"), vec![a]);
        let f2 = st.intern_app(sym("f"), vec![a]);
        assert_eq!(f1, f2);
        let g = st.intern_app(sym("g"), vec![f1, f1]);
        assert_eq!(st.len(), 3);
        assert_eq!(st.display(g), "g(f(a), f(a))");
    }

    #[test]
    fn fo_roundtrip() {
        let mut st = TermStore::new();
        let t = FoTerm::App(sym("id"), vec![FoTerm::constant("x"), FoTerm::int(3)]);
        let id = st.intern_fo(&t).unwrap();
        assert_eq!(st.to_fo(id), t);
        // variables refuse to intern
        assert!(st.intern_fo(&FoTerm::var("X")).is_none());
        assert!(st
            .intern_fo(&FoTerm::App(sym("f"), vec![FoTerm::var("X")]))
            .is_none());
    }

    #[test]
    fn distinct_const_kinds_distinct_ids() {
        let mut st = TermStore::new();
        let i = st.intern_const(Const::Int(1));
        let s = st.intern_const(Const::Sym(sym("1")));
        assert_ne!(i, s);
        assert_eq!(st.as_int(i), Some(1));
        assert_eq!(st.as_int(s), None);
    }

    #[test]
    fn ground_atom_display() {
        let mut st = TermStore::new();
        let j = st.intern_const(Const::Sym(sym("john")));
        let b = st.intern_const(Const::Sym(sym("bob")));
        let atom = GroundAtom::new(sym("children"), vec![j, b]);
        assert_eq!(atom.display(&st), "children(john, bob)");
        assert_eq!(atom.to_fo(&st).to_string(), "children(john, bob)");
    }

    #[test]
    fn empty_store() {
        let st = TermStore::new();
        assert!(st.is_empty());
        assert_eq!(st.len(), 0);
    }
}
