//! # folog — a first-order definite-clause engine
//!
//! The deductive substrate for C-logic (Chen & Warren, PODS 1989): the
//! paper's Theorem 1 turns complex-object programs into first-order
//! definite clauses and appeals to "known query evaluation techniques,
//! including both bottom-up and top-down methods". This crate provides
//! those methods, built from scratch:
//!
//! * hash-consed ground terms ([`ground`]) and dense-variable runtime
//!   terms ([`rterm`]);
//! * unification with a trailed binding store ([`mod@unify`]);
//! * interned columnar fact storage with lazy argument-pattern indices
//!   ([`facts`]);
//! * compiled programs with per-position argument clause indexing
//!   ([`program`]);
//! * naive and semi-naive bottom-up fixpoints ([`bottom_up`]);
//! * depth-first SLD resolution with resource limits ([`sld`]);
//! * tabled evaluation that terminates on recursive programs over cyclic
//!   data ([`tabling`]);
//! * the magic-sets transformation for goal-directed bottom-up runs
//!   ([`magic`]);
//! * arithmetic and comparison built-ins ([`builtins`]);
//! * incremental retraction via a DRed delete-rederive pass
//!   ([`retract`]).

#![warn(missing_docs)]

pub mod bottom_up;
pub mod budget;
pub mod builtins;
pub mod facts;
pub mod ground;
pub mod magic;
pub mod program;
pub mod retract;
pub mod rterm;
pub mod sld;
pub mod tabling;
pub mod unify;

pub use bottom_up::{evaluate, evaluate_delta, Evaluation, FixpointOptions, FixpointStats, Strategy};
pub use budget::{Budget, BudgetMeter, CancelToken, Degradation, TripKind};
pub use facts::{FactStore, IndexKey, IndexMode, IndexStats};
pub use ground::{GroundAtom, GroundTerm, TermId, TermStore};
pub use program::{ClauseOverlay, ClauseView, CompiledProgram, Rule};
pub use retract::{retract_facts, RetractStats};
pub use rterm::{RAtom, RTerm};
pub use sld::{SldEngine, SldOptions, SldResult, SldStats};
pub use unify::{mgu, unify, Bindings, UnifyOptions};

/// The distinguished top-type symbol name (see `clogic_core::hierarchy`).
pub const OBJECT_TYPE_NAME: &str = clogic_core::hierarchy::OBJECT_TYPE;
