//! Runtime terms for resolution: variables are dense integers.
//!
//! Source-level terms name variables by [`Symbol`]; during resolution each
//! clause activation needs fresh variables, so the engine renames symbols
//! to dense `u32` indices ("standardizing apart" by allocating a fresh
//! block of indices per activation). Dense indices make the binding store
//! an array rather than a hash map.

use clogic_core::fol::{FoAtom, FoTerm};
use clogic_core::symbol::Symbol;
use clogic_core::term::Const;
use std::collections::HashMap;
use std::fmt;

/// A runtime variable: an index into the binding store.
pub type VarId = u32;

/// A runtime term.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RTerm {
    /// A variable.
    Var(VarId),
    /// A constant.
    Const(Const),
    /// `f(t1,…,tn)`, `n ≥ 1`.
    App(Symbol, Vec<RTerm>),
}

/// A term did not have the structural shape a caller required.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TermShapeError {
    /// What the caller expected, e.g. `"application"`.
    pub expected: &'static str,
    /// Display form of the term actually found.
    pub found: String,
}

impl fmt::Display for TermShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {}, found {}", self.expected, self.found)
    }
}

impl std::error::Error for TermShapeError {}

impl RTerm {
    /// Views this term as a function application `f(args…)`, or reports
    /// what it actually is — the non-panicking counterpart of matching on
    /// [`RTerm::App`] directly.
    pub fn try_app(&self) -> Result<(Symbol, &[RTerm]), TermShapeError> {
        match self {
            RTerm::App(f, args) => Ok((*f, args)),
            other => Err(TermShapeError {
                expected: "application",
                found: other.to_string(),
            }),
        }
    }

    /// True iff no variable occurs.
    pub fn is_ground(&self) -> bool {
        match self {
            RTerm::Var(_) => false,
            RTerm::Const(_) => true,
            RTerm::App(_, args) => args.iter().all(RTerm::is_ground),
        }
    }

    /// Structural size.
    pub fn size(&self) -> usize {
        match self {
            RTerm::Var(_) | RTerm::Const(_) => 1,
            RTerm::App(_, args) => 1 + args.iter().map(RTerm::size).sum::<usize>(),
        }
    }

    /// Collects variables into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            RTerm::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            RTerm::Const(_) => {}
            RTerm::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

impl fmt::Display for RTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RTerm::Var(v) => write!(f, "_G{v}"),
            RTerm::Const(c) => write!(f, "{c}"),
            RTerm::App(fun, args) => {
                write!(f, "{fun}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A runtime atom.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RAtom {
    /// The predicate symbol.
    pub pred: Symbol,
    /// The arguments.
    pub args: Vec<RTerm>,
}

impl fmt::Display for RAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Allocates runtime variable ids and remembers the source name of each,
/// so answers can be reported against the query's variable names.
#[derive(Clone, Debug, Default)]
pub struct VarAlloc {
    names: Vec<Option<Symbol>>,
}

impl VarAlloc {
    /// An empty allocator.
    pub fn new() -> VarAlloc {
        VarAlloc::default()
    }

    /// Allocates a fresh anonymous variable.
    pub fn fresh(&mut self) -> VarId {
        let id = self.names.len() as VarId;
        self.names.push(None);
        id
    }

    /// Allocates a fresh variable carrying a source name.
    pub fn fresh_named(&mut self, name: Symbol) -> VarId {
        let id = self.names.len() as VarId;
        self.names.push(Some(name));
        id
    }

    /// The source name of a variable, if it has one.
    pub fn name(&self, v: VarId) -> Option<Symbol> {
        self.names.get(v as usize).copied().flatten()
    }

    /// Number of variables allocated so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff nothing is allocated.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Converts a source term, renaming named variables consistently via
/// `map` and allocating ids from `alloc`.
pub fn rterm_of_fo(t: &FoTerm, map: &mut HashMap<Symbol, VarId>, alloc: &mut VarAlloc) -> RTerm {
    match t {
        FoTerm::Var(name) => {
            let id = *map.entry(*name).or_insert_with(|| alloc.fresh_named(*name));
            RTerm::Var(id)
        }
        FoTerm::Const(c) => RTerm::Const(*c),
        FoTerm::App(f, args) => RTerm::App(
            *f,
            args.iter().map(|a| rterm_of_fo(a, map, alloc)).collect(),
        ),
    }
}

/// Converts a source atom (see [`rterm_of_fo`]).
pub fn ratom_of_fo(a: &FoAtom, map: &mut HashMap<Symbol, VarId>, alloc: &mut VarAlloc) -> RAtom {
    RAtom {
        pred: a.pred,
        args: a.args.iter().map(|t| rterm_of_fo(t, map, alloc)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;

    #[test]
    fn renaming_is_consistent_within_one_map() {
        let mut alloc = VarAlloc::new();
        let mut map = HashMap::new();
        let t = FoTerm::App(
            sym("f"),
            vec![FoTerm::var("X"), FoTerm::var("X"), FoTerm::var("Y")],
        );
        let r = rterm_of_fo(&t, &mut map, &mut alloc);
        let (_, args) = r.try_app().expect("conversion preserves applications");
        assert_eq!(args[0], args[1]);
        assert_ne!(args[0], args[2]);
        assert_eq!(alloc.len(), 2);
        assert_eq!(alloc.name(0), Some(sym("X")));
        assert_eq!(alloc.name(1), Some(sym("Y")));
    }

    #[test]
    fn try_app_reports_shape_mismatch() {
        let t = RTerm::App(sym("f"), vec![RTerm::Var(0)]);
        let (f, args) = t.try_app().unwrap();
        assert_eq!(f, sym("f"));
        assert_eq!(args, &[RTerm::Var(0)]);
        let err = RTerm::Var(3).try_app().unwrap_err();
        assert_eq!(err.expected, "application");
        assert_eq!(err.found, "_G3");
        assert!(err.to_string().contains("expected application"));
    }

    #[test]
    fn separate_maps_standardize_apart() {
        let mut alloc = VarAlloc::new();
        let t = FoTerm::var("X");
        let r1 = rterm_of_fo(&t, &mut HashMap::new(), &mut alloc);
        let r2 = rterm_of_fo(&t, &mut HashMap::new(), &mut alloc);
        assert_ne!(r1, r2);
    }

    #[test]
    fn display_and_size() {
        let t = RTerm::App(sym("f"), vec![RTerm::Var(0), RTerm::Const(Const::Int(3))]);
        assert_eq!(t.to_string(), "f(_G0, 3)");
        assert_eq!(t.size(), 3);
        assert!(!t.is_ground());
        assert!(RTerm::Const(Const::Int(1)).is_ground());
    }

    #[test]
    fn collect_vars_dedups() {
        let t = RTerm::App(sym("f"), vec![RTerm::Var(1), RTerm::Var(1), RTerm::Var(0)]);
        let mut vs = Vec::new();
        t.collect_vars(&mut vs);
        assert_eq!(vs, vec![1, 0]);
    }

    #[test]
    fn anonymous_fresh_vars_have_no_name() {
        let mut alloc = VarAlloc::new();
        let v = alloc.fresh();
        assert_eq!(alloc.name(v), None);
        assert!(!alloc.is_empty());
    }

    #[test]
    fn ratom_conversion() {
        let mut alloc = VarAlloc::new();
        let mut map = HashMap::new();
        let a = FoAtom::new("edge", vec![FoTerm::var("X"), FoTerm::constant("b")]);
        let r = ratom_of_fo(&a, &mut map, &mut alloc);
        assert_eq!(r.to_string(), "edge(_G0, b)");
    }
}
