//! The magic-sets transformation: goal-directed bottom-up evaluation.
//!
//! Bottom-up evaluation of a translated C-logic program computes the whole
//! least model even when the query touches a corner of it. Magic sets
//! rewrite the program so that the fixpoint derives only facts relevant to
//! the query: each derivable predicate is *adorned* with the
//! bound/free pattern of its calls (left-to-right sideways information
//! passing), a `magic` predicate collects the bound argument tuples that
//! can actually be asked, and every rule is guarded by the magic predicate
//! of its head.
//!
//! Purely extensional predicates (defined by facts only) are left
//! unadorned. Built-in atoms pass bindings: `is(L, E)` binds `L`'s
//! variables once `E`'s are bound; `=` binds either side from the other.

use crate::bottom_up::{evaluate, EvalError, Evaluation, FixpointOptions};
use crate::program::CompiledProgram;
use clogic_core::fol::{FoAtom, FoClause, FoProgram, FoTerm};
use clogic_core::symbol::Symbol;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A bound/free adornment: `true` = bound.
pub type Adornment = Vec<bool>;

fn adornment_suffix(a: &Adornment) -> String {
    a.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// The adorned name of a derivable predicate.
pub fn adorned_name(p: Symbol, a: &Adornment) -> Symbol {
    Symbol::new(&format!("{}__{}", p, adornment_suffix(a)))
}

/// The magic predicate name for an adorned predicate.
pub fn magic_name(p: Symbol, a: &Adornment) -> Symbol {
    Symbol::new(&format!("m__{}__{}", p, adornment_suffix(a)))
}

/// The result of the transformation.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    /// The rewritten program (magic rules, guarded rules, EDB facts and
    /// the magic seed).
    pub program: FoProgram,
    /// The adorned name of the synthetic query predicate whose relation
    /// holds the answers.
    pub answer_pred: Symbol,
    /// The query variables, in answer-tuple order.
    pub query_vars: Vec<Symbol>,
}

/// Computes which predicates are intensional (defined by at least one
/// rule with a non-empty body).
fn intensional(p: &FoProgram) -> HashSet<(Symbol, usize)> {
    p.clauses
        .iter()
        .filter(|c| !c.body.is_empty())
        .map(|c| (c.head.pred, c.head.arity()))
        .collect()
}

fn term_bound(t: &FoTerm, bound: &HashSet<Symbol>) -> bool {
    let mut vars = BTreeSet::new();
    t.collect_vars(&mut vars);
    vars.iter().all(|v| bound.contains(v))
}

fn add_vars(t: &FoTerm, into: &mut HashSet<Symbol>) {
    let mut vars = BTreeSet::new();
    t.collect_vars(&mut vars);
    into.extend(vars);
}

/// Applies the transformation for a conjunctive query `goals` against
/// program `p`. `builtins` names evaluable predicates.
pub fn magic_transform(
    p: &FoProgram,
    goals: &[FoAtom],
    builtins: &BTreeSet<Symbol>,
) -> MagicProgram {
    // Wrap the query: __query(V1,…,Vk) :- goals.
    let mut var_set = BTreeSet::new();
    for g in goals {
        g.collect_vars(&mut var_set);
    }
    let query_vars: Vec<Symbol> = var_set.into_iter().collect();
    let query_pred = Symbol::new("__query");
    let mut source = p.clone();
    source.push(FoClause::rule(
        FoAtom::new(
            query_pred,
            query_vars.iter().map(|&v| FoTerm::Var(v)).collect(),
        ),
        goals.to_vec(),
    ));

    let idb = intensional(&source);
    // Rules grouped by head predicate.
    let mut rules_for: HashMap<(Symbol, usize), Vec<&FoClause>> = HashMap::new();
    for c in &source.clauses {
        rules_for
            .entry((c.head.pred, c.head.arity()))
            .or_default()
            .push(c);
    }

    let mut out = FoProgram::new();
    // EDB facts (and facts of IDB preds are handled through rule
    // processing below, so only facts of non-IDB preds go in verbatim).
    for c in &source.clauses {
        if c.body.is_empty() && !idb.contains(&(c.head.pred, c.head.arity())) {
            out.push(c.clone());
        }
    }

    let query_adornment: Adornment = vec![false; query_vars.len()];
    let mut worklist: Vec<(Symbol, usize, Adornment)> =
        vec![(query_pred, query_vars.len(), query_adornment.clone())];
    let mut done: HashSet<(Symbol, usize, Adornment)> = HashSet::new();

    while let Some((pred, arity, adornment)) = worklist.pop() {
        if !done.insert((pred, arity, adornment.clone())) {
            continue;
        }
        let Some(rules) = rules_for.get(&(pred, arity)) else {
            continue;
        };
        for rule in rules {
            let mut bound: HashSet<Symbol> = HashSet::new();
            let mut magic_args: Vec<FoTerm> = Vec::new();
            for (i, arg) in rule.head.args.iter().enumerate() {
                if adornment[i] {
                    add_vars(arg, &mut bound);
                    magic_args.push(arg.clone());
                }
            }
            let guard = FoAtom::new(magic_name(pred, &adornment), magic_args);
            let mut processed: Vec<FoAtom> = vec![guard.clone()];
            for atom in &rule.body {
                if builtins.contains(&atom.pred) {
                    // Binding propagation through built-ins.
                    match (atom.pred.as_str(), atom.args.len()) {
                        ("is", 2) if term_bound(&atom.args[1], &bound) => {
                            add_vars(&atom.args[0], &mut bound);
                        }
                        ("=", 2) => {
                            if term_bound(&atom.args[0], &bound) {
                                add_vars(&atom.args[1], &mut bound);
                            } else if term_bound(&atom.args[1], &bound) {
                                add_vars(&atom.args[0], &mut bound);
                            }
                        }
                        _ => {}
                    }
                    processed.push(atom.clone());
                    continue;
                }
                let key = (atom.pred, atom.arity());
                if idb.contains(&key) {
                    let sub_adornment: Adornment =
                        atom.args.iter().map(|a| term_bound(a, &bound)).collect();
                    // Magic rule: m__q__a'(bound args) :- prefix.
                    let bound_args: Vec<FoTerm> = atom
                        .args
                        .iter()
                        .zip(&sub_adornment)
                        .filter(|(_, &b)| b)
                        .map(|(a, _)| a.clone())
                        .collect();
                    out.push(FoClause::rule(
                        FoAtom::new(magic_name(atom.pred, &sub_adornment), bound_args),
                        processed.clone(),
                    ));
                    worklist.push((atom.pred, atom.arity(), sub_adornment.clone()));
                    processed.push(FoAtom::new(
                        adorned_name(atom.pred, &sub_adornment),
                        atom.args.clone(),
                    ));
                } else {
                    processed.push(atom.clone());
                }
                add_vars_atom(atom, &mut bound);
            }
            // Guarded rule for the adorned head (negated atoms carried
            // verbatim; `solve_magic` rejects programs where they occur).
            out.push(FoClause::rule_with_negation(
                FoAtom::new(adorned_name(pred, &adornment), rule.head.args.clone()),
                processed,
                rule.negative_body.clone(),
            ));
        }
    }

    // Seed: the query is asked with no bound arguments.
    out.push(FoClause::fact(FoAtom::new(
        magic_name(query_pred, &query_adornment),
        vec![],
    )));

    MagicProgram {
        program: out,
        answer_pred: adorned_name(query_pred, &query_adornment),
        query_vars,
    }
}

fn add_vars_atom(a: &FoAtom, into: &mut HashSet<Symbol>) {
    for t in &a.args {
        add_vars(t, into);
    }
}

/// Transforms, evaluates bottom-up, and reads the answers: the
/// goal-directed counterpart of evaluating the full program and matching
/// the query against the least model.
pub fn solve_magic(
    p: &FoProgram,
    goals: &[FoAtom],
    builtins: &BTreeSet<Symbol>,
    opts: FixpointOptions,
) -> Result<(Vec<BTreeMap<Symbol, FoTerm>>, Evaluation), EvalError> {
    let (answers, ev, _labels) = solve_magic_labeled(p, goals, builtins, opts)?;
    Ok((answers, ev))
}

/// [`solve_magic`], additionally returning the **rewritten** program's
/// rule labels. The evaluation's per-rule tuple counts
/// ([`crate::FixpointStats::per_rule`]) index into the rewritten program —
/// magic rules, guards and adorned copies — not the source program, so a
/// profiler needs these labels to say which rewritten rule produced what.
#[allow(clippy::type_complexity)]
pub fn solve_magic_labeled(
    p: &FoProgram,
    goals: &[FoAtom],
    builtins: &BTreeSet<Symbol>,
    opts: FixpointOptions,
) -> Result<(Vec<BTreeMap<Symbol, FoTerm>>, Evaluation, Vec<String>), EvalError> {
    if p.clauses.iter().any(|c| c.has_negation()) {
        // Magic rewriting of normal programs can break stratification;
        // out of scope (use stratified bottom-up).
        return Err(EvalError::Unstratifiable(
            "negation under magic sets".into(),
        ));
    }
    let mut span = opts.obs.tracer.span_with(
        "folog.magic.solve",
        vec![("source_clauses", p.clauses.len().into())],
    );
    let mp = magic_transform(p, goals, builtins);
    let compiled = CompiledProgram::compile(&mp.program, builtins.iter().copied());
    let labels: Vec<String> = compiled.rules.iter().map(|r| r.to_string()).collect();
    opts.obs.metrics.counter("folog.magic.queries").inc();
    opts.obs
        .metrics
        .histogram("folog.magic.rewritten_rules")
        .observe(compiled.rules.len() as u64);
    span.record("rewritten_rules", compiled.rules.len());
    let mut ev = evaluate(&compiled, opts)?;
    if let Some(d) = ev.degradation.as_mut() {
        d.strategy = "magic";
    }
    let mut answers = Vec::new();
    if let Some(rel) = ev.facts.relation(mp.answer_pred, mp.query_vars.len()) {
        for tuple in rel.tuples() {
            answers.push(
                mp.query_vars
                    .iter()
                    .zip(tuple)
                    .map(|(&v, &id)| (v, ev.store.to_fo(id)))
                    .collect(),
            );
        }
    }
    answers.sort();
    answers.dedup();
    span.record("answers", answers.len());
    span.record("complete", u64::from(ev.complete));
    Ok((answers, ev, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::builtin_symbols;
    use clogic_core::symbol::sym;

    fn atom(p: &str, args: Vec<FoTerm>) -> FoAtom {
        FoAtom::new(p, args)
    }
    fn c(s: &str) -> FoTerm {
        FoTerm::constant(s)
    }
    fn v(s: &str) -> FoTerm {
        FoTerm::var(s)
    }

    fn path_program(n: usize, extra_component: usize) -> FoProgram {
        let mut p = FoProgram::new();
        for i in 0..n {
            p.push(FoClause::fact(atom(
                "edge",
                vec![c(&format!("n{i}")), c(&format!("n{}", i + 1))],
            )));
        }
        for i in 0..extra_component {
            p.push(FoClause::fact(atom(
                "edge",
                vec![c(&format!("m{i}")), c(&format!("m{}", i + 1))],
            )));
        }
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        p
    }

    fn builtins() -> BTreeSet<Symbol> {
        builtin_symbols().collect()
    }

    #[test]
    fn answers_match_plain_bottom_up() {
        let p = path_program(5, 0);
        let goals = vec![atom("path", vec![c("n0"), v("Y")])];
        let (magic_answers, _) =
            solve_magic(&p, &goals, &builtins(), FixpointOptions::default()).unwrap();
        let compiled = CompiledProgram::compile(&p, builtin_symbols());
        let full = evaluate(&compiled, FixpointOptions::default()).unwrap();
        let plain_answers = full.query(&goals);
        assert_eq!(magic_answers, plain_answers);
        assert_eq!(magic_answers.len(), 5);
    }

    #[test]
    fn goal_directedness_derives_fewer_facts() {
        // Two disconnected chains; query touches only one.
        let p = path_program(8, 8);
        let goals = vec![atom("path", vec![c("n0"), v("Y")])];
        let (_, magic_ev) =
            solve_magic(&p, &goals, &builtins(), FixpointOptions::default()).unwrap();
        let compiled = CompiledProgram::compile(&p, builtin_symbols());
        let full = evaluate(&compiled, FixpointOptions::default()).unwrap();
        // Full evaluation derives paths in both components; magic only in one.
        assert!(
            magic_ev.facts.total < full.facts.total,
            "magic {} !< full {}",
            magic_ev.facts.total,
            full.facts.total
        );
    }

    #[test]
    fn ground_query() {
        let p = path_program(4, 0);
        let (yes, _) = solve_magic(
            &p,
            &[atom("path", vec![c("n0"), c("n4")])],
            &builtins(),
            FixpointOptions::default(),
        )
        .unwrap();
        assert_eq!(yes.len(), 1);
        let (no, _) = solve_magic(
            &p,
            &[atom("path", vec![c("n4"), c("n0")])],
            &builtins(),
            FixpointOptions::default(),
        )
        .unwrap();
        assert!(no.is_empty());
    }

    #[test]
    fn conjunctive_query_with_join_var() {
        let p = path_program(4, 0);
        let goals = vec![
            atom("path", vec![v("X"), c("n2")]),
            atom("path", vec![c("n2"), v("Z")]),
        ];
        let (answers, _) =
            solve_magic(&p, &goals, &builtins(), FixpointOptions::default()).unwrap();
        assert_eq!(answers.len(), 4); // X ∈ {n0,n1} × Z ∈ {n3,n4}
    }

    #[test]
    fn works_with_builtin_arithmetic() {
        let mut p = FoProgram::new();
        for i in 0..4 {
            p.push(FoClause::fact(atom(
                "edge",
                vec![c(&format!("n{i}")), c(&format!("n{}", i + 1))],
            )));
        }
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Y"), FoTerm::int(1)]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Z"), v("N")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("dist", vec![v("Y"), v("Z"), v("M")]),
                atom(
                    "is",
                    vec![v("N"), FoTerm::App(sym("+"), vec![v("M"), FoTerm::int(1)])],
                ),
            ],
        ));
        let (answers, _) = solve_magic(
            &p,
            &[atom("dist", vec![c("n0"), c("n3"), v("N")])],
            &builtins(),
            FixpointOptions::default(),
        )
        .unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0][&sym("N")], FoTerm::int(3));
    }

    #[test]
    fn cyclic_data_terminates() {
        let mut p = path_program(2, 0);
        p.push(FoClause::fact(atom("edge", vec![c("n2"), c("n0")])));
        let (answers, _) = solve_magic(
            &p,
            &[atom("path", vec![c("n0"), v("Y")])],
            &builtins(),
            FixpointOptions::default(),
        )
        .unwrap();
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn budget_deadline_degrades_gracefully() {
        use crate::budget::{Budget, TripKind};
        // Infinite answer set: distances grow without bound on a cycle.
        let mut p = FoProgram::new();
        p.push(FoClause::fact(atom("edge", vec![c("a"), c("b")])));
        p.push(FoClause::fact(atom("edge", vec![c("b"), c("a")])));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Y"), FoTerm::int(1)]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("dist", vec![v("X"), v("Z"), v("N")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("dist", vec![v("Y"), v("Z"), v("M")]),
                atom(
                    "is",
                    vec![v("N"), FoTerm::App(sym("+"), vec![v("M"), FoTerm::int(1)])],
                ),
            ],
        ));
        let opts = FixpointOptions {
            budget: Budget::with_deadline(std::time::Duration::from_millis(20)),
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let (answers, ev) = solve_magic(
            &p,
            &[atom("dist", vec![c("a"), v("Y"), v("N")])],
            &builtins(),
            opts,
        )
        .unwrap();
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        assert!(!ev.complete);
        assert!(!answers.is_empty());
        let d = ev.degradation.expect("degradation report");
        assert_eq!(d.trip, TripKind::Deadline);
        assert_eq!(d.strategy, "magic");
    }

    #[test]
    fn adorned_names_are_deterministic() {
        let a = vec![true, false];
        assert_eq!(adorned_name(sym("path"), &a), sym("path__bf"));
        assert_eq!(magic_name(sym("path"), &a), sym("m__path__bf"));
    }

    #[test]
    fn transform_emits_seed_and_guarded_rules() {
        let p = path_program(1, 0);
        let mp = magic_transform(&p, &[atom("path", vec![c("n0"), v("Y")])], &builtins());
        let shown = mp.program.to_string();
        assert!(shown.contains("m____query__f()."), "{shown}");
        assert!(shown.contains("path__bf"), "{shown}");
        assert!(mp.query_vars == vec![sym("Y")]);
    }
}
