//! Unification with a trailed binding store.
//!
//! Bindings are *triangular*: a variable maps to a term that may itself
//! contain bound variables; [`Bindings::walk`] follows chains one step at
//! a time and [`Bindings::resolve`] applies the substitution deeply.
//! Every binding is recorded on a trail so the SLD engine can backtrack
//! by rolling back to a checkpoint instead of cloning the store.

use crate::rterm::{RTerm, VarId};
use std::collections::HashMap;

/// A trailed, growable binding store.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    slots: Vec<Option<RTerm>>,
    trail: Vec<VarId>,
    /// Number of bind operations performed (for the experiment counters).
    pub bind_count: u64,
}

/// A checkpoint into the trail; see [`Bindings::checkpoint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoint(usize);

impl Bindings {
    /// An empty store.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Ensures the store can hold variable `v`.
    fn ensure(&mut self, v: VarId) {
        let need = v as usize + 1;
        if self.slots.len() < need {
            self.slots.resize(need, None);
        }
    }

    /// The binding of `v`, if any (one step, no chain following).
    pub fn lookup(&self, v: VarId) -> Option<&RTerm> {
        self.slots.get(v as usize).and_then(Option::as_ref)
    }

    /// Binds `v` to `t`, recording it on the trail. `v` must be unbound.
    pub fn bind(&mut self, v: VarId, t: RTerm) {
        self.ensure(v);
        debug_assert!(self.slots[v as usize].is_none(), "rebinding _G{v}");
        self.slots[v as usize] = Some(t);
        self.trail.push(v);
        self.bind_count += 1;
    }

    /// A checkpoint for later rollback.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.trail.len())
    }

    /// Undoes all bindings made after `cp`.
    pub fn rollback(&mut self, cp: Checkpoint) {
        while self.trail.len() > cp.0 {
            let v = self.trail.pop().expect("trail non-empty");
            self.slots[v as usize] = None;
        }
    }

    /// Follows variable chains until a non-variable term or an unbound
    /// variable is reached. Returns a term equal to the input up to
    /// bound-variable dereferencing.
    pub fn walk<'a>(&'a self, t: &'a RTerm) -> &'a RTerm {
        let mut cur = t;
        while let RTerm::Var(v) = cur {
            match self.lookup(*v) {
                Some(next) => cur = next,
                None => break,
            }
        }
        cur
    }

    /// Applies the substitution deeply, producing a term with only unbound
    /// variables.
    pub fn resolve(&self, t: &RTerm) -> RTerm {
        let w = self.walk(t);
        match w {
            RTerm::Var(_) | RTerm::Const(_) => w.clone(),
            RTerm::App(f, args) => RTerm::App(*f, args.iter().map(|a| self.resolve(a)).collect()),
        }
    }

    /// True iff `v` occurs in `t` under the current bindings.
    pub fn occurs(&self, v: VarId, t: &RTerm) -> bool {
        match self.walk(t) {
            RTerm::Var(w) => *w == v,
            RTerm::Const(_) => false,
            RTerm::App(_, args) => args.iter().any(|a| self.occurs(v, a)),
        }
    }
}

/// Unification options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnifyOptions {
    /// Perform the occurs check (sound but slower; Prolog tradition skips
    /// it, and the engines here default to performing it because derived
    /// object identities are compared structurally).
    pub occurs_check: bool,
}

impl Default for UnifyOptions {
    fn default() -> Self {
        UnifyOptions { occurs_check: true }
    }
}

/// Unifies `a` and `b` under `bind`, extending it on success. On failure
/// the store is left *unchanged* (partial bindings are rolled back).
/// Returns whether unification succeeded.
pub fn unify(a: &RTerm, b: &RTerm, bind: &mut Bindings, opts: UnifyOptions) -> bool {
    let cp = bind.checkpoint();
    if unify_inner(a, b, bind, opts) {
        true
    } else {
        bind.rollback(cp);
        false
    }
}

fn unify_inner(a: &RTerm, b: &RTerm, bind: &mut Bindings, opts: UnifyOptions) -> bool {
    let wa = bind.walk(a).clone();
    let wb = bind.walk(b).clone();
    match (wa, wb) {
        (RTerm::Var(x), RTerm::Var(y)) if x == y => true,
        (RTerm::Var(x), t) | (t, RTerm::Var(x)) => {
            if opts.occurs_check && bind.occurs(x, &t) {
                return false;
            }
            bind.bind(x, t);
            true
        }
        (RTerm::Const(c1), RTerm::Const(c2)) => c1 == c2,
        (RTerm::App(f, fa), RTerm::App(g, ga)) => {
            f == g
                && fa.len() == ga.len()
                && fa
                    .iter()
                    .zip(&ga)
                    .all(|(x, y)| unify_inner(x, y, bind, opts))
        }
        _ => false,
    }
}

/// Unifies two atoms (same predicate, same arity, arguments pairwise).
pub fn unify_atoms(
    a: &crate::rterm::RAtom,
    b: &crate::rterm::RAtom,
    bind: &mut Bindings,
    opts: UnifyOptions,
) -> bool {
    if a.pred != b.pred || a.args.len() != b.args.len() {
        return false;
    }
    let cp = bind.checkpoint();
    for (x, y) in a.args.iter().zip(&b.args) {
        if !unify_inner(x, y, bind, opts) {
            bind.rollback(cp);
            return false;
        }
    }
    true
}

/// Computes the most general unifier as an explicit map for callers that
/// want a substitution value rather than a mutated store. Returns `None`
/// on failure.
pub fn mgu(a: &RTerm, b: &RTerm, opts: UnifyOptions) -> Option<HashMap<VarId, RTerm>> {
    let mut bind = Bindings::new();
    if !unify(a, b, &mut bind, opts) {
        return None;
    }
    let mut vars = Vec::new();
    a.collect_vars(&mut vars);
    b.collect_vars(&mut vars);
    let mut out = HashMap::new();
    for v in vars {
        let r = bind.resolve(&RTerm::Var(v));
        if r != RTerm::Var(v) {
            out.insert(v, r);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;
    use clogic_core::term::Const;

    fn c(name: &str) -> RTerm {
        RTerm::Const(Const::Sym(sym(name)))
    }

    fn f(name: &str, args: Vec<RTerm>) -> RTerm {
        RTerm::App(sym(name), args)
    }

    #[test]
    fn unify_var_with_const() {
        let mut b = Bindings::new();
        assert!(unify(
            &RTerm::Var(0),
            &c("a"),
            &mut b,
            UnifyOptions::default()
        ));
        assert_eq!(b.resolve(&RTerm::Var(0)), c("a"));
    }

    #[test]
    fn unify_symmetric_failure_leaves_store_clean() {
        let mut b = Bindings::new();
        // f(X, a) with f(b, X) fails (X=b then a≠b) and must roll back.
        let t1 = f("f", vec![RTerm::Var(0), c("a")]);
        let t2 = f("f", vec![c("b"), RTerm::Var(0)]);
        assert!(!unify(&t1, &t2, &mut b, UnifyOptions::default()));
        assert_eq!(b.lookup(0), None);
    }

    #[test]
    fn unify_chains() {
        let mut b = Bindings::new();
        assert!(unify(
            &RTerm::Var(0),
            &RTerm::Var(1),
            &mut b,
            UnifyOptions::default()
        ));
        assert!(unify(
            &RTerm::Var(1),
            &c("a"),
            &mut b,
            UnifyOptions::default()
        ));
        assert_eq!(b.resolve(&RTerm::Var(0)), c("a"));
    }

    #[test]
    fn occurs_check_rejects_cyclic() {
        let mut b = Bindings::new();
        let t = f("f", vec![RTerm::Var(0)]);
        assert!(!unify(&RTerm::Var(0), &t, &mut b, UnifyOptions::default()));
        // without occurs check it "succeeds" (building a rational term)
        let mut b2 = Bindings::new();
        assert!(unify(
            &RTerm::Var(0),
            &t,
            &mut b2,
            UnifyOptions {
                occurs_check: false
            }
        ));
    }

    #[test]
    fn unify_compound() {
        let mut b = Bindings::new();
        let t1 = f("id", vec![RTerm::Var(0), c("b")]);
        let t2 = f("id", vec![c("a"), RTerm::Var(1)]);
        assert!(unify(&t1, &t2, &mut b, UnifyOptions::default()));
        assert_eq!(b.resolve(&t1), f("id", vec![c("a"), c("b")]));
        assert_eq!(b.resolve(&t2), f("id", vec![c("a"), c("b")]));
    }

    #[test]
    fn functor_and_arity_mismatch() {
        let mut b = Bindings::new();
        assert!(!unify(
            &f("f", vec![c("a")]),
            &f("g", vec![c("a")]),
            &mut b,
            UnifyOptions::default()
        ));
        assert!(!unify(
            &f("f", vec![c("a")]),
            &f("f", vec![c("a"), c("b")]),
            &mut b,
            UnifyOptions::default()
        ));
        assert!(!unify(
            &c("a"),
            &f("f", vec![c("a")]),
            &mut b,
            UnifyOptions::default()
        ));
    }

    #[test]
    fn checkpoint_rollback() {
        let mut b = Bindings::new();
        let cp = b.checkpoint();
        b.bind(3, c("x"));
        b.bind(5, c("y"));
        assert!(b.lookup(3).is_some());
        b.rollback(cp);
        assert!(b.lookup(3).is_none());
        assert!(b.lookup(5).is_none());
    }

    #[test]
    fn mgu_as_map() {
        let t1 = f("f", vec![RTerm::Var(0), c("b")]);
        let t2 = f("f", vec![c("a"), RTerm::Var(1)]);
        let m = mgu(&t1, &t2, UnifyOptions::default()).unwrap();
        assert_eq!(m.get(&0), Some(&c("a")));
        assert_eq!(m.get(&1), Some(&c("b")));
        assert!(mgu(&c("a"), &c("b"), UnifyOptions::default()).is_none());
    }

    #[test]
    fn mgu_is_idempotent() {
        // applying the mgu twice equals applying it once
        let t1 = f("f", vec![RTerm::Var(0), RTerm::Var(0)]);
        let t2 = f("f", vec![RTerm::Var(1), c("k")]);
        let mut b = Bindings::new();
        assert!(unify(&t1, &t2, &mut b, UnifyOptions::default()));
        let once = b.resolve(&t1);
        let twice = b.resolve(&once);
        assert_eq!(once, twice);
        assert!(once.is_ground());
    }

    #[test]
    fn unify_atoms_checks_predicate() {
        use crate::rterm::RAtom;
        let mut b = Bindings::new();
        let a1 = RAtom {
            pred: sym("p"),
            args: vec![RTerm::Var(0)],
        };
        let a2 = RAtom {
            pred: sym("q"),
            args: vec![c("a")],
        };
        assert!(!unify_atoms(&a1, &a2, &mut b, UnifyOptions::default()));
        let a3 = RAtom {
            pred: sym("p"),
            args: vec![c("a")],
        };
        assert!(unify_atoms(&a1, &a3, &mut b, UnifyOptions::default()));
        assert_eq!(b.resolve(&RTerm::Var(0)), c("a"));
    }

    #[test]
    fn bind_count_tracks_operations() {
        let mut b = Bindings::new();
        unify(&RTerm::Var(0), &c("a"), &mut b, UnifyOptions::default());
        unify(&RTerm::Var(1), &c("b"), &mut b, UnifyOptions::default());
        assert_eq!(b.bind_count, 2);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use clogic_core::symbol::Symbol;
    use clogic_core::term::Const;
    use proptest::prelude::*;

    /// Random runtime terms over a small signature: variables 0..4,
    /// constants a/b/c and small ints, functors f/g of arity 1–2, depth ≤ 3.
    fn rterm() -> impl Strategy<Value = RTerm> {
        let leaf = prop_oneof![
            (0u32..4).prop_map(RTerm::Var),
            prop::sample::select(vec!["a", "b", "c"])
                .prop_map(|s| RTerm::Const(Const::Sym(Symbol::new(s)))),
            (0i64..3).prop_map(|i| RTerm::Const(Const::Int(i))),
        ];
        leaf.prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (prop::sample::select(vec!["f", "g"]), inner.clone())
                    .prop_map(|(f, t)| RTerm::App(Symbol::new(f), vec![t])),
                (prop::sample::select(vec!["f", "g"]), inner.clone(), inner)
                    .prop_map(|(f, t, u)| RTerm::App(Symbol::new(f), vec![t, u])),
            ]
        })
    }

    fn apply(bind: &Bindings, t: &RTerm) -> RTerm {
        bind.resolve(t)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// A successful unifier actually unifies: σ(a) == σ(b).
        #[test]
        fn unifier_unifies(a in rterm(), b in rterm()) {
            let mut bind = Bindings::new();
            if unify(&a, &b, &mut bind, UnifyOptions::default()) {
                prop_assert_eq!(apply(&bind, &a), apply(&bind, &b));
            }
        }

        /// Unification success is symmetric, and failure leaves no bindings.
        #[test]
        fn unification_symmetry(a in rterm(), b in rterm()) {
            let mut b1 = Bindings::new();
            let mut b2 = Bindings::new();
            let r1 = unify(&a, &b, &mut b1, UnifyOptions::default());
            let r2 = unify(&b, &a, &mut b2, UnifyOptions::default());
            prop_assert_eq!(r1, r2);
            if !r1 {
                for v in 0..8 {
                    prop_assert!(b1.lookup(v).is_none());
                    prop_assert!(b2.lookup(v).is_none());
                }
            }
        }

        /// The computed substitution is idempotent: σ(σ(t)) == σ(t).
        #[test]
        fn substitution_idempotent(a in rterm(), b in rterm()) {
            let mut bind = Bindings::new();
            if unify(&a, &b, &mut bind, UnifyOptions::default()) {
                let once = apply(&bind, &a);
                prop_assert_eq!(apply(&bind, &once), once.clone());
            }
        }

        /// Self-unification always succeeds without binding anything new
        /// (modulo variable self-aliasing).
        #[test]
        fn self_unification(a in rterm()) {
            let mut bind = Bindings::new();
            prop_assert!(unify(&a, &a, &mut bind, UnifyOptions::default()));
            prop_assert_eq!(apply(&bind, &a), a.clone());
        }

        /// With the occurs check on, the unifier never produces a cyclic
        /// (infinite) substitution: resolving terminates and is ground-or-
        /// variable-headed everywhere (checked by a bounded walk).
        #[test]
        fn occurs_check_soundness(a in rterm(), b in rterm()) {
            let mut bind = Bindings::new();
            if unify(&a, &b, &mut bind, UnifyOptions::default()) {
                // resolve() recursion would overflow on a cycle; a size
                // bound proxies for finiteness.
                let r = apply(&bind, &a);
                prop_assert!(r.size() < 10_000);
            }
        }

        /// Checkpoints fully undo everything after them.
        #[test]
        fn rollback_restores(a in rterm(), b in rterm(), c in rterm(), d in rterm()) {
            let mut bind = Bindings::new();
            let _ = unify(&a, &b, &mut bind, UnifyOptions::default());
            let snapshot: Vec<Option<RTerm>> =
                (0..8).map(|v| bind.lookup(v).cloned()).collect();
            let cp = bind.checkpoint();
            let _ = unify(&c, &d, &mut bind, UnifyOptions::default());
            bind.rollback(cp);
            for v in 0..8u32 {
                prop_assert_eq!(bind.lookup(v).cloned(), snapshot[v as usize].clone());
            }
        }

        /// mgu() agrees with unify() on success/failure.
        #[test]
        fn mgu_agrees_with_unify(a in rterm(), b in rterm()) {
            let mut bind = Bindings::new();
            let ok = unify(&a, &b, &mut bind, UnifyOptions::default());
            prop_assert_eq!(mgu(&a, &b, UnifyOptions::default()).is_some(), ok);
        }
    }
}
