//! Evaluable built-in predicates: arithmetic `is/2`, arithmetic
//! comparisons, and (dis)equality.
//!
//! The paper's path example uses `L is LO + 1`; both evaluation routes
//! (translated first-order and direct complex-object) need the same
//! built-ins, so they live here with two entry points: one over runtime
//! terms with trailed bindings (top-down), one over patterns with a
//! ground environment (bottom-up).

use crate::facts::{instantiate, Env};
use crate::ground::TermStore;
use crate::rterm::{RAtom, RTerm};
use crate::unify::{unify, Bindings, UnifyOptions};
use clogic_core::symbol::Symbol;
use clogic_core::term::Const;
use std::fmt;

/// Errors raised by built-in evaluation (Prolog would throw; the engines
/// surface these to the caller).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuiltinError {
    /// An arithmetic argument was not (bound to) an evaluable expression.
    NotEvaluable(String),
    /// An arithmetic argument was *bound*, but to a non-numeric term.
    /// Engines treat this as failure of the goal rather than an error:
    /// join planning may schedule a typing atom as the generator for an
    /// arithmetic operand, in which case non-numeric candidates are
    /// ordinary mismatches.
    NotNumeric(String),
    /// Division or modulo by zero.
    DivisionByZero,
    /// A built-in was called with the wrong number of arguments.
    Arity(Symbol, usize),
    /// A negated goal was not ground when selected (unsafe query/rule).
    Floundered(String),
}

impl fmt::Display for BuiltinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuiltinError::NotEvaluable(t) => write!(f, "not an evaluable arithmetic term: {t}"),
            BuiltinError::NotNumeric(t) => write!(f, "not a numeric term: {t}"),
            BuiltinError::DivisionByZero => write!(f, "division by zero"),
            BuiltinError::Arity(p, n) => write!(f, "built-in {p} called with {n} arguments"),
            BuiltinError::Floundered(g) => write!(f, "negated goal not ground: {g}"),
        }
    }
}

impl std::error::Error for BuiltinError {}

/// Names of the built-in predicates this module evaluates.
pub fn builtin_symbols() -> impl Iterator<Item = Symbol> {
    [
        "is", "<", ">", "=<", ">=", "=:=", "=\\=", "=", "\\=", "==", "\\==",
    ]
    .into_iter()
    .map(Symbol::new)
}

/// Whether `pred` is one of the built-ins evaluated here.
pub fn is_builtin(pred: Symbol) -> bool {
    builtin_symbols().any(|s| s == pred)
}

fn arith_binop(f: Symbol, a: i64, b: i64) -> Result<i64, BuiltinError> {
    match f.as_str() {
        "+" => Ok(a.wrapping_add(b)),
        "-" => Ok(a.wrapping_sub(b)),
        "*" => Ok(a.wrapping_mul(b)),
        "//" | "/" => {
            if b == 0 {
                Err(BuiltinError::DivisionByZero)
            } else {
                Ok(a.wrapping_div(b))
            }
        }
        "mod" => {
            if b == 0 {
                Err(BuiltinError::DivisionByZero)
            } else {
                Ok(a.rem_euclid(b))
            }
        }
        "min" => Ok(a.min(b)),
        "max" => Ok(a.max(b)),
        other => Err(BuiltinError::NotEvaluable(format!("{other}/2"))),
    }
}

/// Evaluates an arithmetic expression over runtime terms under bindings.
pub fn eval_int(t: &RTerm, bind: &Bindings) -> Result<i64, BuiltinError> {
    let w = bind.walk(t).clone();
    match &w {
        RTerm::Const(Const::Int(i)) => Ok(*i),
        RTerm::App(f, args) => match (f.as_str(), args.len()) {
            ("-", 1) => Ok(-eval_int(&args[0], bind)?),
            ("abs", 1) => Ok(eval_int(&args[0], bind)?.abs()),
            (_, 2) => {
                let a = eval_int(&args[0], bind)?;
                let b = eval_int(&args[1], bind)?;
                arith_binop(*f, a, b)
            }
            _ => Err(BuiltinError::NotNumeric(w.to_string())),
        },
        RTerm::Const(c) => Err(BuiltinError::NotNumeric(c.to_string())),
        other => Err(BuiltinError::NotEvaluable(other.to_string())),
    }
}

/// Evaluates an arithmetic expression over a pattern with a ground env.
pub fn eval_int_pattern(t: &RTerm, env: &Env, store: &TermStore) -> Result<i64, BuiltinError> {
    match t {
        RTerm::Var(v) => {
            let id = env
                .get(*v as usize)
                .copied()
                .flatten()
                .ok_or_else(|| BuiltinError::NotEvaluable(t.to_string()))?;
            store
                .as_int(id)
                .ok_or_else(|| BuiltinError::NotNumeric(store.display(id)))
        }
        RTerm::Const(Const::Int(i)) => Ok(*i),
        RTerm::App(f, args) => match (f.as_str(), args.len()) {
            ("-", 1) => Ok(-eval_int_pattern(&args[0], env, store)?),
            ("abs", 1) => Ok(eval_int_pattern(&args[0], env, store)?.abs()),
            (_, 2) => {
                let a = eval_int_pattern(&args[0], env, store)?;
                let b = eval_int_pattern(&args[1], env, store)?;
                arith_binop(*f, a, b)
            }
            _ => Err(BuiltinError::NotNumeric(t.to_string())),
        },
        RTerm::Const(c) => Err(BuiltinError::NotNumeric(c.to_string())),
    }
}

/// Lifts an arithmetic result into goal semantics: a bound-but-non-numeric
/// operand fails the goal (`Ok(None)`); an unbound operand is an error.
fn numeric(r: Result<i64, BuiltinError>) -> Result<Option<i64>, BuiltinError> {
    match r {
        Ok(v) => Ok(Some(v)),
        Err(BuiltinError::NotNumeric(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

fn compare(op: &str, a: i64, b: i64) -> bool {
    match op {
        "<" => a < b,
        ">" => a > b,
        "=<" => a <= b,
        ">=" => a >= b,
        "=:=" => a == b,
        "=\\=" => a != b,
        _ => unreachable!("not a comparison: {op}"),
    }
}

/// Solves a built-in goal in the top-down engine. On success the bindings
/// may be extended; on failure they are unchanged.
pub fn solve(goal: &RAtom, bind: &mut Bindings, opts: UnifyOptions) -> Result<bool, BuiltinError> {
    let name = goal.pred.as_str();
    match (name, goal.args.len()) {
        ("is", 2) => {
            let Some(v) = numeric(eval_int(&goal.args[1], bind))? else {
                return Ok(false);
            };
            Ok(unify(
                &goal.args[0],
                &RTerm::Const(Const::Int(v)),
                bind,
                opts,
            ))
        }
        ("<" | ">" | "=<" | ">=" | "=:=" | "=\\=", 2) => {
            let Some(a) = numeric(eval_int(&goal.args[0], bind))? else {
                return Ok(false);
            };
            let Some(b) = numeric(eval_int(&goal.args[1], bind))? else {
                return Ok(false);
            };
            Ok(compare(name, a, b))
        }
        ("=", 2) => Ok(unify(&goal.args[0], &goal.args[1], bind, opts)),
        ("\\=", 2) => {
            let cp = bind.checkpoint();
            let unifies = unify(&goal.args[0], &goal.args[1], bind, opts);
            bind.rollback(cp);
            Ok(!unifies)
        }
        ("==", 2) => Ok(bind.resolve(&goal.args[0]) == bind.resolve(&goal.args[1])),
        ("\\==", 2) => Ok(bind.resolve(&goal.args[0]) != bind.resolve(&goal.args[1])),
        _ => Err(BuiltinError::Arity(goal.pred, goal.args.len())),
    }
}

/// Solves a built-in goal in the bottom-up engine: `env` holds the
/// bindings accumulated by the join so far. On success the env may gain a
/// binding (for `is/2` and `=` with one unbound side); `trail` records it.
pub fn solve_pattern(
    goal: &RAtom,
    env: &mut Env,
    trail: &mut Vec<crate::rterm::VarId>,
    store: &mut TermStore,
) -> Result<bool, BuiltinError> {
    let name = goal.pred.as_str();
    match (name, goal.args.len()) {
        ("is", 2) => {
            let Some(v) = numeric(eval_int_pattern(&goal.args[1], env, store))? else {
                return Ok(false);
            };
            let id = store.intern_const(Const::Int(v));
            Ok(crate::facts::match_term(
                &goal.args[0],
                id,
                store,
                env,
                trail,
            ))
        }
        ("<" | ">" | "=<" | ">=" | "=:=" | "=\\=", 2) => {
            let Some(a) = numeric(eval_int_pattern(&goal.args[0], env, store))? else {
                return Ok(false);
            };
            let Some(b) = numeric(eval_int_pattern(&goal.args[1], env, store))? else {
                return Ok(false);
            };
            Ok(compare(name, a, b))
        }
        ("=" | "==", 2) => {
            // One side must be fully instantiable.
            if let Some(id) = instantiate(&goal.args[0], env, store) {
                Ok(crate::facts::match_term(
                    &goal.args[1],
                    id,
                    store,
                    env,
                    trail,
                ))
            } else if let Some(id) = instantiate(&goal.args[1], env, store) {
                Ok(crate::facts::match_term(
                    &goal.args[0],
                    id,
                    store,
                    env,
                    trail,
                ))
            } else {
                Err(BuiltinError::NotEvaluable(goal.to_string()))
            }
        }
        ("\\=" | "\\==", 2) => {
            let a = instantiate(&goal.args[0], env, store)
                .ok_or_else(|| BuiltinError::NotEvaluable(goal.to_string()))?;
            let b = instantiate(&goal.args[1], env, store)
                .ok_or_else(|| BuiltinError::NotEvaluable(goal.to_string()))?;
            Ok(a != b)
        }
        _ => Err(BuiltinError::Arity(goal.pred, goal.args.len())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;

    fn int(i: i64) -> RTerm {
        RTerm::Const(Const::Int(i))
    }

    fn plus(a: RTerm, b: RTerm) -> RTerm {
        RTerm::App(sym("+"), vec![a, b])
    }

    #[test]
    fn eval_arith_expressions() {
        let b = Bindings::new();
        assert_eq!(eval_int(&plus(int(1), int(2)), &b), Ok(3));
        let nested = RTerm::App(sym("*"), vec![plus(int(1), int(2)), int(4)]);
        assert_eq!(eval_int(&nested, &b), Ok(12));
        let neg = RTerm::App(sym("-"), vec![int(5)]);
        assert_eq!(eval_int(&neg, &b), Ok(-5));
        assert_eq!(
            eval_int(&RTerm::App(sym("mod"), vec![int(7), int(3)]), &b),
            Ok(1)
        );
    }

    #[test]
    fn eval_arith_through_bindings() {
        let mut b = Bindings::new();
        b.bind(0, int(41));
        assert_eq!(eval_int(&plus(RTerm::Var(0), int(1)), &b), Ok(42));
    }

    #[test]
    fn eval_errors() {
        let b = Bindings::new();
        // unbound variable: a genuine error
        assert!(matches!(
            eval_int(&RTerm::Var(0), &b),
            Err(BuiltinError::NotEvaluable(_))
        ));
        assert_eq!(
            eval_int(&RTerm::App(sym("/"), vec![int(1), int(0)]), &b),
            Err(BuiltinError::DivisionByZero)
        );
        // bound non-numeric: classified separately so engines can treat
        // it as goal failure (join planning may generate such bindings)
        assert!(matches!(
            eval_int(&RTerm::Const(Const::Sym(sym("a"))), &b),
            Err(BuiltinError::NotNumeric(_))
        ));
        let mut b2 = Bindings::new();
        let goal = RAtom {
            pred: sym("is"),
            args: vec![RTerm::Var(0), RTerm::Const(Const::Sym(sym("a")))],
        };
        assert_eq!(solve(&goal, &mut b2, UnifyOptions::default()), Ok(false));
    }

    #[test]
    fn is_binds_result() {
        let mut b = Bindings::new();
        let goal = RAtom {
            pred: sym("is"),
            args: vec![RTerm::Var(0), plus(int(2), int(3))],
        };
        assert_eq!(solve(&goal, &mut b, UnifyOptions::default()), Ok(true));
        assert_eq!(b.resolve(&RTerm::Var(0)), int(5));
        // and checks when already bound
        let goal2 = RAtom {
            pred: sym("is"),
            args: vec![int(6), plus(int(2), int(3))],
        };
        assert_eq!(solve(&goal2, &mut b, UnifyOptions::default()), Ok(false));
    }

    #[test]
    fn comparisons() {
        let mut b = Bindings::new();
        let mk = |p: &str, x: i64, y: i64| RAtom {
            pred: sym(p),
            args: vec![int(x), int(y)],
        };
        assert_eq!(
            solve(&mk("<", 1, 2), &mut b, UnifyOptions::default()),
            Ok(true)
        );
        assert_eq!(
            solve(&mk("<", 2, 2), &mut b, UnifyOptions::default()),
            Ok(false)
        );
        assert_eq!(
            solve(&mk("=<", 2, 2), &mut b, UnifyOptions::default()),
            Ok(true)
        );
        assert_eq!(
            solve(&mk(">", 3, 2), &mut b, UnifyOptions::default()),
            Ok(true)
        );
        assert_eq!(
            solve(&mk(">=", 3, 4), &mut b, UnifyOptions::default()),
            Ok(false)
        );
        assert_eq!(
            solve(&mk("=:=", 4, 4), &mut b, UnifyOptions::default()),
            Ok(true)
        );
        assert_eq!(
            solve(&mk("=\\=", 4, 4), &mut b, UnifyOptions::default()),
            Ok(false)
        );
    }

    #[test]
    fn unification_builtins() {
        let mut b = Bindings::new();
        let eq = RAtom {
            pred: sym("="),
            args: vec![RTerm::Var(0), int(7)],
        };
        assert_eq!(solve(&eq, &mut b, UnifyOptions::default()), Ok(true));
        assert_eq!(b.resolve(&RTerm::Var(0)), int(7));
        let neq = RAtom {
            pred: sym("\\="),
            args: vec![RTerm::Var(1), int(7)],
        };
        // var unifies with anything ⇒ \= fails, and leaves no binding
        assert_eq!(solve(&neq, &mut b, UnifyOptions::default()), Ok(false));
        assert_eq!(b.lookup(1), None);
        let neq2 = RAtom {
            pred: sym("\\="),
            args: vec![int(6), int(7)],
        };
        assert_eq!(solve(&neq2, &mut b, UnifyOptions::default()), Ok(true));
    }

    #[test]
    fn structural_equality_builtins() {
        let mut b = Bindings::new();
        let a1 = RAtom {
            pred: sym("=="),
            args: vec![RTerm::Var(0), RTerm::Var(0)],
        };
        assert_eq!(solve(&a1, &mut b, UnifyOptions::default()), Ok(true));
        let a2 = RAtom {
            pred: sym("=="),
            args: vec![RTerm::Var(0), RTerm::Var(1)],
        };
        assert_eq!(solve(&a2, &mut b, UnifyOptions::default()), Ok(false));
        let a3 = RAtom {
            pred: sym("\\=="),
            args: vec![RTerm::Var(0), RTerm::Var(1)],
        };
        assert_eq!(solve(&a3, &mut b, UnifyOptions::default()), Ok(true));
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let mut b = Bindings::new();
        let bad = RAtom {
            pred: sym("is"),
            args: vec![int(1)],
        };
        assert!(matches!(
            solve(&bad, &mut b, UnifyOptions::default()),
            Err(BuiltinError::Arity(_, 1))
        ));
    }

    #[test]
    fn pattern_is_binds_env() {
        let mut store = TermStore::new();
        let mut env: Env = vec![None; 2];
        let mut trail = Vec::new();
        let l0 = store.intern_const(Const::Int(4));
        env[1] = Some(l0);
        // _G0 is _G1 + 1
        let goal = RAtom {
            pred: sym("is"),
            args: vec![RTerm::Var(0), plus(RTerm::Var(1), int(1))],
        };
        assert_eq!(
            solve_pattern(&goal, &mut env, &mut trail, &mut store),
            Ok(true)
        );
        let bound = env[0].unwrap();
        assert_eq!(store.as_int(bound), Some(5));
    }

    #[test]
    fn pattern_comparison_and_errors() {
        let mut store = TermStore::new();
        let mut env: Env = vec![None];
        let mut trail = Vec::new();
        let lt = RAtom {
            pred: sym("<"),
            args: vec![int(1), int(2)],
        };
        assert_eq!(
            solve_pattern(&lt, &mut env, &mut trail, &mut store),
            Ok(true)
        );
        // unbound variable in arithmetic is an error
        let bad = RAtom {
            pred: sym("<"),
            args: vec![RTerm::Var(0), int(2)],
        };
        assert!(solve_pattern(&bad, &mut env, &mut trail, &mut store).is_err());
    }

    #[test]
    fn pattern_equality() {
        let mut store = TermStore::new();
        let a = store.intern_const(Const::Sym(sym("a")));
        let mut env: Env = vec![None, Some(a)];
        let mut trail = Vec::new();
        // _G0 = _G1
        let eq = RAtom {
            pred: sym("="),
            args: vec![RTerm::Var(0), RTerm::Var(1)],
        };
        assert_eq!(
            solve_pattern(&eq, &mut env, &mut trail, &mut store),
            Ok(true)
        );
        assert_eq!(env[0], Some(a));
        let ne = RAtom {
            pred: sym("\\="),
            args: vec![RTerm::Var(0), RTerm::Var(1)],
        };
        assert_eq!(
            solve_pattern(&ne, &mut env, &mut trail, &mut store),
            Ok(false)
        );
    }

    #[test]
    fn builtin_symbol_set() {
        assert!(is_builtin(sym("is")));
        assert!(is_builtin(sym("=<")));
        assert!(!is_builtin(sym("edge")));
    }
}
