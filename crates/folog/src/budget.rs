//! Resource governance shared by every evaluation strategy.
//!
//! A [`Budget`] bundles the resource ceilings a caller is willing to spend
//! on one query: a wall-clock deadline, a step ceiling, a derived-fact
//! ceiling, an approximate memory ceiling, and a cooperative
//! [`CancelToken`]. Engines thread a [`BudgetMeter`] — a started clock plus
//! trip state — through their inner loops and call [`BudgetMeter::tick`]
//! at each unit of work.
//!
//! The contract is **graceful degradation**, not hard failure: when a
//! ceiling trips, the engine stops expanding, keeps every answer derived so
//! far, and reports `complete: false` together with a structured
//! [`Degradation`] record saying which limit tripped and how much work had
//! been done. Limit trips are never `Err`s; errors are reserved for
//! malformed programs and builtin failures.
//!
//! Time is checked through a mask (every [`CHECK_INTERVAL`] ticks) so the
//! common path costs one increment and one compare, not a syscall.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many ticks pass between wall-clock/cancellation checks. Must be a
/// power of two; the mask keeps the hot path branch-cheap.
pub const CHECK_INTERVAL: u64 = 1024;

const CHECK_MASK: u64 = CHECK_INTERVAL - 1;

/// A cooperative cancellation handle, cheaply clonable and thread-safe.
///
/// Callers keep one clone and hand another to the engine (inside a
/// [`Budget`]); calling [`CancelToken::cancel`] makes the engine trip with
/// [`TripKind::Cancelled`] at its next check point.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; wakes nothing, engines observe it
    /// at their next budget check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has [`cancel`](Self::cancel) been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Which resource ceiling stopped an evaluation early.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TripKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The budget's global step ceiling was reached.
    Steps,
    /// An engine-specific depth bound was reached (SLD / direct search).
    Depth,
    /// The derived-fact ceiling was reached (bottom-up / magic).
    Facts,
    /// The fixpoint iteration ceiling was reached (bottom-up / magic).
    Iterations,
    /// The table answer ceiling was reached (tabling).
    Answers,
    /// The requested number of solutions was reached (SLD / direct).
    Solutions,
    /// The approximate memory ceiling was reached.
    Memory,
    /// The caller's [`CancelToken`] fired.
    Cancelled,
    /// The direct engine pruned a variant loop; the search space was
    /// truncated to keep termination, so answers may be missing.
    VariantLoop,
    /// A serving front-end refused the request before evaluation started
    /// (admission queue full). No work was done; resubmit when load
    /// drops.
    Shed,
}

impl TripKind {
    /// A stable machine-readable identifier for the trip, used in the
    /// JSON form of a [`Degradation`]. These are part of the serialized
    /// contract: renaming one is a breaking change.
    pub fn slug(&self) -> &'static str {
        match self {
            TripKind::Deadline => "deadline",
            TripKind::Steps => "steps",
            TripKind::Depth => "depth",
            TripKind::Facts => "facts",
            TripKind::Iterations => "iterations",
            TripKind::Answers => "answers",
            TripKind::Solutions => "solutions",
            TripKind::Memory => "memory",
            TripKind::Cancelled => "cancelled",
            TripKind::VariantLoop => "variant_loop",
            TripKind::Shed => "shed",
        }
    }
}

impl fmt::Display for TripKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TripKind::Deadline => "deadline",
            TripKind::Steps => "step ceiling",
            TripKind::Depth => "depth bound",
            TripKind::Facts => "fact ceiling",
            TripKind::Iterations => "iteration ceiling",
            TripKind::Answers => "answer ceiling",
            TripKind::Solutions => "solution cap",
            TripKind::Memory => "memory ceiling",
            TripKind::Cancelled => "cancelled",
            TripKind::VariantLoop => "variant loop pruned",
            TripKind::Shed => "load shed",
        };
        f.write_str(s)
    }
}

/// Resource ceilings for one evaluation. `None` everywhere (the default)
/// means unlimited.
///
/// A `Budget` composes with engine-local limits (e.g. `SldOptions::
/// max_depth`): whichever trips first stops the search, and both report
/// through the same [`Degradation`] channel.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock ceiling, measured from [`BudgetMeter::new`].
    pub deadline: Option<Duration>,
    /// Ceiling on budget ticks (units of engine work; see each engine's
    /// docs for what one tick means there).
    pub max_steps: Option<u64>,
    /// Ceiling on stored derived facts (bottom-up, magic) or table
    /// answers (tabling).
    pub max_facts: Option<usize>,
    /// Approximate heap ceiling in bytes, as estimated by the engine.
    pub max_memory_bytes: Option<usize>,
    /// Cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// A budget with no ceilings at all.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Budget {
            deadline: Some(deadline),
            ..Budget::default()
        }
    }

    /// Builder-style: set the wall-clock deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style: set the step ceiling.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Builder-style: set the derived-fact / answer ceiling.
    pub fn max_facts(mut self, facts: usize) -> Self {
        self.max_facts = Some(facts);
        self
    }

    /// Builder-style: set the approximate memory ceiling.
    pub fn max_memory_bytes(mut self, bytes: usize) -> Self {
        self.max_memory_bytes = Some(bytes);
        self
    }

    /// Builder-style: attach a cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// True iff no ceiling and no cancel token is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_steps.is_none()
            && self.max_facts.is_none()
            && self.max_memory_bytes.is_none()
            && self.cancel.is_none()
    }

    /// Combine two budgets, keeping the tighter ceiling on each axis.
    /// The cancel token is `self`'s if present, else `other`'s.
    pub fn merged(&self, other: &Budget) -> Budget {
        fn tighter<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        Budget {
            deadline: tighter(self.deadline, other.deadline),
            max_steps: tighter(self.max_steps, other.max_steps),
            max_facts: tighter(self.max_facts, other.max_facts),
            max_memory_bytes: tighter(self.max_memory_bytes, other.max_memory_bytes),
            cancel: self.cancel.clone().or_else(|| other.cancel.clone()),
        }
    }
}

/// Why and how far an evaluation degraded. Present on a result whenever
/// `complete == false`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Degradation {
    /// Which ceiling tripped.
    pub trip: TripKind,
    /// Which strategy was running (`"sld"`, `"bottom-up"`, ...).
    pub strategy: &'static str,
    /// Wall-clock time from meter start to the report.
    pub elapsed: Duration,
    /// Engine-specific work counter at trip time (steps, facts, answers).
    pub work: u64,
    /// Human-readable context, e.g. `"fact ceiling of 30 reached"`.
    pub detail: String,
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} degraded: {} after {:?} ({} work units): {}",
            self.strategy, self.trip, self.elapsed, self.work, self.detail
        )
    }
}

impl clogic_obs::Render for Degradation {
    fn render_text(&self) -> String {
        self.to_string()
    }

    fn render_json(&self) -> clogic_obs::Json {
        use clogic_obs::Json;
        Json::Object(vec![
            ("trip".into(), Json::str(self.trip.slug())),
            ("strategy".into(), Json::str(self.strategy)),
            ("elapsed_us".into(), Json::U64(self.elapsed.as_micros() as u64)),
            ("work".into(), Json::U64(self.work)),
            ("detail".into(), Json::str(self.detail.clone())),
        ])
    }
}

/// A running [`Budget`]: started clock, tick counter, and trip state.
///
/// One meter governs one evaluation. Engines call [`tick`](Self::tick) per
/// unit of work and the `check_*` methods at growth points; once any check
/// fails the meter latches the first [`TripKind`] and all later checks
/// fail fast, so engines can unwind by testing [`tripped`](Self::tripped).
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    budget: Budget,
    started: Instant,
    deadline_at: Option<Instant>,
    ticks: u64,
    tripped: Option<TripKind>,
}

impl BudgetMeter {
    /// Start metering `budget` now.
    pub fn new(budget: &Budget) -> Self {
        let started = Instant::now();
        BudgetMeter {
            deadline_at: budget.deadline.map(|d| started + d),
            budget: budget.clone(),
            started,
            ticks: 0,

            tripped: None,
        }
    }

    /// The budget being metered.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Ticks recorded so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Wall-clock time since the meter started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The first ceiling that tripped, if any.
    pub fn tripped(&self) -> Option<TripKind> {
        self.tripped
    }

    /// Latch a trip. The first trip wins; later calls are ignored.
    pub fn trip(&mut self, kind: TripKind) {
        if self.tripped.is_none() {
            self.tripped = Some(kind);
        }
    }

    /// Record one unit of work. Returns `true` while the budget holds;
    /// `false` once any ceiling has tripped. Wall-clock and cancellation
    /// are only consulted every [`CHECK_INTERVAL`] ticks.
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        self.ticks += 1;
        if let Some(max) = self.budget.max_steps {
            if self.ticks > max {
                self.trip(TripKind::Steps);
                return false;
            }
        }
        if self.ticks & CHECK_MASK == 0 {
            return self.check_time_and_cancel();
        }
        true
    }

    /// Check wall-clock deadline and cancellation immediately (not masked).
    /// Engines call this at coarse boundaries — stratum starts, fixpoint
    /// passes — where a prompt trip matters more than the syscall cost.
    pub fn check_time_and_cancel(&mut self) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if let Some(at) = self.deadline_at {
            if Instant::now() >= at {
                self.trip(TripKind::Deadline);
                return false;
            }
        }
        if let Some(token) = &self.budget.cancel {
            if token.is_cancelled() {
                self.trip(TripKind::Cancelled);
                return false;
            }
        }
        true
    }

    /// Check the derived-fact / answer ceiling against a current count.
    pub fn check_facts(&mut self, count: usize) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if let Some(max) = self.budget.max_facts {
            if count > max {
                self.trip(TripKind::Facts);
                return false;
            }
        }
        true
    }

    /// Check the approximate memory ceiling against an engine estimate.
    pub fn check_memory(&mut self, approx_bytes: usize) -> bool {
        if self.tripped.is_some() {
            return false;
        }
        if let Some(max) = self.budget.max_memory_bytes {
            if approx_bytes > max {
                self.trip(TripKind::Memory);
                return false;
            }
        }
        true
    }

    /// Build the [`Degradation`] report if a ceiling tripped, else `None`.
    pub fn degradation(
        &self,
        strategy: &'static str,
        work: u64,
        detail: impl Into<String>,
    ) -> Option<Degradation> {
        self.tripped.map(|trip| Degradation {
            trip,
            strategy,
            elapsed: self.elapsed(),
            work,
            detail: detail.into(),
        })
    }

    /// Build a [`Degradation`] for a trip that is already known without
    /// consulting the meter's latch (e.g. an engine-local depth bound).
    pub fn degradation_for(
        &self,
        trip: TripKind,
        strategy: &'static str,
        work: u64,
        detail: impl Into<String>,
    ) -> Degradation {
        Degradation {
            trip,
            strategy,
            elapsed: self.elapsed(),
            work,
            detail: detail.into(),
        }
    }
}

impl Default for BudgetMeter {
    fn default() -> Self {
        BudgetMeter::new(&Budget::unlimited())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut meter = BudgetMeter::new(&Budget::unlimited());
        for _ in 0..10_000 {
            assert!(meter.tick());
        }
        assert!(meter.check_facts(usize::MAX - 1));
        assert!(meter.check_memory(usize::MAX - 1));
        assert_eq!(meter.tripped(), None);
        assert_eq!(meter.degradation("test", 0, "n/a"), None);
    }

    #[test]
    fn step_ceiling_trips_exactly() {
        let mut meter = BudgetMeter::new(&Budget::unlimited().max_steps(10));
        for _ in 0..10 {
            assert!(meter.tick());
        }
        assert!(!meter.tick());
        assert_eq!(meter.tripped(), Some(TripKind::Steps));
        // Latched: further checks fail fast.
        assert!(!meter.tick());
        assert!(!meter.check_facts(0));
    }

    #[test]
    fn deadline_trips_after_elapse() {
        let mut meter = BudgetMeter::new(&Budget::with_deadline(Duration::from_millis(5)));
        thread::sleep(Duration::from_millis(10));
        assert!(!meter.check_time_and_cancel());
        assert_eq!(meter.tripped(), Some(TripKind::Deadline));
    }

    #[test]
    fn deadline_observed_through_masked_tick() {
        let mut meter = BudgetMeter::new(&Budget::with_deadline(Duration::from_millis(5)));
        thread::sleep(Duration::from_millis(10));
        let mut held = true;
        for _ in 0..=CHECK_INTERVAL {
            held = meter.tick();
            if !held {
                break;
            }
        }
        assert!(!held, "masked tick must notice an expired deadline");
        assert_eq!(meter.tripped(), Some(TripKind::Deadline));
    }

    #[test]
    fn fact_and_memory_ceilings() {
        let mut meter = BudgetMeter::new(&Budget::unlimited().max_facts(100));
        assert!(meter.check_facts(100));
        assert!(!meter.check_facts(101));
        assert_eq!(meter.tripped(), Some(TripKind::Facts));

        let mut meter = BudgetMeter::new(&Budget::unlimited().max_memory_bytes(1 << 20));
        assert!(meter.check_memory(1 << 20));
        assert!(!meter.check_memory((1 << 20) + 1));
        assert_eq!(meter.tripped(), Some(TripKind::Memory));
    }

    #[test]
    fn cancel_token_trips() {
        let token = CancelToken::new();
        let budget = Budget::unlimited().cancel_token(token.clone());
        let mut meter = BudgetMeter::new(&budget);
        assert!(meter.check_time_and_cancel());
        token.cancel();
        assert!(!meter.check_time_and_cancel());
        assert_eq!(meter.tripped(), Some(TripKind::Cancelled));
    }

    #[test]
    fn merged_takes_tighter_ceilings() {
        let a = Budget::with_deadline(Duration::from_millis(50)).max_facts(1000);
        let b = Budget::with_deadline(Duration::from_millis(20)).max_steps(5);
        let m = a.merged(&b);
        assert_eq!(m.deadline, Some(Duration::from_millis(20)));
        assert_eq!(m.max_facts, Some(1000));
        assert_eq!(m.max_steps, Some(5));
        assert_eq!(m.max_memory_bytes, None);
    }

    #[test]
    fn first_trip_wins() {
        let mut meter = BudgetMeter::new(&Budget::unlimited().max_facts(1));
        assert!(!meter.check_facts(2));
        meter.trip(TripKind::Deadline);
        assert_eq!(meter.tripped(), Some(TripKind::Facts));
    }

    #[test]
    fn degradation_report_is_populated() {
        let mut meter = BudgetMeter::new(&Budget::unlimited().max_steps(1));
        assert!(meter.tick());
        assert!(!meter.tick());
        let d = meter.degradation("sld", 42, "step ceiling of 1 reached").unwrap();
        assert_eq!(d.trip, TripKind::Steps);
        assert_eq!(d.strategy, "sld");
        assert_eq!(d.work, 42);
        assert!(d.detail.contains("step ceiling"));
        let shown = d.to_string();
        assert!(shown.contains("sld") && shown.contains("step ceiling"));
    }
}
