//! Incremental retraction: a DRed-style delete-rederive pass over the
//! semi-naive machinery in [`bottom_up`](crate::bottom_up).
//!
//! Given a **complete** least model of a program and a set of base
//! facts removed from it, [`retract_facts`] produces the least model of
//! the shrunken program without a full fixpoint rebuild, in the
//! classic two phases (Gupta, Mumick & Subrahmanian's DRed):
//!
//! 1. **Overdelete.** Every stored fact with at least one derivation
//!    passing through a deleted fact is deleted, semi-naively: each
//!    round pins one body atom of each rule to a newly-deleted tuple
//!    and joins the remaining atoms against the *original* (still
//!    undeleted) store. This overapproximates the damage — a fact may
//!    also have derivations that avoid the deleted set.
//! 2. **Rederive.** After the overdeleted tuples are removed from the
//!    store, each one is checked for an alternative derivation: either
//!    it is a base fact of the new program, or one rule application
//!    over the post-deletion store reproduces it. The survivors are
//!    re-inserted and a seeded semi-naive run
//!    ([`run_stratum`](crate::bottom_up) with the post-deletion length
//!    snapshot) propagates their consequences, restoring exactly the
//!    least model.
//!
//! DRed was chosen over *counting* (per-fact derivation counters)
//! because counting taxes every insert on the hot path and multiplies
//! resident memory by the derivation multiplicity, while DRed pays
//! only when a retraction actually happens — the right trade for a
//! workload that is overwhelmingly assert-and-query (see DESIGN.md
//! §17).
//!
//! Negation and incomplete models fall back to a full
//! [`evaluate`]: stratified negation is non-monotonic (a deletion can
//! *grow* later strata), and a partial model is not a sound starting
//! point for deletion propagation. The fallback is recorded in
//! [`RetractStats::fell_back`] and the `folog.dred.fallbacks` counter.

use crate::bottom_up::{
    eval_body, evaluate, finish, flush_metrics, plan_order, run_stratum, EvalError, Evaluation,
    FixpointOptions,
};
use crate::budget::BudgetMeter;
use crate::facts::{match_term, trail_undo, Env};
use crate::ground::TermId;
use crate::program::{ClauseView, Rule};
use clogic_core::fol::FoAtom;
use clogic_core::symbol::Symbol;
use std::collections::{HashMap, HashSet};

/// What one [`retract_facts`] run did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RetractStats {
    /// Facts deleted in the overdeletion phase (including the removed
    /// base facts themselves).
    pub overdeleted: u64,
    /// Overdeleted facts found to have an alternative derivation and
    /// re-inserted (phase-2 seeds; their downstream consequences are
    /// restored by the seeded semi-naive run, not counted here).
    pub rederived: u64,
    /// True when the pass could not run incrementally (negation or an
    /// incomplete previous model) and fell back to a full re-evaluation.
    pub fell_back: bool,
}

/// One stored fact, as the deletion pass tracks it.
type Fact = (Symbol, Vec<TermId>);

/// Computes the least model of `program` from `prev`, a complete least
/// model of the same program *plus* the base facts `removed` (and minus
/// `added`, normally empty — it exists for callers whose translation
/// diff can both drop and introduce unit clauses).
///
/// `program` must be the **post-retraction** program: its non-fact
/// rules must be those `prev` was computed with; its fact clauses are
/// consulted during rederivation, so a removed fact that is still a
/// base fact of `program` survives. Falls back to [`evaluate`] when the
/// program uses negation or `prev` is incomplete.
pub fn retract_facts<P: ClauseView>(
    program: &P,
    prev: Evaluation,
    removed: &[FoAtom],
    added: &[FoAtom],
    opts: FixpointOptions,
) -> Result<(Evaluation, RetractStats), EvalError> {
    let m = &opts.obs.metrics;
    m.counter("folog.dred.runs").inc();
    if program.has_negation() || !prev.complete {
        m.counter("folog.dred.fallbacks").inc();
        let ev = evaluate(program, opts)?;
        return Ok((
            ev,
            RetractStats {
                fell_back: true,
                ..RetractStats::default()
            },
        ));
    }
    let mut ev = prev;
    ev.degradation = None;
    ev.facts.set_index_mode(opts.index_mode);
    let stats_before = ev.stats.clone();
    let idx_before = ev.facts.index_stats();
    let mut meter = BudgetMeter::new(&opts.budget);
    let mut span = opts.obs.tracer.span_with(
        "folog.retract",
        vec![("removed", removed.len().into())],
    );

    let rules: Vec<(usize, &Rule)> = (0..program.len())
        .map(|i| (i, program.rule(i)))
        .filter(|(_, r)| !r.is_fact())
        .collect();

    // Phase 1 — overdelete. Seed with the removed base facts that are
    // actually stored, then propagate: a rule head joins the deleted
    // set whenever one body atom matches a newly-deleted tuple and the
    // rest of the body is satisfiable in the ORIGINAL store (tuples are
    // physically removed only after the phase converges, so every join
    // sees the pre-deletion relations).
    let mut deleted: HashSet<Fact> = HashSet::new();
    let mut delta: Vec<Fact> = Vec::new();
    for atom in removed {
        let mut tuple = Vec::with_capacity(atom.args.len());
        let mut ground = true;
        for a in &atom.args {
            match ev.store.intern_fo(a) {
                Some(id) => tuple.push(id),
                None => {
                    ground = false;
                    break;
                }
            }
        }
        if !ground || !ev.facts.contains(atom.pred, &tuple) {
            continue;
        }
        let fact = (atom.pred, tuple);
        if deleted.insert(fact.clone()) {
            delta.push(fact);
        }
    }
    let empty_frontiers = HashMap::new();
    while !delta.is_empty() {
        if !meter.check_time_and_cancel() {
            break;
        }
        let mut produced: Vec<Fact> = Vec::new();
        for &(_, rule) in &rules {
            for (pos, atom) in rule.body.iter().enumerate() {
                if program.is_builtin(atom.pred) {
                    continue;
                }
                let arity = atom.args.len();
                let order = plan_order(rule, Some(pos), program, &ev.facts);
                for (_, tuple) in delta.iter().filter(|(p, t)| *p == atom.pred && t.len() == arity)
                {
                    ev.stats.rule_activations += 1;
                    let mut env: Env = vec![None; rule.n_vars as usize];
                    let mut trail = Vec::new();
                    let pinned = atom
                        .args
                        .iter()
                        .zip(tuple)
                        .all(|(p, &d)| match_term(p, d, &ev.store, &mut env, &mut trail));
                    if pinned {
                        // `order[0]` is the pinned atom; evaluate the
                        // rest of the body with its bindings in place.
                        eval_body(
                            rule,
                            &order[1..],
                            0,
                            None,
                            &empty_frontiers,
                            &ev.facts,
                            &mut ev.store,
                            &mut ev.stats,
                            program,
                            &mut env,
                            &mut trail,
                            &mut produced,
                            &mut meter,
                        )?;
                    }
                    trail_undo(&mut env, &mut trail, 0);
                    if meter.tripped().is_some() {
                        break;
                    }
                }
            }
        }
        delta.clear();
        for fact in produced {
            if ev.facts.contains(fact.0, &fact.1) && !deleted.contains(&fact) {
                deleted.insert(fact.clone());
                delta.push(fact);
            }
        }
        if meter.tripped().is_some() {
            break;
        }
    }

    // Physically remove the overdeleted tuples. Every pattern index
    // built so far is invalidated by the relations' version bump and
    // rebuilt lazily on its next probe.
    let doomed: Vec<Fact> = deleted.iter().cloned().collect();
    let overdeleted = ev.facts.remove_all(&doomed) as u64;

    // Phase 2 — rederive. A deleted tuple survives if it is a base fact
    // of the (new) program, or one rule application over the
    // post-deletion store reproduces it. Survivors — plus any `added`
    // base atoms — are inserted past the post-deletion length snapshot,
    // so the seeded semi-naive run treats exactly them as the delta and
    // restores their downstream consequences.
    let lens_after = ev.facts.lens();
    let empty_env: Env = Vec::new();
    let base_facts: HashSet<Fact> = (0..program.len())
        .map(|i| program.rule(i))
        .filter(|r| r.is_fact())
        .filter_map(|r| {
            let mut tuple = Vec::with_capacity(r.head.args.len());
            for a in &r.head.args {
                tuple.push(crate::facts::instantiate(a, &empty_env, &mut ev.store)?);
            }
            Some((r.head.pred, tuple))
        })
        .collect();
    let mut reborn: Vec<Fact> = Vec::new();
    for fact in &doomed {
        if meter.tripped().is_some() {
            break;
        }
        if base_facts.contains(fact) || derivable_once(program, &rules, fact, &mut ev, &mut meter)? {
            reborn.push(fact.clone());
        }
    }
    for atom in added {
        let mut tuple = Vec::with_capacity(atom.args.len());
        let mut ground = true;
        for a in &atom.args {
            match ev.store.intern_fo(a) {
                Some(id) => tuple.push(id),
                None => {
                    ground = false;
                    break;
                }
            }
        }
        if ground {
            reborn.push((atom.pred, tuple));
        }
    }
    let rederived = reborn.len() as u64;
    for (pred, tuple) in reborn {
        if ev.facts.insert(pred, tuple, &ev.store) {
            ev.stats.facts_derived += 1;
        }
    }
    let derivable: Vec<(Symbol, usize)> = program.head_predicates();
    if meter.tripped().is_none() {
        run_stratum(
            &rules,
            &derivable,
            program,
            &opts,
            &mut ev,
            &mut meter,
            Some(&lens_after),
        )?;
    }
    ev.complete = true;
    finish(&mut ev, &meter, &opts);
    span.record("overdeleted", overdeleted);
    span.record("rederived", rederived);
    span.record("complete", u64::from(ev.complete));
    drop(span);
    m.counter("folog.dred.overdeleted").add(overdeleted);
    m.counter("folog.dred.rederived").add(rederived);
    flush_metrics(
        &opts.obs,
        &stats_before,
        &ev.stats,
        &idx_before,
        &ev.facts.index_stats(),
    );
    Ok((
        ev,
        RetractStats {
            overdeleted,
            rederived,
            fell_back: false,
        },
    ))
}

/// Whether one rule application over the current (post-deletion) store
/// reproduces `fact`: some rule head unifies with the tuple and its
/// body is satisfiable under those bindings. Because the tuple is
/// ground, every solution instantiates the head to exactly `fact`, so
/// satisfiability is the membership test.
fn derivable_once<P: ClauseView>(
    program: &P,
    rules: &[(usize, &Rule)],
    fact: &Fact,
    ev: &mut Evaluation,
    meter: &mut BudgetMeter,
) -> Result<bool, EvalError> {
    let (pred, tuple) = fact;
    let empty_frontiers = HashMap::new();
    for &(_, rule) in rules {
        if rule.head.pred != *pred || rule.head.args.len() != tuple.len() {
            continue;
        }
        ev.stats.rule_activations += 1;
        let mut env: Env = vec![None; rule.n_vars as usize];
        let mut trail = Vec::new();
        let matched = rule
            .head
            .args
            .iter()
            .zip(tuple)
            .all(|(p, &d)| match_term(p, d, &ev.store, &mut env, &mut trail));
        if matched {
            let order = plan_order(rule, None, program, &ev.facts);
            let mut out: Vec<Fact> = Vec::new();
            eval_body(
                rule,
                &order,
                0,
                None,
                &empty_frontiers,
                &ev.facts,
                &mut ev.store,
                &mut ev.stats,
                program,
                &mut env,
                &mut trail,
                &mut out,
                meter,
            )?;
            if !out.is_empty() {
                return Ok(true);
            }
        }
        trail_undo(&mut env, &mut trail, 0);
        if meter.tripped().is_some() {
            break;
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bottom_up::Strategy;
    use crate::builtins::builtin_symbols;
    use crate::program::CompiledProgram;
    use clogic_core::fol::{FoClause, FoProgram, FoTerm};

    fn atom(p: &str, args: Vec<FoTerm>) -> FoAtom {
        FoAtom::new(p, args)
    }

    fn c(s: &str) -> FoTerm {
        FoTerm::constant(s)
    }

    fn v(s: &str) -> FoTerm {
        FoTerm::var(s)
    }

    /// edge facts + transitive closure over them.
    fn path_program(edges: &[(&str, &str)]) -> FoProgram {
        let mut p = FoProgram::new();
        for (a, b) in edges {
            p.push(FoClause::fact(atom("edge", vec![c(a), c(b)])));
        }
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Y")]),
            vec![atom("edge", vec![v("X"), v("Y")])],
        ));
        p.push(FoClause::rule(
            atom("path", vec![v("X"), v("Z")]),
            vec![
                atom("edge", vec![v("X"), v("Y")]),
                atom("path", vec![v("Y"), v("Z")]),
            ],
        ));
        p
    }

    fn compile(p: &FoProgram) -> CompiledProgram {
        CompiledProgram::compile(p, builtin_symbols())
    }

    fn model(p: &CompiledProgram) -> Evaluation {
        evaluate(p, FixpointOptions::default()).expect("evaluates")
    }

    /// The golden comparison: retracting from the saturated model must
    /// equal evaluating the shrunken program from scratch.
    fn assert_retract_equals_rebuild(edges: &[(&str, &str)], drop: (&str, &str)) {
        let old = path_program(edges);
        let kept: Vec<(&str, &str)> = edges.iter().copied().filter(|&e| e != drop).collect();
        let new = path_program(&kept);
        let new_cp = compile(&new);
        let prev = model(&compile(&old));
        let removed = vec![atom("edge", vec![c(drop.0), c(drop.1)])];
        let (ev, stats) =
            retract_facts(&new_cp, prev, &removed, &[], FixpointOptions::default())
                .expect("retract runs");
        assert!(!stats.fell_back);
        assert!(ev.complete);
        let fresh = model(&new_cp);
        assert_eq!(
            ev.facts.display(&ev.store),
            fresh.facts.display(&fresh.store),
            "retract({drop:?}) from {edges:?}"
        );
    }

    #[test]
    fn retracting_an_edge_removes_exactly_its_consequences() {
        assert_retract_equals_rebuild(&[("a", "b"), ("b", "c"), ("c", "d")], ("b", "c"));
    }

    #[test]
    fn survivors_with_alternative_derivations_are_rederived() {
        // Two routes a→c; dropping one leaves path(a, c) derivable.
        assert_retract_equals_rebuild(
            &[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")],
            ("a", "c"),
        );
        assert_retract_equals_rebuild(
            &[("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")],
            ("b", "c"),
        );
    }

    #[test]
    fn retracting_from_a_cycle_converges() {
        assert_retract_equals_rebuild(&[("a", "b"), ("b", "a"), ("b", "c")], ("b", "a"));
        assert_retract_equals_rebuild(&[("a", "b"), ("b", "a"), ("b", "c")], ("a", "b"));
    }

    #[test]
    fn retracting_a_fact_that_is_not_stored_is_a_no_op() {
        let p = path_program(&[("a", "b")]);
        let cp = compile(&p);
        let prev = model(&cp);
        let removed = vec![atom("edge", vec![c("x"), c("y")])];
        let (ev, stats) =
            retract_facts(&cp, prev, &removed, &[], FixpointOptions::default()).unwrap();
        assert_eq!(stats.overdeleted, 0);
        let fresh = model(&cp);
        assert_eq!(ev.facts.display(&ev.store), fresh.facts.display(&fresh.store));
    }

    #[test]
    fn a_removed_fact_still_asserted_by_the_program_survives() {
        // The program retains edge(a, b) as a base fact; "removing" it
        // must rederive it (and its consequences) from the fact clause.
        let p = path_program(&[("a", "b"), ("b", "c")]);
        let cp = compile(&p);
        let prev = model(&cp);
        let removed = vec![atom("edge", vec![c("a"), c("b")])];
        let (ev, stats) = retract_facts(&cp, prev, &removed, &[], FixpointOptions::default())
            .expect("retract runs");
        assert!(stats.rederived >= 1);
        let fresh = model(&cp);
        assert_eq!(ev.facts.display(&ev.store), fresh.facts.display(&fresh.store));
    }

    #[test]
    fn negation_falls_back_to_full_evaluation() {
        let mut p = path_program(&[("a", "b"), ("b", "c")]);
        p.push(FoClause::rule_with_negation(
            atom("isolated", vec![v("X")]),
            vec![atom("edge", vec![v("X"), v("X")])],
            vec![atom("path", vec![v("X"), v("X")])],
        ));
        let old_cp = compile(&p);
        let prev = evaluate(&old_cp, FixpointOptions::default()).unwrap();
        let (ev, stats) =
            retract_facts(&old_cp, prev, &[], &[], FixpointOptions::default()).unwrap();
        assert!(stats.fell_back);
        assert!(ev.complete);
    }

    #[test]
    fn naive_strategy_retracts_too() {
        let opts = FixpointOptions {
            strategy: Strategy::Naive,
            ..FixpointOptions::default()
        };
        let old = path_program(&[("a", "b"), ("b", "c")]);
        let new = path_program(&[("a", "b")]);
        let new_cp = compile(&new);
        let prev = evaluate(&compile(&old), opts.clone()).unwrap();
        let removed = vec![atom("edge", vec![c("b"), c("c")])];
        let (ev, _) = retract_facts(&new_cp, prev, &removed, &[], opts.clone()).unwrap();
        let fresh = evaluate(&new_cp, opts).unwrap();
        assert_eq!(ev.facts.display(&ev.store), fresh.facts.display(&fresh.store));
    }
}
