//! Compiled first-order programs: clauses with dense rule-local variables
//! and a clause index.
//!
//! Compilation renames each clause's variables to `0..n_vars` so that an
//! activation at runtime is a constant-offset shift ("standardize apart"
//! without hashing). The clause index generalizes first-argument
//! indexing to *every* head argument position: a goal with any bound
//! argument selects clauses through the most selective position, and
//! clauses whose head holds a variable there are always candidates.

use crate::facts::IndexMode;
use crate::rterm::{ratom_of_fo, RAtom, RTerm, VarAlloc, VarId};
use clogic_core::fol::{FoClause, FoProgram};
use clogic_core::symbol::Symbol;
use clogic_core::term::Const;
use std::collections::HashMap;
use std::fmt;

/// A compiled clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: RAtom,
    /// The positive body atoms.
    pub body: Vec<RAtom>,
    /// Negated body atoms (negation as failure).
    pub neg_body: Vec<RAtom>,
    /// Number of distinct variables (ids are `0..n_vars`).
    pub n_vars: u32,
}

impl Rule {
    /// True iff the body (positive and negative) is empty.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.neg_body.is_empty()
    }

    /// True iff the rule uses negation.
    pub fn has_negation(&self) -> bool {
        !self.neg_body.is_empty()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() || !self.neg_body.is_empty() {
            write!(f, " :- ")?;
            for (i, b) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}")?;
            }
            for (i, n) in self.neg_body.iter().enumerate() {
                if i > 0 || !self.body.is_empty() {
                    write!(f, ", ")?;
                }
                write!(f, "\\+ {n}")?;
            }
        }
        write!(f, ".")
    }
}

/// The key under which a goal's first argument selects clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArgKey {
    /// A constant.
    Const(Const),
    /// A compound term's principal functor and arity.
    Functor(Symbol, usize),
}

/// Computes the index key of a term, if it is not a variable.
pub fn arg_key(t: &RTerm) -> Option<ArgKey> {
    match t {
        RTerm::Var(_) => None,
        RTerm::Const(c) => Some(ArgKey::Const(*c)),
        RTerm::App(f, args) => Some(ArgKey::Functor(*f, args.len())),
    }
}

/// A compiled program with clause indexing.
#[derive(Clone, Debug, Default)]
pub struct CompiledProgram {
    /// All rules, in source order.
    pub rules: Vec<Rule>,
    /// Predicate symbols treated as evaluable built-ins.
    pub builtins: std::collections::BTreeSet<Symbol>,
    by_pred: HashMap<(Symbol, usize), Vec<usize>>,
    /// For each head argument position holding a non-variable:
    /// (pred, arity, position, key) → clause indices.
    by_arg: HashMap<(Symbol, usize, u32, ArgKey), Vec<usize>>,
    /// Clauses whose head holds a variable at a position (always
    /// candidates when selecting through that position).
    var_at: HashMap<(Symbol, usize, u32), Vec<usize>>,
    /// Whether `candidates`/`candidates_bound` consult the argument
    /// index or return every clause of the predicate (the scan
    /// baseline, kept in lockstep with [`crate::facts::FactStore`]'s).
    index_mode: IndexMode,
}

impl CompiledProgram {
    /// Compiles a first-order program. `builtins` names the evaluable
    /// predicates (their atoms are never resolved against clauses).
    pub fn compile(p: &FoProgram, builtins: impl IntoIterator<Item = Symbol>) -> CompiledProgram {
        let mut out = CompiledProgram {
            builtins: builtins.into_iter().collect(),
            ..CompiledProgram::default()
        };
        for c in &p.clauses {
            out.push_clause(c);
        }
        out
    }

    /// Compiles and adds one clause.
    pub fn push_clause(&mut self, c: &FoClause) {
        let mut alloc = VarAlloc::new();
        let mut map = HashMap::new();
        let head = ratom_of_fo(&c.head, &mut map, &mut alloc);
        let body: Vec<RAtom> = c
            .body
            .iter()
            .map(|b| ratom_of_fo(b, &mut map, &mut alloc))
            .collect();
        let neg_body: Vec<RAtom> = c
            .negative_body
            .iter()
            .map(|n| ratom_of_fo(n, &mut map, &mut alloc))
            .collect();
        let rule = Rule {
            head,
            body,
            neg_body,
            n_vars: alloc.len() as u32,
        };
        self.push_rule(rule);
    }

    /// Adds a compiled rule, indexing every head argument position.
    pub fn push_rule(&mut self, rule: Rule) {
        let idx = self.rules.len();
        let key = (rule.head.pred, rule.head.args.len());
        self.by_pred.entry(key).or_default().push(idx);
        for (pos, a) in rule.head.args.iter().enumerate() {
            match arg_key(a) {
                Some(k) => self
                    .by_arg
                    .entry((key.0, key.1, pos as u32, k))
                    .or_default()
                    .push(idx),
                None => self
                    .var_at
                    .entry((key.0, key.1, pos as u32))
                    .or_default()
                    .push(idx),
            }
        }
        self.rules.push(rule);
    }

    /// Removes rules `len..` and unwinds their index entries — the exact
    /// inverse of the [`CompiledProgram::push_rule`] calls that added
    /// them. This lets query-local auxiliary clauses run as a *scratch
    /// overlay* on a shared compiled program (push, solve, truncate)
    /// instead of cloning the whole program per query.
    pub fn truncate(&mut self, len: usize) {
        fn prune<K: std::hash::Hash + Eq>(map: &mut HashMap<K, Vec<usize>>, key: K, idx: usize) {
            if let Some(v) = map.get_mut(&key) {
                if let Some(pos) = v.iter().rposition(|&i| i == idx) {
                    v.remove(pos);
                }
                if v.is_empty() {
                    map.remove(&key);
                }
            }
        }
        while self.rules.len() > len {
            let rule = self.rules.pop().expect("len checked");
            let idx = self.rules.len();
            let key = (rule.head.pred, rule.head.args.len());
            prune(&mut self.by_pred, key, idx);
            for (pos, a) in rule.head.args.iter().enumerate() {
                match arg_key(a) {
                    Some(k) => prune(&mut self.by_arg, (key.0, key.1, pos as u32, k), idx),
                    None => prune(&mut self.var_at, (key.0, key.1, pos as u32), idx),
                }
            }
        }
    }

    /// The active [`IndexMode`].
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    /// Switches clause selection between argument indexing and the scan
    /// baseline (every clause of the predicate is a candidate).
    pub fn set_index_mode(&mut self, mode: IndexMode) {
        self.index_mode = mode;
    }

    /// Whether `pred` is an evaluable built-in.
    pub fn is_builtin(&self, pred: Symbol) -> bool {
        self.builtins.contains(&pred)
    }

    /// Candidate clauses for a goal, using first-argument indexing when
    /// the goal's first argument is bound to a non-variable (callers
    /// should pass the *walked* first argument). Returned in source
    /// order. This is the single-position special case of
    /// [`CompiledProgram::candidates_bound`].
    pub fn candidates(&self, pred: Symbol, arity: usize, first_arg: Option<&RTerm>) -> Vec<usize> {
        match first_arg.and_then(arg_key) {
            None => self.rules_for(pred, arity),
            Some(k) => self.candidates_bound(pred, arity, &[(0, k)]),
        }
    }

    /// Candidate clauses for a goal with any set of bound argument
    /// positions: selects through the position whose candidate list —
    /// key-matched clauses plus variable-headed clauses — is smallest,
    /// and merges the two (sorted, disjoint) lists back into source
    /// order. With no keys, or in [`IndexMode::Scan`], every clause of
    /// the predicate is a candidate.
    pub fn candidates_bound(
        &self,
        pred: Symbol,
        arity: usize,
        keys: &[(u32, ArgKey)],
    ) -> Vec<usize> {
        if self.index_mode == IndexMode::Scan || keys.is_empty() {
            return self.rules_for(pred, arity);
        }
        static EMPTY: Vec<usize> = Vec::new();
        let lists = |&(pos, k): &(u32, ArgKey)| {
            let keyed = self.by_arg.get(&(pred, arity, pos, k)).unwrap_or(&EMPTY);
            let open = self.var_at.get(&(pred, arity, pos)).unwrap_or(&EMPTY);
            (keyed, open)
        };
        let (keyed, open) = keys
            .iter()
            .map(lists)
            .min_by_key(|(keyed, open)| keyed.len() + open.len())
            .expect("non-empty keys");
        // Merge two ascending, disjoint index lists.
        let mut out = Vec::with_capacity(keyed.len() + open.len());
        let (mut i, mut j) = (0, 0);
        while i < keyed.len() || j < open.len() {
            let next_keyed = keyed.get(i).copied().unwrap_or(usize::MAX);
            let next_open = open.get(j).copied().unwrap_or(usize::MAX);
            if next_keyed < next_open {
                out.push(next_keyed);
                i += 1;
            } else {
                out.push(next_open);
                j += 1;
            }
        }
        out
    }

    /// All rules for a predicate.
    pub fn rules_for(&self, pred: Symbol, arity: usize) -> Vec<usize> {
        self.by_pred
            .get(&(pred, arity))
            .cloned()
            .unwrap_or_default()
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True iff there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The set of derivable predicates (head predicates with arities).
    pub fn head_predicates(&self) -> Vec<(Symbol, usize)> {
        let mut out: Vec<(Symbol, usize)> = self.by_pred.keys().copied().collect();
        out.sort();
        out
    }

    /// True iff any rule uses negation.
    pub fn has_negation(&self) -> bool {
        self.rules.iter().any(Rule::has_negation)
    }
}

/// Read-only access to an indexed clause collection.
///
/// Both a whole [`CompiledProgram`] and a [`ClauseOverlay`] (a shared
/// base extended by a small private tail) implement this, so the
/// evaluation engines can run over either without cloning: a query that
/// needs a handful of auxiliary clauses layers them over the shared
/// program instead of copying it.
pub trait ClauseView {
    /// The rule at position `idx` (`0..len()`).
    fn rule(&self, idx: usize) -> &Rule;
    /// Number of clauses.
    fn len(&self) -> usize;
    /// True iff there are no clauses.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Whether `pred` is an evaluable built-in.
    fn is_builtin(&self, pred: Symbol) -> bool;
    /// Candidate clauses for a goal (see [`CompiledProgram::candidates`]).
    fn candidates(&self, pred: Symbol, arity: usize, first_arg: Option<&RTerm>) -> Vec<usize>;
    /// Candidate clauses for a goal with bound argument positions (see
    /// [`CompiledProgram::candidates_bound`]). The default is the
    /// unindexed sound fallback: every clause of the predicate.
    fn candidates_bound(&self, pred: Symbol, arity: usize, keys: &[(u32, ArgKey)]) -> Vec<usize> {
        let _ = keys;
        self.rules_for(pred, arity)
    }
    /// All rules for a predicate.
    fn rules_for(&self, pred: Symbol, arity: usize) -> Vec<usize>;
    /// The set of derivable predicates (head predicates with arities).
    fn head_predicates(&self) -> Vec<(Symbol, usize)>;
    /// True iff any rule uses negation.
    fn has_negation(&self) -> bool;
}

impl ClauseView for CompiledProgram {
    fn rule(&self, idx: usize) -> &Rule {
        &self.rules[idx]
    }
    fn len(&self) -> usize {
        CompiledProgram::len(self)
    }
    fn is_builtin(&self, pred: Symbol) -> bool {
        CompiledProgram::is_builtin(self, pred)
    }
    fn candidates(&self, pred: Symbol, arity: usize, first_arg: Option<&RTerm>) -> Vec<usize> {
        CompiledProgram::candidates(self, pred, arity, first_arg)
    }
    fn candidates_bound(&self, pred: Symbol, arity: usize, keys: &[(u32, ArgKey)]) -> Vec<usize> {
        CompiledProgram::candidates_bound(self, pred, arity, keys)
    }
    fn rules_for(&self, pred: Symbol, arity: usize) -> Vec<usize> {
        CompiledProgram::rules_for(self, pred, arity)
    }
    fn head_predicates(&self) -> Vec<(Symbol, usize)> {
        CompiledProgram::head_predicates(self)
    }
    fn has_negation(&self) -> bool {
        CompiledProgram::has_negation(self)
    }
}

/// A copy-on-write clause overlay: a borrowed, immutable base program plus
/// a small private tail of appended clauses.
///
/// Tail clauses are numbered `base.len()..`, exactly as if they had been
/// pushed onto the base — per-rule statistics indexed by clause position
/// are unaffected by whether a clause lives in the base or the tail. This
/// replaces the clone-push-solve and push-solve-truncate patterns for
/// query-local auxiliary clauses: the base stays shared (and can sit
/// behind an `Arc` used by many threads), and a query allocates only its
/// own aux clauses.
pub struct ClauseOverlay<'a, P: ClauseView = CompiledProgram> {
    base: &'a P,
    base_len: usize,
    tail: CompiledProgram,
}

impl<'a, P: ClauseView> ClauseOverlay<'a, P> {
    /// Creates an empty overlay over `base`.
    pub fn new(base: &'a P) -> ClauseOverlay<'a, P> {
        ClauseOverlay {
            base,
            base_len: base.len(),
            tail: CompiledProgram::default(),
        }
    }

    /// Compiles and appends one clause to the private tail.
    pub fn push_clause(&mut self, c: &FoClause) {
        self.tail.push_clause(c);
    }

    /// Appends a compiled rule to the private tail.
    pub fn push_rule(&mut self, rule: Rule) {
        self.tail.push_rule(rule);
    }

    /// The shared base program.
    pub fn base(&self) -> &P {
        self.base
    }

    /// Number of clauses in the private tail.
    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }
}

impl<P: ClauseView> ClauseView for ClauseOverlay<'_, P> {
    fn rule(&self, idx: usize) -> &Rule {
        if idx < self.base_len {
            self.base.rule(idx)
        } else {
            &self.tail.rules[idx - self.base_len]
        }
    }
    fn len(&self) -> usize {
        self.base_len + self.tail.len()
    }
    fn is_builtin(&self, pred: Symbol) -> bool {
        self.base.is_builtin(pred) || self.tail.is_builtin(pred)
    }
    fn candidates(&self, pred: Symbol, arity: usize, first_arg: Option<&RTerm>) -> Vec<usize> {
        let mut out = self.base.candidates(pred, arity, first_arg);
        // Tail indices are all >= base_len, so appending keeps the
        // combined list in ascending source order.
        out.extend(
            self.tail
                .candidates(pred, arity, first_arg)
                .into_iter()
                .map(|i| i + self.base_len),
        );
        out
    }
    fn candidates_bound(&self, pred: Symbol, arity: usize, keys: &[(u32, ArgKey)]) -> Vec<usize> {
        let mut out = self.base.candidates_bound(pred, arity, keys);
        out.extend(
            self.tail
                .candidates_bound(pred, arity, keys)
                .into_iter()
                .map(|i| i + self.base_len),
        );
        out
    }
    fn rules_for(&self, pred: Symbol, arity: usize) -> Vec<usize> {
        let mut out = self.base.rules_for(pred, arity);
        out.extend(
            self.tail
                .rules_for(pred, arity)
                .into_iter()
                .map(|i| i + self.base_len),
        );
        out
    }
    fn head_predicates(&self) -> Vec<(Symbol, usize)> {
        let mut out = self.base.head_predicates();
        out.extend(self.tail.head_predicates());
        out.sort();
        out.dedup();
        out
    }
    fn has_negation(&self) -> bool {
        self.base.has_negation() || self.tail.has_negation()
    }
}

/// Shifts all variables in an atom by `offset` — instantiating a fresh
/// activation of a rule whose variables are `0..n_vars`.
pub fn shift_atom(a: &RAtom, offset: VarId) -> RAtom {
    RAtom {
        pred: a.pred,
        args: a.args.iter().map(|t| shift_term(t, offset)).collect(),
    }
}

/// Shifts all variables in a term by `offset`.
pub fn shift_term(t: &RTerm, offset: VarId) -> RTerm {
    match t {
        RTerm::Var(v) => RTerm::Var(v + offset),
        RTerm::Const(_) => t.clone(),
        RTerm::App(f, args) => RTerm::App(*f, args.iter().map(|x| shift_term(x, offset)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::fol::{FoAtom, FoTerm};
    use clogic_core::symbol::sym;

    fn program() -> FoProgram {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(FoAtom::new(
            "edge",
            vec![FoTerm::constant("a"), FoTerm::constant("b")],
        )));
        p.push(FoClause::fact(FoAtom::new(
            "edge",
            vec![FoTerm::constant("b"), FoTerm::constant("c")],
        )));
        p.push(FoClause::rule(
            FoAtom::new("path", vec![FoTerm::var("X"), FoTerm::var("Y")]),
            vec![FoAtom::new(
                "edge",
                vec![FoTerm::var("X"), FoTerm::var("Y")],
            )],
        ));
        p.push(FoClause::rule(
            FoAtom::new("path", vec![FoTerm::var("X"), FoTerm::var("Z")]),
            vec![
                FoAtom::new("edge", vec![FoTerm::var("X"), FoTerm::var("Y")]),
                FoAtom::new("path", vec![FoTerm::var("Y"), FoTerm::var("Z")]),
            ],
        ));
        p
    }

    #[test]
    fn compile_renames_to_dense_vars() {
        let cp = CompiledProgram::compile(&program(), []);
        assert_eq!(cp.len(), 4);
        let transitive = &cp.rules[3];
        assert_eq!(transitive.n_vars, 3);
        assert_eq!(
            transitive.to_string(),
            "path(_G0, _G1) :- edge(_G0, _G2), path(_G2, _G1)."
        );
        assert!(cp.rules[0].is_fact());
        assert!(!transitive.is_fact());
    }

    #[test]
    fn first_arg_indexing_selects_facts() {
        let cp = CompiledProgram::compile(&program(), []);
        let a = RTerm::Const(Const::Sym(sym("a")));
        let hits = cp.candidates(sym("edge"), 2, Some(&a));
        assert_eq!(hits, vec![0]); // only edge(a,b)
                                   // unbound first argument: all edge clauses
        assert_eq!(cp.candidates(sym("edge"), 2, None), vec![0, 1]);
        // path heads have variable first args: always candidates
        assert_eq!(cp.candidates(sym("path"), 2, Some(&a)), vec![2, 3]);
    }

    #[test]
    fn candidates_bound_selects_through_best_position() {
        let cp = CompiledProgram::compile(&program(), []);
        let a = ArgKey::Const(Const::Sym(sym("a")));
        let b = ArgKey::Const(Const::Sym(sym("b")));
        // position 0 = a pins the first edge fact
        assert_eq!(cp.candidates_bound(sym("edge"), 2, &[(0, a)]), vec![0]);
        // position 1 = b likewise — second-argument indexing now works
        assert_eq!(cp.candidates_bound(sym("edge"), 2, &[(1, b)]), vec![0]);
        // with both bound the smaller candidate list wins (both are
        // singletons here; the answer must stay exact either way)
        assert_eq!(
            cp.candidates_bound(sym("edge"), 2, &[(0, a), (1, b)]),
            vec![0]
        );
        // variable-headed clauses are always candidates
        assert_eq!(cp.candidates_bound(sym("path"), 2, &[(0, a)]), vec![2, 3]);
        // no keys: every clause of the predicate
        assert_eq!(cp.candidates_bound(sym("edge"), 2, &[]), vec![0, 1]);
    }

    #[test]
    fn scan_mode_disables_clause_indexing() {
        let mut cp = CompiledProgram::compile(&program(), []);
        let a = ArgKey::Const(Const::Sym(sym("a")));
        assert_eq!(cp.index_mode(), IndexMode::Indexed);
        cp.set_index_mode(IndexMode::Scan);
        assert_eq!(cp.candidates_bound(sym("edge"), 2, &[(0, a)]), vec![0, 1]);
        let first = RTerm::Const(Const::Sym(sym("a")));
        assert_eq!(cp.candidates(sym("edge"), 2, Some(&first)), vec![0, 1]);
    }

    #[test]
    fn candidates_respect_arity() {
        let cp = CompiledProgram::compile(&program(), []);
        assert!(cp.candidates(sym("edge"), 3, None).is_empty());
        assert!(cp.candidates(sym("nope"), 2, None).is_empty());
    }

    #[test]
    fn functor_keys_distinguish_compounds() {
        let mut p = FoProgram::new();
        p.push(FoClause::fact(FoAtom::new(
            "obj",
            vec![FoTerm::App(sym("id"), vec![FoTerm::constant("a")])],
        )));
        p.push(FoClause::fact(FoAtom::new(
            "obj",
            vec![FoTerm::App(sym("mk"), vec![FoTerm::constant("a")])],
        )));
        let cp = CompiledProgram::compile(&p, []);
        let goal_arg = RTerm::App(sym("id"), vec![RTerm::Var(0)]);
        assert_eq!(cp.candidates(sym("obj"), 1, Some(&goal_arg)), vec![0]);
    }

    #[test]
    fn shift_standardizes_apart() {
        let cp = CompiledProgram::compile(&program(), []);
        let r = &cp.rules[3];
        let shifted = shift_atom(&r.head, 10);
        assert_eq!(shifted.to_string(), "path(_G10, _G11)");
        let also = shift_term(&RTerm::Const(Const::Int(5)), 10);
        assert_eq!(also, RTerm::Const(Const::Int(5)));
    }

    #[test]
    fn builtins_are_registered() {
        let cp = CompiledProgram::compile(&program(), [sym("is")]);
        assert!(cp.is_builtin(sym("is")));
        assert!(!cp.is_builtin(sym("edge")));
    }

    #[test]
    fn truncate_unwinds_overlay_clauses() {
        let mut cp = CompiledProgram::compile(&program(), []);
        let base = cp.len();
        let before: Vec<usize> = cp.candidates(sym("edge"), 2, None);
        // Overlay: a new edge fact, a var-headed rule, and a whole new
        // predicate — each exercises a different index map.
        cp.push_clause(&FoClause::fact(FoAtom::new(
            "edge",
            vec![FoTerm::constant("c"), FoTerm::constant("d")],
        )));
        cp.push_clause(&FoClause::rule(
            FoAtom::new("path", vec![FoTerm::var("X"), FoTerm::var("X")]),
            vec![FoAtom::new("edge", vec![FoTerm::var("X"), FoTerm::var("X")])],
        ));
        cp.push_clause(&FoClause::fact(FoAtom::new(
            "aux",
            vec![FoTerm::constant("z")],
        )));
        assert_eq!(cp.len(), base + 3);
        assert_eq!(cp.candidates(sym("edge"), 2, None).len(), 3);
        assert_eq!(cp.candidates(sym("aux"), 1, None), vec![base + 2]);
        cp.truncate(base);
        assert_eq!(cp.len(), base);
        assert_eq!(cp.candidates(sym("edge"), 2, None), before);
        assert!(cp.candidates(sym("aux"), 1, None).is_empty());
        assert_eq!(cp.candidates(sym("path"), 2, None), vec![2, 3]);
        // truncating to the current length is a no-op
        cp.truncate(base + 10);
        assert_eq!(cp.len(), base);
    }

    #[test]
    fn head_predicates() {
        let cp = CompiledProgram::compile(&program(), []);
        assert_eq!(
            cp.head_predicates(),
            vec![(sym("edge"), 2), (sym("path"), 2)]
        );
    }

    #[test]
    fn overlay_extends_base_without_mutating_it() {
        let cp = CompiledProgram::compile(&program(), []);
        let base_len = cp.len();
        let base_edges = cp.candidates(sym("edge"), 2, None);
        let mut ov = ClauseOverlay::new(&cp);
        ov.push_clause(&FoClause::fact(FoAtom::new(
            "edge",
            vec![FoTerm::constant("c"), FoTerm::constant("d")],
        )));
        ov.push_clause(&FoClause::fact(FoAtom::new(
            "aux",
            vec![FoTerm::constant("z")],
        )));
        // Overlay sees base + tail with tail indices one past the base.
        assert_eq!(ClauseView::len(&ov), base_len + 2);
        assert_eq!(ov.tail_len(), 2);
        assert_eq!(
            ClauseView::candidates(&ov, sym("edge"), 2, None),
            vec![0, 1, base_len]
        );
        assert_eq!(
            ClauseView::rules_for(&ov, sym("aux"), 1),
            vec![base_len + 1]
        );
        assert_eq!(
            ClauseView::rule(&ov, base_len + 1).head.pred,
            sym("aux")
        );
        assert_eq!(
            ClauseView::head_predicates(&ov),
            vec![(sym("aux"), 1), (sym("edge"), 2), (sym("path"), 2)]
        );
        // The base is untouched.
        assert_eq!(cp.len(), base_len);
        assert_eq!(cp.candidates(sym("edge"), 2, None), base_edges);
    }

    #[test]
    fn overlay_first_arg_indexing_covers_tail() {
        let cp = CompiledProgram::compile(&program(), []);
        let base_len = cp.len();
        let mut ov = ClauseOverlay::new(&cp);
        ov.push_clause(&FoClause::fact(FoAtom::new(
            "edge",
            vec![FoTerm::constant("a"), FoTerm::constant("z")],
        )));
        let a = RTerm::Const(Const::Sym(sym("a")));
        assert_eq!(
            ClauseView::candidates(&ov, sym("edge"), 2, Some(&a)),
            vec![0, base_len]
        );
    }
}
