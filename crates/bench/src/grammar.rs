//! Scaled versions of the paper's Example 3 grammar — the E3 workload
//! (redundancy elimination) and a general rule-heavy program family.

use clogic_core::formula::{Atomic, DefiniteClause};
use clogic_core::program::Program;
use clogic_core::term::{LabelSpec, Term};

/// A grammar with `dets` determiners, `nouns` nouns and `names` proper
/// names; determiners and nouns alternate between singular and plural so
/// roughly half the noun pairs agree in number.
pub fn grammar(dets: usize, nouns: usize, names: usize) -> Program {
    let mut p = Program::new();
    p.declare_subtype("propernp", "noun_phrase");
    p.declare_subtype("commonnp", "noun_phrase");
    for i in 0..names {
        p.push(DefiniteClause::fact(Atomic::term(Term::typed_constant(
            "name",
            format!("name{i}").as_str(),
        ))));
    }
    for i in 0..dets {
        let num = if i % 2 == 0 { "singular" } else { "plural" };
        let def = if i % 3 == 0 { "definite" } else { "indef" };
        p.push(DefiniteClause::fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("determiner", format!("det{i}").as_str()),
                vec![
                    LabelSpec::one("num", Term::constant(num)),
                    LabelSpec::one("def", Term::constant(def)),
                ],
            )
            .expect("identity head"),
        )));
    }
    for i in 0..nouns {
        let num = if i % 2 == 0 { "singular" } else { "plural" };
        p.push(DefiniteClause::fact(Atomic::term(
            Term::molecule(
                Term::typed_constant("noun", format!("noun{i}").as_str()),
                vec![LabelSpec::one("num", Term::constant(num))],
            )
            .expect("identity head"),
        )));
    }
    let rules = "
        propernp: X[pers => 3, num => singular, def => definite] :- name: X.
        commonnp: np(Det, Noun)[pers => 3, num => N, def => D] :-
            determiner: Det[num => N, def => D],
            noun: Noun[num => N].
    ";
    let parsed = clogic_parser::parse_program(rules).expect("rules parse");
    p.clauses.extend(parsed.clauses);
    p
}

/// The paper's query over the scaled grammar.
pub fn plural_query() -> &'static str {
    "noun_phrase: X[num => plural]"
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic::{Session, Strategy};

    #[test]
    fn scaled_grammar_answer_counts() {
        // dets 0..4 → plural dets: det1, det3; nouns 0..4 → plural nouns:
        // noun1, noun3 ⇒ 4 plural common NPs; no plural proper NPs.
        let mut s = Session::new();
        s.load_program(grammar(4, 4, 3));
        let r = s
            .query(plural_query(), Strategy::BottomUpSemiNaive)
            .unwrap();
        assert_eq!(r.rows.len(), 4);
        // singular: 3 proper names + 2×2 common NPs
        let r2 = s
            .query(
                "noun_phrase: X[num => singular]",
                Strategy::BottomUpSemiNaive,
            )
            .unwrap();
        assert_eq!(r2.rows.len(), 7);
    }

    #[test]
    fn direct_engine_agrees_on_scaled_grammar() {
        let mut s = Session::new();
        s.load_program(grammar(6, 6, 2));
        let bu = s
            .query(plural_query(), Strategy::BottomUpSemiNaive)
            .unwrap();
        let direct = s.query(plural_query(), Strategy::Direct).unwrap();
        assert_eq!(bu.rows, direct.rows);
        assert!(!bu.rows.is_empty());
    }
}
