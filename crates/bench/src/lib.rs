//! # clogic-bench — workload generators and the experiment harness
//!
//! The paper is purely theoretical, so the experiments (E1–E8 in
//! DESIGN.md) reproduce its *performance claims* rather than numeric
//! tables. This crate provides deterministic workload generators — graph
//! databases for the `path` rules, synthetic complex-object stores,
//! scaled grammar programs, type-hierarchy ladders — plus the measurement
//! plumbing shared by the Criterion benches and the `experiments` binary
//! that prints the EXPERIMENTS.md tables.

#![warn(missing_docs)]

pub mod grammar;
pub mod graphs;
pub mod measure;
pub mod objects;
pub mod typed;
