//! Synthetic complex-object databases: the E1/E2 workloads.

use clogic_core::formula::{Atomic, DefiniteClause};
use clogic_core::program::Program;
use clogic_core::term::{LabelSpec, Term};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Label name `l{j}`.
pub fn label(j: usize) -> String {
    format!("l{j}")
}

/// Object name `o{i}`.
pub fn object(i: usize) -> String {
    format!("o{i}")
}

/// An extensional database of `n` objects of type `item`, each with `k`
/// functional labels `l0..l{k-1}`; values are drawn from a pool of
/// `value_pool` constants, deterministic in `seed`.
///
/// The E1 workload: "most labels are functional or single-valued" (§4) —
/// the case where direct evaluation of a clustered molecule wins over the
/// flattened first-order program.
pub fn functional_objects(n: usize, k: usize, value_pool: usize, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Program::new();
    for i in 0..n {
        let specs: Vec<LabelSpec> = (0..k)
            .map(|j| {
                let v = rng.gen_range(0..value_pool);
                LabelSpec::one(label(j).as_str(), Term::constant(format!("v{v}").as_str()))
            })
            .collect();
        p.push(DefiniteClause::fact(Atomic::term(
            Term::molecule(Term::typed_constant("item", object(i).as_str()), specs)
                .expect("identity head"),
        )));
    }
    p
}

/// The value carried by `object(i)` under `label(j)` in
/// [`functional_objects`] — regenerated deterministically so benches can
/// build *hitting* point queries without storing the database twice.
pub fn functional_value(
    n: usize,
    k: usize,
    value_pool: usize,
    seed: u64,
    i: usize,
    j: usize,
) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut value = 0;
    for oi in 0..n.min(i + 1) {
        for jj in 0..k {
            let v = rng.gen_range(0..value_pool);
            if oi == i && jj == j {
                value = v;
            }
        }
    }
    format!("v{value}")
}

/// A point query for object `i`: all `k` labels bound to the stored
/// values — the molecule a user would write, exercising clustering.
pub fn point_query(n: usize, k: usize, value_pool: usize, seed: u64, i: usize) -> String {
    let specs: Vec<String> = (0..k)
        .map(|j| {
            format!(
                "{} => {}",
                label(j),
                functional_value(n, k, value_pool, seed, i, j)
            )
        })
        .collect();
    format!("item: {}[{}]", object(i), specs.join(", "))
}

/// An open query: enumerate every object with all `k` labels unbound.
pub fn open_query(k: usize) -> String {
    let specs: Vec<String> = (0..k).map(|j| format!("{} => V{j}", label(j))).collect();
    format!("item: X[{}]", specs.join(", "))
}

/// The E2 workload: each object's description is split across `pieces`
/// *rules* (one label pair per rule), so answering a whole-molecule query
/// requires residuation — no single source carries the full description.
pub fn split_descriptions(n: usize, pieces: usize) -> Program {
    let mut p = Program::new();
    p.push(DefiniteClause::fact(Atomic::term(Term::typed_constant(
        "seed", "go",
    ))));
    for i in 0..n {
        // the object exists extensionally with its type…
        p.push(DefiniteClause::fact(Atomic::term(Term::typed_constant(
            "item",
            object(i).as_str(),
        ))));
        // …but each label pair is derived by its own rule.
        for j in 0..pieces {
            p.push(DefiniteClause::rule(
                Atomic::term(
                    Term::molecule(
                        Term::typed_constant("item", object(i).as_str()),
                        vec![LabelSpec::one(
                            label(j).as_str(),
                            Term::constant(format!("w{i}_{j}").as_str()),
                        )],
                    )
                    .expect("identity head"),
                ),
                vec![Atomic::term(Term::typed_var("seed", "S"))],
            ));
        }
    }
    p
}

/// The merged counterpart of [`split_descriptions`]: the same label pairs
/// as one extensional molecule per object.
pub fn merged_descriptions(n: usize, pieces: usize) -> Program {
    let mut p = Program::new();
    for i in 0..n {
        let specs: Vec<LabelSpec> = (0..pieces)
            .map(|j| {
                LabelSpec::one(
                    label(j).as_str(),
                    Term::constant(format!("w{i}_{j}").as_str()),
                )
            })
            .collect();
        p.push(DefiniteClause::fact(Atomic::term(
            Term::molecule(Term::typed_constant("item", object(i).as_str()), specs)
                .expect("identity head"),
        )));
    }
    p
}

/// The whole-molecule query for object `i` of the E2 workloads.
pub fn split_query(i: usize, pieces: usize) -> String {
    let specs: Vec<String> = (0..pieces)
        .map(|j| format!("{} => w{i}_{j}", label(j)))
        .collect();
    format!("item: {}[{}]", object(i), specs.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic::{Session, Strategy};

    #[test]
    fn functional_objects_deterministic_and_sized() {
        let a = functional_objects(10, 3, 5, 7);
        let b = functional_objects(10, 3, 5, 7);
        assert_eq!(a, b);
        assert_eq!(a.clauses.len(), 10);
    }

    #[test]
    fn point_query_hits_its_object() {
        let (n, k, pool, seed) = (20, 3, 4, 11);
        let p = functional_objects(n, k, pool, seed);
        let mut s = Session::new();
        s.load_program(p);
        for i in [0, 7, 19] {
            let q = point_query(n, k, pool, seed, i);
            assert!(s.query(&q, Strategy::Direct).unwrap().holds(), "{q}");
        }
    }

    #[test]
    fn open_query_enumerates_all() {
        let (n, k, pool, seed) = (15, 2, 100, 3);
        // large pool → all values distinct with high probability; the
        // query still returns one row per object
        let p = functional_objects(n, k, pool, seed);
        let mut s = Session::new();
        s.load_program(p);
        let r = s.query(&open_query(k), Strategy::Direct).unwrap();
        assert_eq!(r.rows.len(), n);
    }

    #[test]
    fn split_and_merged_agree() {
        let (n, pieces) = (5, 3);
        let mut split = Session::new();
        split.load_program(split_descriptions(n, pieces));
        let mut merged = Session::new();
        merged.load_program(merged_descriptions(n, pieces));
        for i in 0..n {
            let q = split_query(i, pieces);
            for strategy in [
                Strategy::Direct,
                Strategy::BottomUpSemiNaive,
                Strategy::Tabled,
            ] {
                assert!(
                    split.query(&q, strategy).unwrap().holds(),
                    "{q} split {strategy:?}"
                );
                assert!(
                    merged.query(&q, strategy).unwrap().holds(),
                    "{q} merged {strategy:?}"
                );
            }
        }
        // and a cross-object molecule fails in both
        let bad = "item: o0[l0 => w1_0]";
        assert!(!split.query(bad, Strategy::Direct).unwrap().holds());
        assert!(!merged.query(bad, Strategy::Direct).unwrap().holds());
    }

    #[test]
    fn split_requires_residuation() {
        // With pieces > 1 no single rule head carries the whole molecule:
        // the direct engine must residuate (stats show residuals > 0).
        use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
        use folog::builtins::builtin_symbols;
        let p = split_descriptions(2, 3);
        let dp = DirectProgram::compile(&p, builtin_symbols());
        let e = DirectEngine::new(&dp, DirectOptions::default());
        let q = clogic_parser::parse_query(&split_query(0, 3)).unwrap();
        let r = e.solve(&q).unwrap();
        assert_eq!(r.answers.len(), 1);
        assert!(
            r.stats.residuals > 0,
            "no residuation happened: {:?}",
            r.stats
        );
    }
}
