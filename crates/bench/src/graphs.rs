//! Graph workloads for the `path` experiments (§2.1 rules).

use clogic_core::formula::{Atomic, DefiniteClause};
use clogic_core::program::Program;
use clogic_core::term::{LabelSpec, Term};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Node name `n{i}`.
pub fn node(i: usize) -> String {
    format!("n{i}")
}

/// A single `node: from[linkto => to]` fact, for hand-built deltas.
pub fn link(from: &str, to: &str) -> DefiniteClause {
    link_fact(from, to)
}

fn link_fact(from: &str, to: &str) -> DefiniteClause {
    DefiniteClause::fact(Atomic::term(
        Term::molecule(
            Term::typed_constant("node", from),
            vec![LabelSpec::one("linkto", Term::constant(to))],
        )
        .expect("identity head"),
    ))
}

/// A chain `n0 → n1 → … → n{n}`.
pub fn chain(n: usize) -> Program {
    let mut p = Program::new();
    for i in 0..n {
        p.push(link_fact(&node(i), &node(i + 1)));
    }
    p
}

/// A cycle over `n` nodes.
pub fn cycle(n: usize) -> Program {
    let mut p = chain(n - 1);
    p.push(link_fact(&node(n - 1), &node(0)));
    p
}

/// Two disconnected chains of `n` edges each; queries over the first
/// component leave the second untouched for goal-directed strategies.
pub fn two_chains(n: usize) -> Program {
    let mut p = chain(n);
    for i in 0..n {
        p.push(link_fact(&format!("m{i}"), &format!("m{}", i + 1)));
    }
    p
}

/// `chains` disjoint chains of `len` edges each (nodes `c{c}n{i}`): a
/// large fact base whose `path` closure stays linear in the input —
/// the serving workload for the incremental benchmarks (one appended
/// edge only extends one component).
pub fn disjoint_chains(chains: usize, len: usize) -> Program {
    let mut p = Program::new();
    for c in 0..chains {
        for i in 0..len {
            p.push(link_fact(&format!("c{c}n{i}"), &format!("c{c}n{}", i + 1)));
        }
    }
    p
}

/// A random digraph with `n` nodes and `edges` edges (no self-loops),
/// deterministic in `seed`.
pub fn random_digraph(n: usize, edges: usize, seed: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut p = Program::new();
    let mut seen = std::collections::HashSet::new();
    while seen.len() < edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && seen.insert((a, b)) {
            p.push(link_fact(&node(a), &node(b)));
        }
    }
    p
}

/// A "ladder" DAG of `rungs` rungs: every rung has two parallel edges
/// (upper/lower), so endpoint pairs are connected by routes of *several
/// distinct lengths* — the workload separating the paper's identity
/// semantics (by endpoints vs by endpoints-plus-length).
pub fn ladder(rungs: usize) -> Program {
    let mut p = Program::new();
    for i in 0..rungs {
        let a = node(i);
        let b = node(i + 1);
        // direct edge and a two-step detour via v{i}
        p.push(link_fact(&a, &b));
        p.push(link_fact(&a, &format!("v{i}")));
        p.push(link_fact(&format!("v{i}"), &b));
    }
    p
}

/// The §2.1 path rules with identities by endpoints: `id(X, Y)`.
pub fn path_rules_by_endpoints() -> &'static str {
    "path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].\n\
     path: id(X, Y)[src => X, dest => Y] :-\n\
         node: X[linkto => Z], path: id(Z, Y)[src => Z, dest => Y].\n"
}

/// The §2.1 path rules with identities by endpoints and length:
/// `id(X, Y, L)`.
pub fn path_rules_by_endpoints_and_length() -> &'static str {
    "path: id(X, Y, 1)[src => X, dest => Y, length => 1] :- node: X[linkto => Y].\n\
     path: id(X, Y, L)[src => X, dest => Y, length => L] :-\n\
         node: X[linkto => Z],\n\
         path: id(Z, Y, LO)[src => Z, dest => Y, length => LO],\n\
         L is LO + 1.\n"
}

/// Appends rule text to a generated fact base.
pub fn with_rules(facts: &Program, rules: &str) -> Program {
    let mut p = facts.clone();
    let parsed = clogic_parser::parse_program(rules).expect("rule text parses");
    p.subtype_decls.extend(parsed.subtype_decls);
    p.clauses.extend(parsed.clauses);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let p = chain(3);
        assert_eq!(p.clauses.len(), 3);
        assert!(p.to_string().contains("node: n0[linkto => n1]."));
    }

    #[test]
    fn cycle_closes() {
        let p = cycle(4);
        assert_eq!(p.clauses.len(), 4);
        assert!(p.to_string().contains("node: n3[linkto => n0]."));
    }

    #[test]
    fn random_digraph_is_deterministic() {
        let a = random_digraph(10, 20, 42);
        let b = random_digraph(10, 20, 42);
        assert_eq!(a, b);
        assert_eq!(a.clauses.len(), 20);
        let c = random_digraph(10, 20, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn ladder_has_multiple_lengths() {
        // n0 → n1 directly (length 1) and via v0 (length 2)
        let p = with_rules(&ladder(1), path_rules_by_endpoints_and_length());
        let mut s = clogic::Session::new();
        s.load_program(p);
        let r = s
            .query(
                "path: P[src => n0, dest => n1, length => L]",
                clogic::Strategy::BottomUpSemiNaive,
            )
            .unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn rules_parse_and_run() {
        let p = with_rules(&chain(4), path_rules_by_endpoints());
        let mut s = clogic::Session::new();
        s.load_program(p);
        let r = s
            .query(
                "path: P[src => n0, dest => n4]",
                clogic::Strategy::BottomUpSemiNaive,
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn two_chains_disconnected() {
        let p = with_rules(&two_chains(3), path_rules_by_endpoints());
        let mut s = clogic::Session::new();
        s.load_program(p);
        assert!(!s
            .query(
                "path: P[src => n0, dest => m3]",
                clogic::Strategy::BottomUpSemiNaive
            )
            .unwrap()
            .holds());
    }
}
