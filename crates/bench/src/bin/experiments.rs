//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p clogic-bench --bin experiments            # all
//! cargo run --release -p clogic-bench --bin experiments -- e1 e4  # some
//! ```
//!
//! The paper (Chen & Warren, PODS 1989) has no numeric tables; each
//! experiment here operationalizes one of its performance claims (see
//! DESIGN.md §5) and prints both wall-clock times and machine-independent
//! operation counts.

use clogic_bench::measure::{self, print_table, us, Run};
use clogic_bench::{grammar, graphs, objects, typed};
use clogic_core::optimize::typing_atom_count;
use clogic_engine::DirectOptions;
use folog::{SldOptions, Strategy as Fixpoint};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    println!("# C-logic experiments (Chen & Warren, PODS 1989)");
    if want("e1") {
        e1_direct_vs_translated();
    }
    if want("e2") {
        e2_residuation();
    }
    if want("e3") {
        e3_redundancy_elimination();
    }
    if want("e4") {
        e4_order_sorted();
    }
    if want("e5") {
        e5_fixpoint_and_tabling();
    }
    if want("e6") {
        e6_identity_semantics();
    }
    if want("e7") {
        e7_transformation_cost();
    }
    if want("e9") {
        e9_stratified_negation();
    }
}

fn fmt_run(r: &Run) -> (String, String) {
    (us(r.wall), r.work.to_string())
}

/// E1 — §4: direct evaluation of functional-label molecules vs SLD over
/// the flattened first-order program ("whose direct evaluation using SLD
/// resolution directly would be very inefficient").
fn e1_direct_vs_translated() {
    let mut rows = Vec::new();
    let (k, pool, seed) = (4usize, 8usize, 17u64);
    for n in [100usize, 400, 1600] {
        let p = objects::functional_objects(n, k, pool, seed);
        let point = objects::point_query(n, k, pool, seed, n / 2);
        let open = objects::open_query(k);
        for (qname, q) in [("point", point.as_str()), ("open", open.as_str())] {
            let direct =
                measure::best_of(5, || measure::run_direct(&p, q, DirectOptions::default()));
            let sld = measure::run_sld(&p, q, true, SldOptions::default());
            // SLD may exhaust its 10M-step budget before enumerating all
            // answers — that *is* the paper's "very inefficient" claim at
            // scale; when it completes, the answer sets must agree.
            if sld.complete {
                assert_eq!(direct.answers, sld.answers, "E1 answer mismatch");
            }
            let (dw, dops) = fmt_run(&direct);
            let (sw, sops) = fmt_run(&sld);
            let speedup = sld.wall.as_secs_f64() / direct.wall.as_secs_f64().max(1e-9);
            rows.push(vec![
                n.to_string(),
                qname.into(),
                direct.answers.to_string(),
                dw,
                dops,
                if sld.complete {
                    sld.answers.to_string()
                } else {
                    format!("{} (cut off)", sld.answers)
                },
                sw,
                sops,
                format!("{speedup:.1}x"),
            ]);
        }
    }
    print_table(
        "E1 — direct molecules vs translated SLD (k=4 functional labels)",
        &[
            "n",
            "query",
            "direct answers",
            "direct µs",
            "direct ops",
            "sld answers",
            "sld µs",
            "sld ops",
            "sld/direct",
        ],
        &rows,
    );
}

/// E2 — §4: residuation solves whole-molecule queries whose description
/// is split across rules; cost vs the merged extensional store.
fn e2_residuation() {
    let mut rows = Vec::new();
    let n = 50usize;
    for pieces in [2usize, 4, 8] {
        let split = objects::split_descriptions(n, pieces);
        let merged = objects::merged_descriptions(n, pieces);
        let q = objects::split_query(n / 2, pieces);
        let r_split = measure::best_of(5, || {
            measure::run_direct(&split, &q, DirectOptions::default())
        });
        let r_merged = measure::best_of(5, || {
            measure::run_direct(&merged, &q, DirectOptions::default())
        });
        assert_eq!(r_split.answers, 1);
        assert_eq!(r_merged.answers, 1);
        let (sw, sops) = fmt_run(&r_split);
        let (mw, mops) = fmt_run(&r_merged);
        rows.push(vec![
            pieces.to_string(),
            sw,
            sops,
            mw,
            mops,
            format!(
                "{:.1}x",
                r_split.wall.as_secs_f64() / r_merged.wall.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "E2 — residuation (description split across rules) vs merged store (n=50 objects)",
        &[
            "pieces",
            "split µs",
            "split ops",
            "merged µs",
            "merged ops",
            "split/merged",
        ],
        &rows,
    );
}

/// E3 — §4: redundancy elimination shrinks the translated program and the
/// bottom-up evaluation work.
fn e3_redundancy_elimination() {
    let mut rows = Vec::new();
    for scale in [8usize, 32, 128] {
        let p = grammar::grammar(scale, scale, scale / 2);
        let plain = measure::translate(&p, false);
        let optimized = measure::translate(&p, true);
        let types = p.signature().types;
        let mut facts_plain = 0;
        let run_plain = measure::best_of(3, || {
            let (r, f) =
                measure::run_bottom_up(&p, grammar::plural_query(), false, Fixpoint::SemiNaive);
            facts_plain = f;
            r
        });
        let mut facts_opt = 0;
        let run_opt = measure::best_of(3, || {
            let (r, f) =
                measure::run_bottom_up(&p, grammar::plural_query(), true, Fixpoint::SemiNaive);
            facts_opt = f;
            r
        });
        assert_eq!(run_plain.answers, run_opt.answers, "E3 answer mismatch");
        rows.push(vec![
            scale.to_string(),
            format!("{}/{}", plain.len(), optimized.len()),
            format!(
                "{}/{}",
                typing_atom_count(&plain, &types),
                typing_atom_count(&optimized, &types)
            ),
            format!("{}/{}", facts_plain, facts_opt),
            us(run_plain.wall),
            us(run_opt.wall),
            format!(
                "{:.2}x",
                run_plain.wall.as_secs_f64() / run_opt.wall.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "E3 — §4 redundancy elimination (scaled grammar, semi-naive bottom-up)",
        &[
            "scale",
            "clauses plain/opt",
            "typing atoms plain/opt",
            "facts plain/opt",
            "plain µs",
            "opt µs",
            "plain/opt",
        ],
        &rows,
    );
}

/// E4 — §4: order-sorted resolution vs type-axiom clauses on deep
/// hierarchies.
fn e4_order_sorted() {
    let mut rows = Vec::new();
    for depth in [4usize, 16, 64] {
        let p = typed::chain_hierarchy(depth, 200);
        let q = typed::top_query(depth);
        let direct = measure::best_of(5, || measure::run_direct(&p, &q, DirectOptions::default()));
        let (semi, _) = measure::run_bottom_up(&p, &q, true, Fixpoint::SemiNaive);
        let tabled = measure::run_tabled(&p, &q, true);
        assert_eq!(direct.answers, 200);
        assert_eq!(semi.answers, 200);
        assert_eq!(tabled.answers, 200);
        rows.push(vec![
            depth.to_string(),
            us(direct.wall),
            direct.work.to_string(),
            us(semi.wall),
            semi.work.to_string(),
            us(tabled.wall),
            format!(
                "{:.1}x",
                semi.wall.as_secs_f64() / direct.wall.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "E4 — order-sorted (direct) vs type-axiom clauses (translated), 200 members",
        &[
            "depth",
            "direct µs",
            "direct ops",
            "axioms µs",
            "axiom ops",
            "tabled µs",
            "axioms/direct",
        ],
        &rows,
    );
}

/// E5 — semi-naive vs naive bottom-up on recursive `path`; tabling
/// terminates on cyclic graphs where SLD cannot.
fn e5_fixpoint_and_tabling() {
    let mut rows = Vec::new();
    for n in [16usize, 32, 64] {
        let p = graphs::with_rules(&graphs::chain(n), graphs::path_rules_by_endpoints());
        let q = "path: P[src => n0, dest => D]";
        let naive = measure::best_of(3, || measure::run_bottom_up(&p, q, true, Fixpoint::Naive).0);
        let semi =
            measure::best_of(3, || measure::run_bottom_up(&p, q, true, Fixpoint::SemiNaive).0);
        assert_eq!(naive.answers, semi.answers);
        rows.push(vec![
            n.to_string(),
            naive.answers.to_string(),
            us(naive.wall),
            naive.work.to_string(),
            us(semi.wall),
            semi.work.to_string(),
            format!(
                "{:.1}x",
                naive.wall.as_secs_f64() / semi.wall.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "E5a — naive vs semi-naive bottom-up (path over a chain)",
        &[
            "chain n",
            "answers",
            "naive µs",
            "naive ops",
            "semi µs",
            "semi ops",
            "naive/semi",
        ],
        &rows,
    );

    let mut rows = Vec::new();
    for n in [4usize, 8, 16] {
        let p = graphs::with_rules(&graphs::cycle(n), graphs::path_rules_by_endpoints());
        let q = "path: P[src => n0, dest => D]";
        let sld = measure::run_sld(
            &p,
            q,
            true,
            SldOptions {
                max_depth: Some(200),
                max_steps: Some(200_000),
                ..Default::default()
            },
        );
        let tabled = measure::run_tabled(&p, q, true);
        assert_eq!(tabled.answers, n, "tabling finds every node on the cycle");
        rows.push(vec![
            n.to_string(),
            format!(
                "{} ({})",
                sld.answers,
                if sld.complete { "complete" } else { "cut off" }
            ),
            us(sld.wall),
            format!("{} (complete)", tabled.answers),
            us(tabled.wall),
        ]);
    }
    print_table(
        "E5b — cyclic graph: SLD (budget 200k steps) vs tabled evaluation",
        &[
            "cycle n",
            "sld answers",
            "sld µs",
            "tabled answers",
            "tabled µs",
        ],
        &rows,
    );
}

/// E6 — §2.1: the identity choice determines the number of created path
/// objects; endpoints < endpoints+length on graphs with multiple route
/// lengths.
fn e6_identity_semantics() {
    let mut rows = Vec::new();
    for rungs in [4usize, 8, 12] {
        let base = graphs::ladder(rungs);
        let by_ends = graphs::with_rules(&base, graphs::path_rules_by_endpoints());
        let by_len = graphs::with_rules(&base, graphs::path_rules_by_endpoints_and_length());
        let q = "path: P[src => n0, dest => D]";
        let (ends_run, ends_facts) = measure::run_bottom_up(&by_ends, q, true, Fixpoint::SemiNaive);
        let (len_run, len_facts) = measure::run_bottom_up(&by_len, q, true, Fixpoint::SemiNaive);
        rows.push(vec![
            rungs.to_string(),
            ends_run.answers.to_string(),
            len_run.answers.to_string(),
            ends_facts.to_string(),
            len_facts.to_string(),
            us(ends_run.wall),
            us(len_run.wall),
        ]);
    }
    print_table(
        "E6 — identity semantics on a ladder DAG: objects by endpoints vs endpoints+length",
        &[
            "rungs",
            "answers (ends)",
            "answers (ends+len)",
            "facts (ends)",
            "facts (ends+len)",
            "ends µs",
            "ends+len µs",
        ],
        &rows,
    );
}

/// E9 — the negation extension: computing the complement of reachability
/// (`unreachable: X :- node-ish X, \+ reached: X`) costs one extra
/// stratum over the positive fixpoint.
fn e9_stratified_negation() {
    let mut rows = Vec::new();
    for n in [32usize, 64, 128] {
        // Chain n reachable from n0 plus an unreachable m-chain of equal size.
        let base = graphs::two_chains(n);
        let positive = graphs::with_rules(
            &base,
            "reached: n0.\n\
             reached: Y :- reached: X, node: X[linkto => Y].\n",
        );
        let negative = graphs::with_rules(
            &base,
            "reached: n0.\n\
             reached: Y :- reached: X, node: X[linkto => Y].\n\
             unreachable: X :- node: X, \\+ reached: X.\n\
             unreachable: Y :- node: X[linkto => Y], \\+ reached: Y.\n",
        );
        let mut pos_facts = 0;
        let pos_run = measure::best_of(3, || {
            let (r, f) = measure::run_bottom_up(&positive, "reached: X", true, Fixpoint::SemiNaive);
            pos_facts = f;
            r
        });
        let mut neg_facts = 0;
        let neg_run = measure::best_of(3, || {
            let (r, f) =
                measure::run_bottom_up(&negative, "unreachable: X", true, Fixpoint::SemiNaive);
            neg_facts = f;
            r
        });
        // reached: n0..nn (n+1 nodes); unreachable: the m-chain's 2(n+1)-…
        assert_eq!(pos_run.answers, n + 1);
        assert!(neg_run.answers >= n, "complement should cover the m-chain");
        rows.push(vec![
            n.to_string(),
            pos_run.answers.to_string(),
            neg_run.answers.to_string(),
            format!("{}/{}", pos_facts, neg_facts),
            us(pos_run.wall),
            us(neg_run.wall),
            format!(
                "{:.2}x",
                neg_run.wall.as_secs_f64() / pos_run.wall.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(
        "E9 — stratified negation: reachability complement vs positive fixpoint",
        &[
            "chain n",
            "reached",
            "unreachable",
            "facts pos/neg",
            "positive µs",
            "with negation µs",
            "overhead",
        ],
        &rows,
    );
}

/// E7 — the Theorem 1 transformation is linear in program size; measures
/// the clause-splitting factor.
fn e7_transformation_cost() {
    let mut rows = Vec::new();
    let (k, pool, seed) = (4usize, 8usize, 23u64);
    for n in [250usize, 1000, 4000] {
        let p = objects::functional_objects(n, k, pool, seed);
        let start = std::time::Instant::now();
        let fo = measure::translate(&p, false);
        let t_plain = start.elapsed();
        let start = std::time::Instant::now();
        let opt = measure::translate(&p, true);
        let t_opt = start.elapsed();
        rows.push(vec![
            n.to_string(),
            p.atom_count().to_string(),
            fo.len().to_string(),
            opt.len().to_string(),
            us(t_plain),
            us(t_opt),
            format!("{:.2}", fo.len() as f64 / p.atom_count() as f64),
        ]);
    }
    print_table(
        "E7 — transformation cost and clause-splitting factor (k=4 labels)",
        &[
            "n objects",
            "clogic atoms",
            "fo clauses",
            "fo clauses (opt)",
            "plain µs",
            "opt µs",
            "split factor",
        ],
        &rows,
    );
}
