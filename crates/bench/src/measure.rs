//! Measurement plumbing shared by the Criterion benches and the
//! `experiments` binary: run one query under one strategy, returning
//! wall-clock time, the answer count, and the engine's own operation
//! counters (machine-independent work measures).

use clogic_core::optimize::Optimizer;
use clogic_core::program::Program;
use clogic_core::transform::Transformer;
use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
use clogic_parser::parse_query;
use folog::builtins::builtin_symbols;
use folog::magic::solve_magic;
use folog::tabling::{TabledEngine, TablingOptions};
use folog::{
    evaluate, CompiledProgram, FixpointOptions, SldEngine, SldOptions, Strategy as Fixpoint,
};
use std::time::{Duration, Instant};

/// One measured run.
#[derive(Clone, Debug)]
pub struct Run {
    /// Wall-clock time of the query (excludes program compilation).
    pub wall: Duration,
    /// Number of answers.
    pub answers: usize,
    /// Engine-specific operation count (resolution steps, match
    /// attempts, …): the machine-independent work measure.
    pub work: u64,
    /// Whether the search space was exhausted.
    pub complete: bool,
}

/// Translates a program (optionally applying the §4 optimization).
pub fn translate(p: &Program, optimized: bool) -> clogic_core::fol::FoProgram {
    let tr = Transformer::new();
    if optimized {
        Optimizer::new(p).optimized_program(&tr, p)
    } else {
        tr.program(p)
    }
}

/// Direct evaluation over complex objects.
pub fn run_direct(p: &Program, query: &str, opts: DirectOptions) -> Run {
    let dp = DirectProgram::compile(p, builtin_symbols());
    let q = parse_query(query).expect("query parses");
    let start = Instant::now();
    let r = DirectEngine::new(&dp, opts)
        .solve(&q)
        .expect("no builtin errors");
    Run {
        wall: start.elapsed(),
        answers: r.answers.len(),
        work: r.stats.steps + r.stats.piece_matches + r.stats.store_candidates,
        complete: r.complete,
    }
}

/// Translated program under SLD.
pub fn run_sld(p: &Program, query: &str, optimized: bool, opts: SldOptions) -> Run {
    let fo = translate(p, optimized);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    let goals = Transformer::new().query(&parse_query(query).expect("query parses"));
    let start = Instant::now();
    let r = SldEngine::new(&compiled, opts)
        .solve(&goals)
        .expect("no builtin errors");
    Run {
        wall: start.elapsed(),
        answers: r.answers.len(),
        work: r.stats.steps + r.stats.unify_attempts,
        complete: r.complete,
    }
}

/// Translated program, bottom-up fixpoint, then query matching.
/// Returns the run plus the number of facts in the least model.
pub fn run_bottom_up(
    p: &Program,
    query: &str,
    optimized: bool,
    strategy: Fixpoint,
) -> (Run, usize) {
    let (run, total, _) = run_bottom_up_with(
        p,
        query,
        optimized,
        FixpointOptions {
            strategy,
            ..Default::default()
        },
    );
    (run, total)
}

/// Like [`run_bottom_up`], but takes full [`FixpointOptions`] (index
/// mode, budgets, …) and additionally returns the fact-index counters
/// accumulated during the run — the probe-level work measure behind
/// `folog.index.*`.
pub fn run_bottom_up_with(
    p: &Program,
    query: &str,
    optimized: bool,
    opts: FixpointOptions,
) -> (Run, usize, folog::IndexStats) {
    let fo = translate(p, optimized);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    let goals = Transformer::new().query(&parse_query(query).expect("query parses"));
    let start = Instant::now();
    let ev = evaluate(&compiled, opts).expect("fixpoint succeeds");
    let answers = ev.query(&goals);
    (
        Run {
            wall: start.elapsed(),
            answers: answers.len(),
            work: ev.stats.match_attempts,
            complete: true,
        },
        ev.facts.total,
        ev.facts.index_stats(),
    )
}

/// Translated program under tabled evaluation.
pub fn run_tabled(p: &Program, query: &str, optimized: bool) -> Run {
    let fo = translate(p, optimized);
    let compiled = CompiledProgram::compile(&fo, builtin_symbols());
    let goals = Transformer::new().query(&parse_query(query).expect("query parses"));
    let start = Instant::now();
    let r = TabledEngine::new(&compiled, TablingOptions::default())
        .solve(&goals)
        .expect("tabling succeeds");
    Run {
        wall: start.elapsed(),
        answers: r.answers.len(),
        work: r.stats.clause_activations,
        complete: true,
    }
}

/// Translated program under the magic-sets rewrite + bottom-up.
/// Returns the run plus the number of facts the rewritten program derives
/// (the goal-directedness measure).
pub fn run_magic(p: &Program, query: &str, optimized: bool) -> (Run, usize) {
    let fo = translate(p, optimized);
    let goals = Transformer::new().query(&parse_query(query).expect("query parses"));
    let builtins = builtin_symbols().collect();
    let start = Instant::now();
    let (answers, ev) =
        solve_magic(&fo, &goals, &builtins, FixpointOptions::default()).expect("magic succeeds");
    (
        Run {
            wall: start.elapsed(),
            answers: answers.len(),
            work: ev.stats.match_attempts,
            complete: true,
        },
        ev.facts.total,
    )
}

/// Runs `f` `times` times and returns the run with the smallest wall
/// clock — the standard way to strip scheduling noise from short
/// measurements (operation counts are deterministic across repeats).
pub fn best_of(times: usize, mut f: impl FnMut() -> Run) -> Run {
    let mut best = f();
    for _ in 1..times {
        let r = f();
        if r.wall < best.wall {
            best = r;
        }
    }
    best
}

/// Formats a duration in microseconds with 1 decimal.
pub fn us(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1e6)
}

/// Writes a flat JSON object to `path`. Each field's value is a raw
/// JSON fragment the caller has already formatted (a number, or a
/// string including its quotes) — enough for the benchmark dumps
/// without pulling in a serializer.
pub fn dump_json(
    path: impl AsRef<std::path::Path>,
    fields: &[(&str, String)],
) -> std::io::Result<()> {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    std::fs::write(path, format!("{{\n{}\n}}\n", body.join(",\n")))
}

/// Prints an aligned table (markdown-flavoured) to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;

    #[test]
    fn runners_agree_on_answer_counts() {
        let p = graphs::with_rules(&graphs::chain(5), graphs::path_rules_by_endpoints());
        let q = "path: P[src => n0, dest => D]";
        let direct = run_direct(&p, q, DirectOptions::default());
        let (naive, _) = run_bottom_up(&p, q, true, Fixpoint::Naive);
        let (semi, total) = run_bottom_up(&p, q, true, Fixpoint::SemiNaive);
        let tabled = run_tabled(&p, q, true);
        let (magic, magic_total) = run_magic(&p, q, true);
        assert_eq!(direct.answers, 5);
        assert_eq!(naive.answers, 5);
        assert_eq!(semi.answers, 5);
        assert_eq!(tabled.answers, 5);
        assert_eq!(magic.answers, 5);
        assert!(total > 0);
        // (goal-directedness of magic sets — fewer *relevant* facts on
        // selective queries — is asserted in folog::magic's tests; here
        // the query touches the whole chain, so only sanity-check it ran)
        assert!(magic_total > 0);
        assert!(direct.complete);
    }

    #[test]
    fn sld_runner_on_extensional_db() {
        let p = crate::objects::functional_objects(20, 3, 5, 1);
        let q = crate::objects::open_query(3);
        let r = run_sld(&p, &q, true, SldOptions::default());
        assert!(r.complete);
        assert_eq!(r.answers, 20);
        assert!(r.work > 0);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[
                vec!["1".into(), "22".into()],
                vec!["333".into(), "4".into()],
            ],
        );
    }
}
