//! Type-hierarchy workloads — the E4 experiment (order-sorted resolution
//! vs type-axiom clauses).

use clogic_core::formula::{Atomic, DefiniteClause};
use clogic_core::program::Program;
use clogic_core::term::Term;

/// Type name at level `d` of a chain.
pub fn level(d: usize) -> String {
    format!("ty{d}")
}

/// A subtype chain `ty0 < ty1 < … < ty{depth}` with `members` instances
/// asserted at the *bottom* type; querying the *top* type must walk the
/// whole chain (axioms in the translation, hierarchy reachability in the
/// direct engine).
pub fn chain_hierarchy(depth: usize, members: usize) -> Program {
    let mut p = Program::new();
    for d in 0..depth {
        p.declare_subtype(level(d).as_str(), level(d + 1).as_str());
    }
    for m in 0..members {
        p.push(DefiniteClause::fact(Atomic::term(Term::typed_constant(
            level(0).as_str(),
            format!("e{m}").as_str(),
        ))));
    }
    p
}

/// A complete binary tree of types of the given `depth`; instances are
/// spread across the leaves. Root is `ty_r`.
pub fn tree_hierarchy(depth: usize, members_per_leaf: usize) -> Program {
    let mut p = Program::new();
    // nodes numbered heap-style: 1 = root, children 2i, 2i+1
    let node_name = |i: usize| {
        if i == 1 {
            "ty_r".to_string()
        } else {
            format!("ty_n{i}")
        }
    };
    let first_leaf = 1 << depth;
    for i in 2..(1 << (depth + 1)) {
        p.declare_subtype(node_name(i).as_str(), node_name(i / 2).as_str());
    }
    let mut counter = 0;
    for leaf in first_leaf..(1 << (depth + 1)) {
        for _ in 0..members_per_leaf {
            p.push(DefiniteClause::fact(Atomic::term(Term::typed_constant(
                node_name(leaf).as_str(),
                format!("e{counter}").as_str(),
            ))));
            counter += 1;
        }
    }
    p
}

/// Query for everything of the chain's top type.
pub fn top_query(depth: usize) -> String {
    format!("{}: X", level(depth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic::{Session, Strategy};

    #[test]
    fn chain_membership_flows_to_top() {
        let mut s = Session::new();
        s.load_program(chain_hierarchy(8, 5));
        for strategy in [
            Strategy::Direct,
            Strategy::BottomUpSemiNaive,
            Strategy::Tabled,
        ] {
            let r = s.query(&top_query(8), strategy).unwrap();
            assert_eq!(r.rows.len(), 5, "{strategy:?}");
            // intermediate levels too
            let mid = s.query(&format!("{}: X", level(4)), strategy).unwrap();
            assert_eq!(mid.rows.len(), 5, "{strategy:?}");
            // and nothing at a sibling-less bottom query beyond members
            let bottom = s.query(&format!("{}: X", level(0)), strategy).unwrap();
            assert_eq!(bottom.rows.len(), 5, "{strategy:?}");
        }
    }

    #[test]
    fn tree_membership() {
        let mut s = Session::new();
        s.load_program(tree_hierarchy(3, 2)); // 8 leaves × 2 = 16 members
        for strategy in [Strategy::Direct, Strategy::BottomUpSemiNaive] {
            let r = s.query("ty_r: X", strategy).unwrap();
            assert_eq!(r.rows.len(), 16, "{strategy:?}");
        }
    }
}
