//! E8 — observability overhead: quiet metrics vs null-subscriber tracing
//! vs a memory-subscriber trace, over a recursive serving workload.
//!
//! The design claim under test: spans open at evaluation granularity and
//! engines flush counter *deltas* once per run, so attaching a tracer
//! costs a constant handful of events per query — never a per-tuple tax.
//! The acceptance bound is that tracing into a [`NullSubscriber`] stays
//! within 5% of the quiet configuration.
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration (for CI) with a loose bound; the full run asserts the
//! 5% acceptance bound on release code. Either mode dumps
//! `BENCH_observability.json` at the workspace root.

use clogic::obs::{MemorySubscriber, NullSubscriber, Obs};
use clogic::{Session, SessionOptions, Strategy};
use clogic_bench::graphs;
use clogic_bench::measure::{dump_json, print_table, us};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUERY: &str = "path: P[src => c0n0, dest => D]";

/// One serving run: load the chain database, saturate, answer, and
/// re-answer twice from cache. Returns (answers, wall).
fn serve(obs: Obs, chains: usize, len: usize) -> (usize, Duration) {
    let start = Instant::now();
    let mut s = Session::with_options(SessionOptions {
        termination_guard: false,
        obs,
        ..SessionOptions::default()
    });
    s.load_program(graphs::with_rules(
        &graphs::disjoint_chains(chains, len),
        graphs::path_rules_by_endpoints(),
    ));
    let mut answers = 0;
    for _ in 0..3 {
        let r = s.query(QUERY, Strategy::BottomUpSemiNaive).expect("query");
        assert!(r.complete);
        answers = r.rows.len();
    }
    (answers, start.elapsed())
}

fn best_of(times: usize, mut run: impl FnMut() -> (usize, Duration)) -> (usize, Duration) {
    let mut best = (0, Duration::MAX);
    for _ in 0..times {
        let (answers, wall) = run();
        if wall < best.1 {
            best = (answers, wall);
        }
    }
    best
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (chains, len, reps) = if test_mode { (20, 10, 5) } else { (200, 12, 9) };

    let (quiet_answers, quiet) = best_of(reps, || serve(Obs::new(), chains, len));
    let (null_answers, nulled) = best_of(reps, || {
        serve(Obs::with_subscriber(Arc::new(NullSubscriber)), chains, len)
    });
    assert_eq!(quiet_answers, null_answers, "tracing changed answers");

    // A real subscriber for scale: a bounded in-memory ring. Also count
    // the events one run produces — the "constant handful" claim.
    let ring = Arc::new(MemorySubscriber::new(4096));
    let (_, ringed) = best_of(reps, || {
        serve(Obs::with_subscriber(ring.clone()), chains, len)
    });
    let events_per_run = {
        let sub = Arc::new(MemorySubscriber::new(4096));
        serve(Obs::with_subscriber(sub.clone()), chains, len);
        sub.drain().len()
    };

    let overhead = nulled.as_secs_f64() / quiet.as_secs_f64().max(1e-9) - 1.0;
    let ring_overhead = ringed.as_secs_f64() / quiet.as_secs_f64().max(1e-9) - 1.0;
    print_table(
        "e8_observability (tracing overhead on a serving workload)",
        &["config", "answers", "wall (us)", "overhead"],
        &[
            vec![
                "quiet (metrics only)".into(),
                quiet_answers.to_string(),
                us(quiet),
                "-".into(),
            ],
            vec![
                "null subscriber".into(),
                null_answers.to_string(),
                us(nulled),
                format!("{:+.1}%", overhead * 100.0),
            ],
            vec![
                "memory subscriber".into(),
                quiet_answers.to_string(),
                us(ringed),
                format!("{:+.1}%", ring_overhead * 100.0),
            ],
        ],
    );
    println!("\ntrace events per serving run: {events_per_run}");

    // Acceptance: ≤5% on the full (release) run; smoke mode tolerates
    // debug-build and CI jitter.
    let bound = if test_mode { 0.25 } else { 0.05 };
    assert!(
        overhead <= bound,
        "null-subscriber overhead {:.1}% exceeds {:.0}%",
        overhead * 100.0,
        bound * 100.0
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_observability.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("chains", chains.to_string()),
            ("answers", quiet_answers.to_string()),
            ("quiet_us", us(quiet)),
            ("null_subscriber_us", us(nulled)),
            ("memory_subscriber_us", us(ringed)),
            ("null_overhead_pct", format!("{:.2}", overhead * 100.0)),
            ("events_per_run", events_per_run.to_string()),
        ],
    )
    .expect("benchmark dump written");
    println!("wrote {out}");
}
