//! E6 — object identity semantics (§2.1): path objects determined by
//! endpoints vs by endpoints-plus-length on a ladder DAG where endpoint
//! pairs are connected by routes of several lengths.
//!
//! Expected shape: the endpoints-only fixpoint converges on fewer objects
//! and less work; endpoints+length creates one object per distinct
//! length, and its cost grows correspondingly.

use clogic_bench::graphs;
use clogic_bench::measure::translate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_identity_semantics");
    group.sample_size(10);
    for rungs in [3usize, 6, 9] {
        let base = graphs::ladder(rungs);
        let by_ends = CompiledProgram::compile(
            &translate(
                &graphs::with_rules(&base, graphs::path_rules_by_endpoints()),
                true,
            ),
            builtin_symbols(),
        );
        let by_len = CompiledProgram::compile(
            &translate(
                &graphs::with_rules(&base, graphs::path_rules_by_endpoints_and_length()),
                true,
            ),
            builtin_symbols(),
        );
        group.bench_with_input(BenchmarkId::new("by_endpoints", rungs), &rungs, |b, _| {
            b.iter(|| {
                let ev = evaluate(&by_ends, FixpointOptions::default()).unwrap();
                assert!(ev.facts.total > 0);
            })
        });
        group.bench_with_input(
            BenchmarkId::new("by_endpoints_and_length", rungs),
            &rungs,
            |b, _| {
                b.iter(|| {
                    let ev = evaluate(&by_len, FixpointOptions::default()).unwrap();
                    assert!(ev.facts.total > 0);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
