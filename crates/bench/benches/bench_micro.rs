//! E8 — substrate micro-benchmarks: unification, hash-consing, clustered
//! store insertion, parsing. These calibrate the building blocks the
//! other experiments are made of.

use clogic_core::term::Const;
use clogic_engine::ObjectStore;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::rterm::RTerm;
use folog::unify::{unify, Bindings, UnifyOptions};
use folog::TermStore;

fn deep_term(depth: usize, leaf: RTerm) -> RTerm {
    let mut t = leaf;
    for _ in 0..depth {
        t = RTerm::App(clogic_core::sym("f"), vec![t, RTerm::Const(Const::Int(1))]);
    }
    t
}

fn bench_unify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_unify");
    for depth in [4usize, 16, 64] {
        let a = deep_term(depth, RTerm::Var(0));
        let b = deep_term(depth, RTerm::Const(Const::Sym(clogic_core::sym("leaf"))));
        group.bench_with_input(BenchmarkId::new("deep_success", depth), &depth, |bch, _| {
            bch.iter(|| {
                let mut bind = Bindings::new();
                assert!(unify(&a, &b, &mut bind, UnifyOptions::default()));
            })
        });
        // failure at the leaf: full traversal then rollback
        let c2 = deep_term(depth, RTerm::Const(Const::Sym(clogic_core::sym("other"))));
        group.bench_with_input(BenchmarkId::new("deep_failure", depth), &depth, |bch, _| {
            bch.iter(|| {
                let mut bind = Bindings::new();
                assert!(!unify(&b, &c2, &mut bind, UnifyOptions::default()));
            })
        });
    }
    group.finish();
}

fn bench_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_interning");
    group.bench_function("intern_1000_terms", |b| {
        b.iter(|| {
            let mut store = TermStore::new();
            for i in 0..1000i64 {
                let x = store.intern_const(Const::Int(i));
                let y = store.intern_const(Const::Int(i % 10));
                store.intern_app(clogic_core::sym("pair"), vec![x, y]);
            }
            assert_eq!(store.len(), 1000 + 10 + 1000 - 10);
        })
    });
    group.bench_function("reintern_hit_path", |b| {
        let mut store = TermStore::new();
        let x = store.intern_const(Const::Int(7));
        b.iter(|| {
            assert_eq!(store.intern_const(Const::Int(7)), x);
        })
    });
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_object_store");
    group.bench_function("insert_500_objects_4_labels", |b| {
        b.iter(|| {
            let mut terms = TermStore::new();
            let mut store = ObjectStore::new();
            for i in 0..500i64 {
                let id = terms.intern_const(Const::Int(i));
                store.add_type(id, clogic_core::sym("item"));
                for j in 0..4i64 {
                    let v = terms.intern_const(Const::Int(i * 4 + j));
                    store.add_label(id, clogic_core::sym("l"), v);
                }
            }
            assert_eq!(store.len(), 500);
        })
    });
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_parser");
    let src: String = (0..200)
        .map(|i| {
            format!(
                "person: p{i}[name => \"P {i}\", age => {}, children => {{c{i}, d{i}}}].\n",
                20 + (i % 50)
            )
        })
        .collect();
    group.bench_function("parse_200_molecule_facts", |b| {
        b.iter(|| {
            let p = clogic_parser::parse_program(&src).unwrap();
            assert_eq!(p.clauses.len(), 200);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_unify,
    bench_interning,
    bench_store,
    bench_parse
);
criterion_main!(benches);
