//! E1 — direct evaluation over clustered molecules vs SLD over the
//! flattened first-order translation (§4: "whose direct evaluation using
//! SLD resolution directly would be very inefficient").
//!
//! Expected shape: direct wins on open queries by a factor that grows
//! with database size; point queries are near-constant for both.

use clogic_bench::objects;
use clogic_core::transform::Transformer;
use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
use clogic_parser::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;
use folog::{CompiledProgram, SldEngine, SldOptions};

const K: usize = 4;
const POOL: usize = 8;
const SEED: u64 = 17;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_direct_vs_translated");
    group.sample_size(20);
    for n in [50usize, 200, 800] {
        let program = objects::functional_objects(n, K, POOL, SEED);
        // Compile once per engine; queries are the measured unit.
        let direct_program = DirectProgram::compile(&program, builtin_symbols());
        let fo = {
            let tr = Transformer::new();
            clogic_core::optimize::Optimizer::new(&program).optimized_program(&tr, &program)
        };
        let compiled = CompiledProgram::compile(&fo, builtin_symbols());

        let point = parse_query(&objects::point_query(n, K, POOL, SEED, n / 2)).unwrap();
        let open = parse_query(&objects::open_query(K)).unwrap();
        let point_goals = Transformer::new().query(&point);
        let open_goals = Transformer::new().query(&open);

        group.bench_with_input(BenchmarkId::new("direct/point", n), &n, |b, _| {
            let engine = DirectEngine::new(&direct_program, DirectOptions::default());
            b.iter(|| {
                let r = engine.solve(&point).unwrap();
                assert_eq!(r.answers.len(), 1);
            })
        });
        group.bench_with_input(BenchmarkId::new("sld/point", n), &n, |b, _| {
            let engine = SldEngine::new(&compiled, SldOptions::default());
            b.iter(|| {
                let r = engine.solve(&point_goals).unwrap();
                assert_eq!(r.answers.len(), 1);
            })
        });
        group.bench_with_input(BenchmarkId::new("direct/open", n), &n, |b, _| {
            let engine = DirectEngine::new(&direct_program, DirectOptions::default());
            b.iter(|| {
                let r = engine.solve(&open).unwrap();
                assert_eq!(r.answers.len(), n);
            })
        });
        // SLD open queries grow super-linearly; keep only the sizes that
        // finish in sensible time per iteration.
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("sld/open", n), &n, |b, _| {
                let engine = SldEngine::new(&compiled, SldOptions::default());
                b.iter(|| {
                    let r = engine.solve(&open_goals).unwrap();
                    assert_eq!(r.answers.len(), n);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
