//! E11 — argument-pattern fact indices: the semi-naive fixpoint with
//! lazy per-predicate hash indices vs the same evaluation forced to scan.
//!
//! The design claim under test: body-literal matching is the fixpoint's
//! inner loop, and a hash probe on the bound-position projection replaces
//! an O(|relation|) scan per candidate atom. Indices are built lazily on
//! first demand per bound-position pattern, then extended in place
//! (append-only relations make extension sound) and reused across every
//! delta iteration — so the build cost is paid once per pattern, not per
//! iteration.
//!
//! Two workloads:
//!
//! * **chain** — the E5 transitive-closure chain (`path` by endpoints,
//!   §2.1 rules) under semi-naive evaluation. The recursive rule joins
//!   the `path` delta against `link` on the shared midpoint; indexed,
//!   each delta tuple probes one hash bucket, while the scan baseline
//!   walks the whole `link` relation per candidate.
//! * **load** — cold saturation of many disjoint chains: measures that
//!   index maintenance (builds + extends) does not erase the probe
//!   savings even when every relation keeps growing.
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration for CI; either mode dumps `BENCH_index.json` at the
//! workspace root, including the `folog.index.*` counters (builds,
//! extends, hits, misses) for the indexed runs. Answer counts and model
//! sizes are cross-checked between indexed and scan runs, so a speedup
//! can never come from dropped tuples. Setting `BENCH_INDEX_MIN_SPEEDUP`
//! (e.g. in CI) fails the run if the chain-workload speedup drops below
//! it.

use clogic_bench::graphs;
use clogic_bench::measure::{dump_json, print_table, run_bottom_up_with, us, Run};
use folog::{FixpointOptions, IndexMode, IndexStats, Strategy};
use std::time::Duration;

/// One workload measured under one index mode: best-of-`reps` wall
/// clock, with the answer count, model size, and index counters of the
/// best run (counters are deterministic across repeats).
struct Measured {
    run: Run,
    model_facts: usize,
    idx: IndexStats,
}

fn measure(
    p: &clogic_core::program::Program,
    query: &str,
    mode: IndexMode,
    reps: usize,
) -> Measured {
    let opts = || FixpointOptions {
        strategy: Strategy::SemiNaive,
        index_mode: mode,
        ..Default::default()
    };
    let (mut run, mut model_facts, mut idx) = run_bottom_up_with(p, query, true, opts());
    for _ in 1..reps {
        let (r, total, i) = run_bottom_up_with(p, query, true, opts());
        if r.wall < run.wall {
            (run, model_facts, idx) = (r, total, i);
        }
    }
    Measured {
        run,
        model_facts,
        idx,
    }
}

fn speedup(scan: Duration, indexed: Duration) -> f64 {
    scan.as_secs_f64() / indexed.as_secs_f64().max(1e-9)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (chain_n, load_chains, load_len, reps) = if test_mode {
        (48, 6, 10, 3)
    } else {
        (160, 24, 24, 3)
    };

    // Workload A: E5 chain, transitive closure by endpoints.
    let chain = graphs::with_rules(&graphs::chain(chain_n), graphs::path_rules_by_endpoints());
    let chain_q = "path: P[src => n0, dest => D]";
    let chain_idx = measure(&chain, chain_q, IndexMode::Indexed, reps);
    let chain_scan = measure(&chain, chain_q, IndexMode::Scan, reps);
    assert_eq!(
        chain_idx.run.answers, chain_scan.run.answers,
        "indexed chain run changed answers"
    );
    assert_eq!(
        chain_idx.model_facts, chain_scan.model_facts,
        "indexed chain run changed the least model"
    );
    assert_eq!(chain_idx.run.answers, chain_n, "chain answer count");

    // Workload B: cold load of disjoint chains (index maintenance under
    // growth); query one chain's reachability set.
    let load = graphs::with_rules(
        &graphs::disjoint_chains(load_chains, load_len),
        graphs::path_rules_by_endpoints(),
    );
    let load_q = "path: P[src => c0n0, dest => D]";
    let load_idx = measure(&load, load_q, IndexMode::Indexed, reps);
    let load_scan = measure(&load, load_q, IndexMode::Scan, reps);
    assert_eq!(
        load_idx.run.answers, load_scan.run.answers,
        "indexed load run changed answers"
    );
    assert_eq!(
        load_idx.model_facts, load_scan.model_facts,
        "indexed load run changed the least model"
    );

    let chain_speedup = speedup(chain_scan.run.wall, chain_idx.run.wall);
    let load_speedup = speedup(load_scan.run.wall, load_idx.run.wall);
    let idx_cell = |i: &IndexStats| format!("{}/{}/{}/{}", i.builds, i.extends, i.hits, i.misses);
    let row = |name: &str, m: &Measured, sp: Option<f64>| {
        vec![
            name.to_string(),
            m.run.answers.to_string(),
            m.model_facts.to_string(),
            us(m.run.wall),
            m.run.work.to_string(),
            idx_cell(&m.idx),
            sp.map_or("-".into(), |s| format!("{s:.2}x")),
        ]
    };
    print_table(
        "e11_index (argument-pattern indices vs scan, semi-naive)",
        &[
            "config",
            "answers",
            "model",
            "wall (us)",
            "matches",
            "b/e/h/m",
            "speedup",
        ],
        &[
            row(&format!("chain n={chain_n} scan"), &chain_scan, None),
            row(
                &format!("chain n={chain_n} indexed"),
                &chain_idx,
                Some(chain_speedup),
            ),
            row(
                &format!("load {load_chains}x{load_len} scan"),
                &load_scan,
                None,
            ),
            row(
                &format!("load {load_chains}x{load_len} indexed"),
                &load_idx,
                Some(load_speedup),
            ),
        ],
    );
    println!("\nchain speedup (indexed over scan): {chain_speedup:.2}x");
    println!("load  speedup (indexed over scan): {load_speedup:.2}x");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_index.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("chain_n", chain_n.to_string()),
            ("chain_answers", chain_idx.run.answers.to_string()),
            ("chain_model_facts", chain_idx.model_facts.to_string()),
            ("chain_indexed_us", us(chain_idx.run.wall)),
            ("chain_scan_us", us(chain_scan.run.wall)),
            ("chain_speedup", format!("{chain_speedup:.3}")),
            ("chain_indexed_matches", chain_idx.run.work.to_string()),
            ("chain_scan_matches", chain_scan.run.work.to_string()),
            ("chain_index_builds", chain_idx.idx.builds.to_string()),
            ("chain_index_extends", chain_idx.idx.extends.to_string()),
            ("chain_index_hits", chain_idx.idx.hits.to_string()),
            ("chain_index_misses", chain_idx.idx.misses.to_string()),
            ("load_chains", load_chains.to_string()),
            ("load_len", load_len.to_string()),
            ("load_answers", load_idx.run.answers.to_string()),
            ("load_model_facts", load_idx.model_facts.to_string()),
            ("load_indexed_us", us(load_idx.run.wall)),
            ("load_scan_us", us(load_scan.run.wall)),
            ("load_speedup", format!("{load_speedup:.3}")),
            ("load_index_builds", load_idx.idx.builds.to_string()),
            ("load_index_extends", load_idx.idx.extends.to_string()),
            ("load_index_hits", load_idx.idx.hits.to_string()),
            ("load_index_misses", load_idx.idx.misses.to_string()),
        ],
    )
    .expect("dump BENCH_index.json");
    println!("wrote {out}");

    // CI gate: the indices must actually pay off on the join-heavy chain.
    // Only enforced when the environment asks (local runs stay informative).
    if let Ok(min) = std::env::var("BENCH_INDEX_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("BENCH_INDEX_MIN_SPEEDUP is a float");
        assert!(
            chain_speedup >= min,
            "chain indexed speedup {chain_speedup:.3}x fell below the {min}x floor"
        );
    }
}
