//! E10 — multi-tenant serving at scale: one `SessionManager` carrying
//! ~1k named durable sessions with LRU eviction bounding residency at a
//! small capacity, a warm/cold query mix forcing continual lazy
//! recovery, and chaotic storage under 10% of the tenants.
//!
//! The design claims under test:
//!
//! * residency stays at the LRU capacity no matter how many tenants
//!   exist — memory is bounded by configuration, not by population;
//! * a cold tenant's first query transparently recovers it from its
//!   durable store and answers exactly its own data (no cross-tenant
//!   leaks), at a sustained queries/s the readout reports;
//! * transient storage faults on the chaotic subset are absorbed by the
//!   per-tenant retry layer without a single exhaustion, and healthy
//!   tenants never see them.
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration for CI; either mode dumps `BENCH_tenants.json` at the
//! workspace root.

use clogic::obs::{Json, Obs};
use clogic::{SessionOptions, Strategy};
use clogic_bench::measure::{dump_json, print_table, us};
use clogic::store::{ChaosStorage, Fault, MemStorage, RetryPolicy, Storage};
use clogic_serve::protocol::get;
use clogic_serve::{
    Client, ManagerOptions, Request, RequestOp, SessionManager, StorageFactory, TcpFront,
    TcpFrontOptions,
};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Every 10th tenant gets chaotic storage: a two-strike fault burst
/// early in each storage instance's life (so it also recurs on every
/// recovery, which re-invokes the factory). Two strikes sit inside the
/// three-retry budget — the point is absorbed chaos, not outages.
const CHAOS_STRIDE: usize = 10;
const CHAOS_TRIGGER: u64 = 5;
const CHAOS_BURST: u64 = 2;

fn tenant_name(i: usize) -> String {
    format!("tenant{i:04}")
}

/// Each tenant's program: one distinctively-named object plus a rule,
/// so a recovered tenant answering the wrong tenant's data is caught.
fn tenant_program(i: usize) -> String {
    format!("item: w{i}[price => p{i}].\ncheap(X) :- item: X[price => Y].")
}

fn factory(tenants: usize) -> StorageFactory {
    let stores: Arc<Mutex<HashMap<String, MemStorage>>> = Arc::default();
    Arc::new(move |name| {
        let mut stores = stores.lock().unwrap();
        let storage = stores.entry(name.to_string()).or_default().clone();
        let index: usize = name
            .strip_prefix("tenant")
            .and_then(|d| d.parse().ok())
            .unwrap_or(0);
        if index < tenants && index % CHAOS_STRIDE == 0 {
            Ok(Box::new(ChaosStorage::intermittent(
                storage,
                CHAOS_TRIGGER,
                CHAOS_BURST,
                Fault::Fail,
            )) as Box<dyn Storage>)
        } else {
            Ok(Box::new(storage) as Box<dyn Storage>)
        }
    })
}

fn manager(obs: &Obs, tenants: usize, capacity: usize) -> SessionManager {
    SessionManager::new(
        factory(tenants),
        ManagerOptions {
            capacity,
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(200),
                breaker_threshold: 4,
                probe_after: 2,
            },
            session: SessionOptions {
                snapshot_every: Some(4),
                obs: obs.clone(),
                ..SessionOptions::default()
            },
            sleeper: Arc::new(|_| {}),
        },
    )
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (tenants, capacity, queries) = if test_mode {
        (128, 16, 512)
    } else {
        (1024, 64, 6144)
    };
    let obs = Obs::new();
    let mgr = manager(&obs, tenants, capacity);
    let rotation = [Strategy::Sld, Strategy::Tabled, Strategy::BottomUpSemiNaive];

    // Populate: one load per tenant; the LRU must bound residency the
    // whole way through.
    let mut max_resident = 0;
    let load_start = Instant::now();
    for i in 0..tenants {
        mgr.load(&tenant_name(i), &tenant_program(i))
            .expect("tenant load");
        max_resident = max_resident.max(mgr.resident());
    }
    let load_wall = load_start.elapsed();
    assert!(
        max_resident <= capacity,
        "residency {max_resident} broke the LRU bound {capacity}"
    );

    // Sustained warm/cold mix: 80% of queries hit a hot set half the
    // LRU capacity wide (these stay resident), 20% walk the cold tail
    // (each one a lazy recovery that evicts someone else).
    let hot = (capacity / 2).max(1);
    let mut warm = 0usize;
    let mut cold = 0usize;
    let query_start = Instant::now();
    for k in 0..queries {
        let i = if k % 5 == 4 {
            cold += 1;
            hot + (k / 5) % (tenants - hot)
        } else {
            warm += 1;
            k % hot
        };
        let answers = mgr
            .query(&tenant_name(i), "cheap(X)", rotation[k % rotation.len()])
            .expect("tenant query");
        assert_eq!(answers.rows.len(), 1, "tenant {i} row count");
        assert!(
            answers.rendered().concat().contains(&format!("w{i}")),
            "tenant {i} answered someone else's data"
        );
        max_resident = max_resident.max(mgr.resident());
    }
    let query_wall = query_start.elapsed();
    assert!(
        max_resident <= capacity,
        "residency {max_resident} broke the LRU bound {capacity}"
    );

    // Wire phase: the same manager behind the hardened TCP front-end,
    // several concurrent clients hammering the warm set. Measures the
    // full path — framing, admission queue, deadline plumbing, response
    // encode — and reads the `net.*` ledger back out for the dump.
    let mgr = Arc::new(mgr);
    let front = TcpFront::start(
        Arc::clone(&mgr),
        "127.0.0.1:0",
        TcpFrontOptions {
            workers: 2,
            queue_depth: 256,
            ..TcpFrontOptions::default()
        },
    )
    .expect("bind wire front");
    let addr = front.addr();
    let wire_clients = 4usize;
    let wire_per_client = if test_mode { 64 } else { 512 };
    let wire_queries = wire_clients * wire_per_client;
    let wire_start = Instant::now();
    let handles: Vec<_> = (0..wire_clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("wire connect");
                for k in 0..wire_per_client {
                    let i = (c + k * wire_clients) % hot;
                    let resp = client
                        .request(&Request {
                            tenant: tenant_name(i),
                            op: RequestOp::Query {
                                src: "cheap(X)".to_string(),
                                strategy: rotation[k % rotation.len()],
                                deadline_ms: Some(30_000),
                            },
                        })
                        .expect("wire query");
                    assert_eq!(
                        get(&resp, "ok"),
                        Some(&Json::Bool(true)),
                        "wire tenant {i}: {resp}"
                    );
                    assert!(
                        resp.to_string().contains(&format!("\"w{i}\"")),
                        "wire tenant {i} answered someone else's data: {resp}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("wire client");
    }
    let wire_wall = wire_start.elapsed();
    front.shutdown();
    let wire_qps = wire_queries as f64 / wire_wall.as_secs_f64().max(1e-9);

    let snap = obs.metrics.snapshot();
    let frames_in = snap.counter("net.frames.in").unwrap_or(0);
    let frames_out = snap.counter("net.frames.out").unwrap_or(0);
    let accepted = snap.counter("net.connections.accepted").unwrap_or(0);
    let (qw_count, qw_sum) = snap.histogram("net.queue_wait_us").unwrap_or((0, 0));
    assert_eq!(frames_in, wire_queries as u64, "every wire frame admitted");
    assert_eq!(frames_out, wire_queries as u64, "every wire frame answered");
    let evictions = snap.counter("manager.evictions").unwrap_or(0);
    let recoveries = snap.counter("manager.recoveries").unwrap_or(0);
    assert!(evictions > 0 && recoveries > 0, "the mix never went cold");
    assert_eq!(snap.counter("manager.recovery_failures").unwrap_or(0), 0);
    // Chaos bursts must be absorbed by retries, never exhausted, in any
    // tenant's namespace.
    let retries: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.ends_with(".serve.retry"))
        .map(|(_, v)| v)
        .sum();
    let exhausted: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.ends_with(".store.retry.exhausted"))
        .map(|(_, v)| v)
        .sum();
    assert!(retries > 0, "the chaotic subset never struck");
    assert_eq!(exhausted, 0, "a chaos burst exhausted a retry budget");

    let qps = queries as f64 / query_wall.as_secs_f64().max(1e-9);
    let loads_ps = tenants as f64 / load_wall.as_secs_f64().max(1e-9);
    print_table(
        "e10_tenants (multi-tenant serving, LRU eviction, 10% chaos)",
        &["phase", "ops", "wall (us)", "ops/s"],
        &[
            vec![
                format!("populate x{tenants}"),
                tenants.to_string(),
                us(load_wall),
                format!("{loads_ps:.0}"),
            ],
            vec![
                format!("query mix ({warm} warm / {cold} cold)"),
                queries.to_string(),
                us(query_wall),
                format!("{qps:.0}"),
            ],
            vec![
                format!("wire ({wire_clients} clients over TCP)"),
                wire_queries.to_string(),
                us(wire_wall),
                format!("{wire_qps:.0}"),
            ],
        ],
    );
    let qw_mean_us = if qw_count > 0 { qw_sum / qw_count } else { 0 };
    println!(
        "\nresident peak {max_resident}/{capacity} over {tenants} tenants; \
         {evictions} evictions, {recoveries} recoveries, {retries} retries absorbed; \
         wire: {accepted} conns, {frames_in} frames in / {frames_out} out, \
         mean queue wait {qw_mean_us} us"
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tenants.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("tenants", tenants.to_string()),
            ("capacity", capacity.to_string()),
            ("chaos_tenants", tenants.div_ceil(CHAOS_STRIDE).to_string()),
            ("max_resident", max_resident.to_string()),
            ("load_us", us(load_wall)),
            ("queries", queries.to_string()),
            ("warm", warm.to_string()),
            ("cold", cold.to_string()),
            ("query_us", us(query_wall)),
            ("qps", format!("{qps:.1}")),
            ("evictions", evictions.to_string()),
            ("recoveries", recoveries.to_string()),
            ("retries_absorbed", retries.to_string()),
            ("wire_clients", wire_clients.to_string()),
            ("wire_queries", wire_queries.to_string()),
            ("wire_us", us(wire_wall)),
            ("wire_qps", format!("{wire_qps:.1}")),
            ("wire_conns_accepted", accepted.to_string()),
            ("wire_frames_in", frames_in.to_string()),
            ("wire_frames_out", frames_out.to_string()),
            ("wire_queue_wait_mean_us", qw_mean_us.to_string()),
        ],
    )
    .expect("dump BENCH_tenants.json");
    println!("wrote {out}");
}
