//! E9 — serving throughput: the shared (`&self`) query path through the
//! `clogic-serve` thread pool vs the same workload run serially.
//!
//! The design claim under test: after `Session::prepare`, queries touch
//! only immutable epoch-stamped artifacts, so a pool of workers scales
//! query throughput without re-deriving anything — and with zero faults
//! the serving layer's robustness machinery stays entirely off the books
//! (no sheds, no retries, no breaker transitions).
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration for CI; either mode dumps `BENCH_serve.json` at the
//! workspace root. Answer counts are cross-checked between every
//! configuration, so a speedup can never come from dropped work.

use clogic::folog::Budget;
use clogic::{Session, SessionOptions, Strategy};
use clogic_bench::graphs;
use clogic_bench::measure::{dump_json, print_table, us};
use clogic_serve::{ServeOptions, Server};
use std::time::{Duration, Instant};

/// The job mix: one endpoint query per chain, under a strategy rotation
/// that mixes cheap saturated-model reads with per-query evaluations
/// (tabling, magic sets), repeated `reps` times.
fn jobs(chains: usize, reps: usize) -> Vec<(String, Strategy)> {
    let rotation = [Strategy::BottomUpSemiNaive, Strategy::Tabled, Strategy::Magic];
    let mut out = Vec::new();
    for r in 0..reps {
        for c in 0..chains {
            out.push((
                format!("path: P[src => c{c}n0, dest => D]"),
                rotation[(r + c) % rotation.len()],
            ));
        }
    }
    out
}

fn session(chains: usize, len: usize) -> Session {
    let mut s = Session::with_options(SessionOptions {
        termination_guard: false,
        ..SessionOptions::default()
    });
    s.load_program(graphs::with_rules(
        &graphs::disjoint_chains(chains, len),
        graphs::path_rules_by_endpoints(),
    ));
    s.prepare().expect("prepare artifacts");
    s
}

/// Serial reference: the same shared path the workers use, one thread.
fn run_serial(s: &Session, jobs: &[(String, Strategy)]) -> (usize, Duration) {
    let unlimited = Budget::unlimited();
    let start = Instant::now();
    let mut rows = 0;
    for (q, strategy) in jobs {
        rows += s.query_shared(q, *strategy, &unlimited).expect("query").rows.len();
    }
    (rows, start.elapsed())
}

/// The same jobs through a server with `workers` threads; all submitted
/// before any ticket is redeemed, so evaluations overlap fully.
fn run_pool(s: Session, workers: usize, jobs: &[(String, Strategy)]) -> (usize, Duration) {
    let server = Server::start(
        s,
        ServeOptions {
            workers,
            queue_depth: jobs.len().max(64),
            default_deadline: None,
        },
    )
    .expect("start server");
    let start = Instant::now();
    let pending: Vec<_> = jobs
        .iter()
        .map(|(q, strategy)| server.submit(q, *strategy).expect("submit"))
        .collect();
    let mut rows = 0;
    for p in pending {
        rows += p.wait().expect("answer").rows.len();
    }
    let wall = start.elapsed();
    let snap = server.obs().metrics.snapshot();
    assert_eq!(snap.counter("serve.shed").unwrap_or(0), 0, "zero-fault sheds");
    assert_eq!(snap.counter("serve.retry").unwrap_or(0), 0, "zero-fault retries");
    assert_eq!(snap.counter("serve.worker_panics").unwrap_or(0), 0);
    server.shutdown();
    (rows, wall)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (chains, len, reps) = if test_mode { (8, 8, 3) } else { (24, 12, 4) };
    let pool = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8));
    let jobs = jobs(chains, reps);

    let (serial_rows, serial) = run_serial(&session(chains, len), &jobs);
    let (one_rows, one) = run_pool(session(chains, len), 1, &jobs);
    let (pool_rows, pooled) = run_pool(session(chains, len), pool, &jobs);
    assert_eq!(serial_rows, one_rows, "1-worker pool changed answers");
    assert_eq!(serial_rows, pool_rows, "{pool}-worker pool changed answers");

    let speedup = serial.as_secs_f64() / pooled.as_secs_f64().max(1e-9);
    let qps = |wall: Duration| jobs.len() as f64 / wall.as_secs_f64().max(1e-9);
    print_table(
        "e9_serve (shared-path throughput, zero faults)",
        &["config", "rows", "wall (us)", "queries/s"],
        &[
            vec![
                "serial (&self path)".into(),
                serial_rows.to_string(),
                us(serial),
                format!("{:.0}", qps(serial)),
            ],
            vec![
                "pool x1".into(),
                one_rows.to_string(),
                us(one),
                format!("{:.0}", qps(one)),
            ],
            vec![
                format!("pool x{pool}"),
                pool_rows.to_string(),
                us(pooled),
                format!("{:.0}", qps(pooled)),
            ],
        ],
    );
    println!("\npool x{pool} speedup over serial: {speedup:.2}x");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("chains", chains.to_string()),
            ("jobs", jobs.len().to_string()),
            ("rows", serial_rows.to_string()),
            ("workers", pool.to_string()),
            ("serial_us", us(serial)),
            ("pool1_us", us(one)),
            ("pool_us", us(pooled)),
            ("speedup", format!("{speedup:.3}")),
        ],
    )
    .expect("dump BENCH_serve.json");
    println!("wrote {out}");
}
