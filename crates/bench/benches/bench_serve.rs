//! E9 — serving throughput: the shared (`&self`) query path through the
//! `clogic-serve` thread pool vs the same workload run serially.
//!
//! The design claim under test: after `Session::prepare`, queries touch
//! only immutable epoch-stamped artifacts, so a pool of workers scales
//! query throughput without re-deriving anything — and with zero faults
//! the serving layer's robustness machinery stays entirely off the books
//! (no sheds, no retries, no breaker transitions).
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration for CI; either mode dumps `BENCH_serve.json` at the
//! workspace root. Answer counts are cross-checked between every
//! configuration, so a speedup can never come from dropped work.

use clogic::folog::Budget;
use clogic::{Session, SessionOptions, Strategy};
use clogic_bench::graphs;
use clogic_bench::measure::{dump_json, print_table, us};
use clogic_serve::{ServeOptions, Server};
use std::time::{Duration, Instant};

/// The job mix: one endpoint query per chain, under a strategy rotation
/// that mixes cheap saturated-model reads with per-query evaluations
/// (tabling, magic sets), repeated `reps` times.
fn jobs(chains: usize, reps: usize) -> Vec<(String, Strategy)> {
    let rotation = [Strategy::BottomUpSemiNaive, Strategy::Tabled, Strategy::Magic];
    let mut out = Vec::new();
    for r in 0..reps {
        for c in 0..chains {
            out.push((
                format!("path: P[src => c{c}n0, dest => D]"),
                rotation[(r + c) % rotation.len()],
            ));
        }
    }
    out
}

fn session(chains: usize, len: usize) -> Session {
    let mut s = Session::with_options(SessionOptions {
        termination_guard: false,
        ..SessionOptions::default()
    });
    s.load_program(graphs::with_rules(
        &graphs::disjoint_chains(chains, len),
        graphs::path_rules_by_endpoints(),
    ));
    s.prepare().expect("prepare artifacts");
    s
}

/// Serial reference: the same shared path the workers use, one thread.
fn run_serial(s: &Session, jobs: &[(String, Strategy)]) -> (usize, Duration) {
    let unlimited = Budget::unlimited();
    let start = Instant::now();
    let mut rows = 0;
    for (q, strategy) in jobs {
        rows += s.query_shared(q, *strategy, &unlimited).expect("query").rows.len();
    }
    (rows, start.elapsed())
}

/// One pooled run's readout: answers, wall time, and where the time
/// went per job — waiting in the admission queue vs evaluating — read
/// from the `serve.queue_wait_us` / `serve.eval_us` histograms the
/// worker pool records.
struct PoolRun {
    rows: usize,
    wall: Duration,
    /// Mean microseconds a job sat queued before a worker picked it up.
    queue_wait_us: f64,
    /// Mean microseconds a worker spent evaluating a job.
    eval_us: f64,
}

/// The same jobs through a server with `workers` threads; all submitted
/// before any ticket is redeemed, so evaluations overlap fully.
fn run_pool(s: Session, workers: usize, jobs: &[(String, Strategy)]) -> PoolRun {
    let server = Server::start(
        s,
        ServeOptions {
            workers,
            queue_depth: jobs.len().max(64),
            default_deadline: None,
        },
    )
    .expect("start server");
    let start = Instant::now();
    let pending: Vec<_> = jobs
        .iter()
        .map(|(q, strategy)| server.submit(q, *strategy).expect("submit"))
        .collect();
    let mut rows = 0;
    for p in pending {
        rows += p.wait().expect("answer").rows.len();
    }
    let wall = start.elapsed();
    let snap = server.obs().metrics.snapshot();
    assert_eq!(snap.counter("serve.shed").unwrap_or(0), 0, "zero-fault sheds");
    assert_eq!(snap.counter("serve.retry").unwrap_or(0), 0, "zero-fault retries");
    assert_eq!(snap.counter("serve.worker_panics").unwrap_or(0), 0);
    let mean = |name: &str| match snap.histogram(name) {
        Some((count, sum)) if count > 0 => sum as f64 / count as f64,
        _ => 0.0,
    };
    let queue_wait_us = mean("serve.queue_wait_us");
    let eval_us = mean("serve.eval_us");
    server.shutdown();
    PoolRun {
        rows,
        wall,
        queue_wait_us,
        eval_us,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (chains, len, reps) = if test_mode { (8, 8, 3) } else { (24, 12, 4) };
    let pool = std::thread::available_parallelism().map_or(4, |n| n.get().clamp(2, 8));
    let jobs = jobs(chains, reps);

    let (serial_rows, serial) = run_serial(&session(chains, len), &jobs);
    let one = run_pool(session(chains, len), 1, &jobs);
    let pooled = run_pool(session(chains, len), pool, &jobs);
    assert_eq!(serial_rows, one.rows, "1-worker pool changed answers");
    assert_eq!(serial_rows, pooled.rows, "{pool}-worker pool changed answers");

    let speedup = serial.as_secs_f64() / pooled.wall.as_secs_f64().max(1e-9);
    let qps = |wall: Duration| jobs.len() as f64 / wall.as_secs_f64().max(1e-9);
    print_table(
        "e9_serve (shared-path throughput, zero faults)",
        &["config", "rows", "wall (us)", "queries/s", "q-wait (us)", "eval (us)"],
        &[
            vec![
                "serial (&self path)".into(),
                serial_rows.to_string(),
                us(serial),
                format!("{:.0}", qps(serial)),
                "-".into(),
                "-".into(),
            ],
            vec![
                "pool x1".into(),
                one.rows.to_string(),
                us(one.wall),
                format!("{:.0}", qps(one.wall)),
                format!("{:.0}", one.queue_wait_us),
                format!("{:.0}", one.eval_us),
            ],
            vec![
                format!("pool x{pool}"),
                pooled.rows.to_string(),
                us(pooled.wall),
                format!("{:.0}", qps(pooled.wall)),
                format!("{:.0}", pooled.queue_wait_us),
                format!("{:.0}", pooled.eval_us),
            ],
        ],
    );
    println!("\npool x{pool} speedup over serial: {speedup:.2}x");
    println!(
        "pool x{pool} mean per-job split: {:.0}us queued, {:.0}us evaluating",
        pooled.queue_wait_us, pooled.eval_us
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("chains", chains.to_string()),
            ("jobs", jobs.len().to_string()),
            ("rows", serial_rows.to_string()),
            ("workers", pool.to_string()),
            ("serial_us", us(serial)),
            ("pool1_us", us(one.wall)),
            ("pool_us", us(pooled.wall)),
            ("speedup", format!("{speedup:.3}")),
            ("pool1_queue_wait_us", format!("{:.1}", one.queue_wait_us)),
            ("pool1_eval_us", format!("{:.1}", one.eval_us)),
            ("pool_queue_wait_us", format!("{:.1}", pooled.queue_wait_us)),
            ("pool_eval_us", format!("{:.1}", pooled.eval_us)),
        ],
    )
    .expect("dump BENCH_serve.json");
    println!("wrote {out}");
}
