//! E9 — serving throughput: the lock-free snapshot query path through
//! the `clogic-serve` thread pool vs the same workload run serially.
//!
//! The design claim under test: after `Session::prepare` publishes an
//! immutable `SessionSnapshot`, workers answer entirely from the pinned
//! snapshot — no session lock, no per-query artifact clone — and the
//! snapshot's cross-strategy answer cache absorbs repeated queries. With
//! zero faults the serving layer's robustness machinery stays entirely
//! off the books (no sheds, no retries, no breaker transitions).
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration for CI; either mode dumps `BENCH_serve.json` at the
//! workspace root, including per-job latency percentiles (p50/p95/p99,
//! interpolated within log₂ buckets) for queue wait and evaluation, and the
//! snapshot cache hit/miss counts. Answer counts are cross-checked
//! between every configuration, so a speedup can never come from
//! dropped work. Setting `BENCH_SERVE_MIN_SPEEDUP` (e.g. in CI) fails
//! the run if the 2-worker zero-fault speedup drops below it.

use clogic::folog::Budget;
use clogic::{Session, SessionOptions, Strategy};
use clogic_bench::graphs;
use clogic_bench::measure::{dump_json, print_table, us};
use clogic_serve::{ServeOptions, Server};
use std::time::{Duration, Instant};

/// The job mix: one endpoint query per chain, under a strategy rotation
/// that mixes cheap saturated-model reads with per-query evaluations
/// (tabling, magic sets), repeated `reps` times. The repeats are what
/// the snapshot answer cache is for: every chain's query recurs under
/// rotating strategies, and complete answers are strategy-agnostic.
fn jobs(chains: usize, reps: usize) -> Vec<(String, Strategy)> {
    let rotation = [Strategy::BottomUpSemiNaive, Strategy::Tabled, Strategy::Magic];
    let mut out = Vec::new();
    for r in 0..reps {
        for c in 0..chains {
            out.push((
                format!("path: P[src => c{c}n0, dest => D]"),
                rotation[(r + c) % rotation.len()],
            ));
        }
    }
    out
}

fn session(chains: usize, len: usize) -> Session {
    let mut s = Session::with_options(SessionOptions {
        termination_guard: false,
        ..SessionOptions::default()
    });
    s.load_program(graphs::with_rules(
        &graphs::disjoint_chains(chains, len),
        graphs::path_rules_by_endpoints(),
    ));
    s.prepare().expect("prepare artifacts");
    s
}

/// Serial reference: the same shared path one thread, **without** the
/// serving layer's snapshot answer cache — every job evaluates.
fn run_serial(s: &Session, jobs: &[(String, Strategy)]) -> (usize, Duration) {
    let unlimited = Budget::unlimited();
    let start = Instant::now();
    let mut rows = 0;
    for (q, strategy) in jobs {
        rows += s.query_shared(q, *strategy, &unlimited).expect("query").rows.len();
    }
    (rows, start.elapsed())
}

/// Per-job latency percentiles (interpolated within log₂ buckets, µs).
#[derive(Clone, Copy, Default)]
struct Percentiles {
    p50: u64,
    p95: u64,
    p99: u64,
}

impl Percentiles {
    fn cell(&self) -> String {
        format!("{}/{}/{}", self.p50, self.p95, self.p99)
    }
}

/// One pooled run's readout: answers, wall time, where the time went
/// per job — waiting in the admission queue vs evaluating (means and
/// percentiles from the `serve.queue_wait_us` / `serve.eval_us`
/// histograms) — and how the snapshot answer cache fared.
struct PoolRun {
    rows: usize,
    wall: Duration,
    /// Mean microseconds a job sat queued before a worker picked it up.
    queue_wait_us: f64,
    /// Mean microseconds a worker spent evaluating a job.
    eval_us: f64,
    queue_wait: Percentiles,
    eval: Percentiles,
    /// Jobs served from the snapshot's cross-strategy answer cache.
    cache_hits: u64,
    /// Jobs that evaluated (and, when complete, filled the cache).
    cache_misses: u64,
    /// The `sessions.snapshot_epoch` gauge: epoch of the last published
    /// snapshot.
    snapshot_epoch: u64,
}

/// The same jobs through a server with `workers` threads; all submitted
/// before any ticket is redeemed, so evaluations overlap fully.
fn run_pool(s: Session, workers: usize, jobs: &[(String, Strategy)]) -> PoolRun {
    let server = Server::start(
        s,
        ServeOptions {
            workers,
            queue_depth: jobs.len().max(64),
            default_deadline: None,
        },
    )
    .expect("start server");
    let start = Instant::now();
    let pending: Vec<_> = jobs
        .iter()
        .map(|(q, strategy)| server.submit(q, *strategy).expect("submit"))
        .collect();
    let mut rows = 0;
    for p in pending {
        rows += p.wait().expect("answer").rows.len();
    }
    let wall = start.elapsed();
    let snap = server.obs().metrics.snapshot();
    assert_eq!(snap.counter("serve.shed").unwrap_or(0), 0, "zero-fault sheds");
    assert_eq!(snap.counter("serve.retry").unwrap_or(0), 0, "zero-fault retries");
    assert_eq!(snap.counter("serve.worker_panics").unwrap_or(0), 0);
    let mean = |name: &str| match snap.histogram(name) {
        Some((count, sum)) if count > 0 => sum as f64 / count as f64,
        _ => 0.0,
    };
    let pcts = |name: &str| {
        snap.histograms
            .get(name)
            .map(|h| Percentiles {
                p50: h.percentile(0.50).unwrap_or(0),
                p95: h.percentile(0.95).unwrap_or(0),
                p99: h.percentile(0.99).unwrap_or(0),
            })
            .unwrap_or_default()
    };
    let run = PoolRun {
        rows,
        wall,
        queue_wait_us: mean("serve.queue_wait_us"),
        eval_us: mean("serve.eval_us"),
        queue_wait: pcts("serve.queue_wait_us"),
        eval: pcts("serve.eval_us"),
        cache_hits: snap.counter("serve.snapshot.cache.hit").unwrap_or(0),
        cache_misses: snap.counter("serve.snapshot.cache.miss").unwrap_or(0),
        snapshot_epoch: snap.gauge("sessions.snapshot_epoch").unwrap_or(0),
    };
    server.shutdown();
    run
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (chains, len, reps) = if test_mode { (8, 8, 3) } else { (24, 12, 4) };
    // The headline configuration is 2 workers — the smallest pool that
    // can demonstrate the lock-free read path, and the one the CI
    // speedup gate (BENCH_SERVE_MIN_SPEEDUP) judges.
    let pool = 2;
    let jobs = jobs(chains, reps);

    let (serial_rows, serial) = run_serial(&session(chains, len), &jobs);
    let one = run_pool(session(chains, len), 1, &jobs);
    let pooled = run_pool(session(chains, len), pool, &jobs);
    assert_eq!(serial_rows, one.rows, "1-worker pool changed answers");
    assert_eq!(serial_rows, pooled.rows, "{pool}-worker pool changed answers");

    let speedup = serial.as_secs_f64() / pooled.wall.as_secs_f64().max(1e-9);
    let qps = |wall: Duration| jobs.len() as f64 / wall.as_secs_f64().max(1e-9);
    print_table(
        "e9_serve (snapshot-path throughput, zero faults)",
        &[
            "config",
            "rows",
            "wall (us)",
            "queries/s",
            "q-wait p50/p95/p99",
            "eval p50/p95/p99",
            "cache h/m",
        ],
        &[
            vec![
                "serial (&self path)".into(),
                serial_rows.to_string(),
                us(serial),
                format!("{:.0}", qps(serial)),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
            vec![
                "pool x1".into(),
                one.rows.to_string(),
                us(one.wall),
                format!("{:.0}", qps(one.wall)),
                one.queue_wait.cell(),
                one.eval.cell(),
                format!("{}/{}", one.cache_hits, one.cache_misses),
            ],
            vec![
                format!("pool x{pool}"),
                pooled.rows.to_string(),
                us(pooled.wall),
                format!("{:.0}", qps(pooled.wall)),
                pooled.queue_wait.cell(),
                pooled.eval.cell(),
                format!("{}/{}", pooled.cache_hits, pooled.cache_misses),
            ],
        ],
    );
    println!("\npool x{pool} speedup over serial: {speedup:.2}x");
    println!(
        "pool x{pool} mean per-job split: {:.0}us queued, {:.0}us evaluating; snapshot epoch {}",
        pooled.queue_wait_us, pooled.eval_us, pooled.snapshot_epoch
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("chains", chains.to_string()),
            ("jobs", jobs.len().to_string()),
            ("rows", serial_rows.to_string()),
            ("workers", pool.to_string()),
            ("serial_us", us(serial)),
            ("pool1_us", us(one.wall)),
            ("pool_us", us(pooled.wall)),
            ("speedup", format!("{speedup:.3}")),
            ("pool1_queue_wait_us", format!("{:.1}", one.queue_wait_us)),
            ("pool1_eval_us", format!("{:.1}", one.eval_us)),
            ("pool_queue_wait_us", format!("{:.1}", pooled.queue_wait_us)),
            ("pool_eval_us", format!("{:.1}", pooled.eval_us)),
            ("pool_queue_wait_p50_us", pooled.queue_wait.p50.to_string()),
            ("pool_queue_wait_p95_us", pooled.queue_wait.p95.to_string()),
            ("pool_queue_wait_p99_us", pooled.queue_wait.p99.to_string()),
            ("pool_eval_p50_us", pooled.eval.p50.to_string()),
            ("pool_eval_p95_us", pooled.eval.p95.to_string()),
            ("pool_eval_p99_us", pooled.eval.p99.to_string()),
            ("pool1_eval_p50_us", one.eval.p50.to_string()),
            ("pool1_eval_p95_us", one.eval.p95.to_string()),
            ("pool1_eval_p99_us", one.eval.p99.to_string()),
            ("pool_cache_hits", pooled.cache_hits.to_string()),
            ("pool_cache_misses", pooled.cache_misses.to_string()),
            ("snapshot_epoch", pooled.snapshot_epoch.to_string()),
        ],
    )
    .expect("dump BENCH_serve.json");
    println!("wrote {out}");

    // CI gate: the lock-free snapshot path must actually pay off. Only
    // enforced when the environment asks (local runs stay informative).
    if let Ok(min) = std::env::var("BENCH_SERVE_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("BENCH_SERVE_MIN_SPEEDUP is a float");
        assert!(
            speedup >= min,
            "zero-fault {pool}-worker speedup {speedup:.3}x fell below the {min}x floor"
        );
    }
}
