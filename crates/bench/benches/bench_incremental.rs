//! E7 — incremental re-query after a 1-fact delta vs full recompute.
//!
//! The serving-workload scenario the epoch-versioned session exists for:
//! a large path database is loaded and saturated once; then a single
//! edge arrives. The resumed session extends the cached translation,
//! seeds the saturated fixpoint with the delta, and answers from the
//! incrementally grown model; the baseline recomputes everything from
//! scratch. Expected shape: the incremental path wins by well over an
//! order of magnitude, because the delta only touches one chain
//! component.
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration (for CI); the full run asserts the ≥10× speedup.
//! Either mode dumps `BENCH_incremental.json` at the workspace root.

use clogic::{Session, SessionOptions, Strategy};
use clogic_bench::graphs;
use clogic_bench::measure::{dump_json, print_table, us};
use clogic_core::program::Program;
use std::time::{Duration, Instant};

const QUERY: &str = "path: P[src => c0n0, dest => D]";

/// The path workload is recursive *and* constructs `id(X, Y)` identities
/// in rule heads, which is exactly the syntactic shape the termination
/// guard flags — here the closure is provably bounded by the disjoint
/// chains, so the guard's small fact ceiling must not apply.
fn session() -> Session {
    Session::with_options(SessionOptions {
        termination_guard: false,
        ..SessionOptions::default()
    })
}

struct Timed {
    answers: usize,
    wall: Duration,
}

fn timed_query(s: &mut Session, strategy: Strategy) -> Timed {
    let start = Instant::now();
    let r = s.query(QUERY, strategy).expect("query succeeds");
    assert!(r.complete, "workload must saturate, got {:?}", r.degradation);
    Timed {
        answers: r.rows.len(),
        wall: start.elapsed(),
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (chains, len) = if test_mode { (50, 10) } else { (1000, 10) };
    let strategy = Strategy::BottomUpSemiNaive;

    let base = graphs::with_rules(
        &graphs::disjoint_chains(chains, len),
        graphs::path_rules_by_endpoints(),
    );
    let mut delta = Program::new();
    delta.push(graphs::link(&format!("c0n{len}"), &format!("c0n{}", len + 1)));
    let mut combined = base.clone();
    combined.clauses.extend(delta.clauses.clone());

    // Serving session: saturate once, then apply the delta and re-query.
    let mut incremental = session();
    incremental.load_program(base);
    let cold = timed_query(&mut incremental, strategy);
    let epoch_before = incremental.epoch();
    incremental.load_program(delta);
    let warm = timed_query(&mut incremental, strategy);
    assert_eq!(incremental.epoch(), epoch_before + 1);
    assert_eq!(warm.answers, cold.answers + 1, "delta adds one path endpoint");

    // Baseline: a fresh session over the combined program (full
    // translation, compilation and fixpoint inside the timed query).
    let mut scratch = session();
    scratch.load_program(combined);
    let full = timed_query(&mut scratch, strategy);
    assert_eq!(full.answers, warm.answers, "incremental answers must match");

    let speedup = full.wall.as_secs_f64() / warm.wall.as_secs_f64().max(1e-9);
    print_table(
        "e7_incremental (1-fact delta re-query vs full recompute)",
        &["config", "edges", "answers", "wall (us)"],
        &[
            vec![
                "cold load+query".into(),
                (chains * len).to_string(),
                cold.answers.to_string(),
                us(cold.wall),
            ],
            vec![
                "incremental re-query".into(),
                (chains * len + 1).to_string(),
                warm.answers.to_string(),
                us(warm.wall),
            ],
            vec![
                "full recompute".into(),
                (chains * len + 1).to_string(),
                full.answers.to_string(),
                us(full.wall),
            ],
        ],
    );
    println!("\nspeedup (full / incremental): {speedup:.1}x");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_incremental.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("chains", chains.to_string()),
            ("edges", (chains * len).to_string()),
            ("answers", warm.answers.to_string()),
            ("cold_us", us(cold.wall)),
            ("incremental_us", us(warm.wall)),
            ("full_us", us(full.wall)),
            ("speedup", format!("{speedup:.2}")),
        ],
    )
    .expect("benchmark dump written");
    println!("wrote {out}");

    if !test_mode {
        assert!(
            speedup >= 10.0,
            "incremental re-query must be at least 10x faster than a full \
             recompute, measured {speedup:.1}x"
        );
    }
}
