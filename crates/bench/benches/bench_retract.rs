//! E12 — incremental re-query after a small retraction vs full rebuild.
//!
//! The deletion mirror of E7: a large path database is loaded and
//! saturated once; then one edge is *retracted*. The session repairs its
//! cached saturated model with the DRed delete-rederive pass (overdelete
//! the edge's consequences, rederive survivors — work proportional to
//! the one affected chain component) and re-answers; the baseline
//! rebuilds a fresh session over the reduced program and pays the whole
//! fixpoint again. Expected shape: retraction wins by well over an order
//! of magnitude, because only one component's paths are touched.
//!
//! Hand-written harness (`harness = false`): `--test` runs a small smoke
//! configuration (for CI); the full run asserts the speedup floor, which
//! `BENCH_RETRACT_MIN_SPEEDUP` overrides (default 10). Either mode dumps
//! `BENCH_retract.json` at the workspace root.

use clogic::{Session, SessionOptions, Strategy};
use clogic_bench::graphs;
use clogic_bench::measure::{dump_json, print_table, us};
use std::time::{Duration, Instant};

const QUERY: &str = "path: P[src => c0n0, dest => D]";

/// The §2.1 path rules in their *non-linear* form: a path decomposes
/// into two subpaths rather than an edge plus a path. The least model
/// is the same (`len²/2` paths per chain), but saturation work is
/// cubic in the chain length — every path of length `L` has `L - 1`
/// derivations — which is exactly the regime where rebuilding from
/// scratch is painful and a localized DRed repair shines.
const NONLINEAR_PATH_RULES: &str =
    "path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].\n\
     path: id(X, Y)[src => X, dest => Y] :-\n\
         path: id(X, Z)[src => X, dest => Z],\n\
         path: id(Z, Y)[src => Z, dest => Y].\n";

/// Same guard exemption as E7: the path rules mint `id(X, Y)` in rule
/// heads, which the termination guard flags, but the closure is bounded
/// by the disjoint chains. The full workload's saturated model also
/// exceeds the session-default 1M fact ceiling, so the fixpoint cap is
/// lifted (the closure is finite — the ceiling is a safety net, not a
/// correctness bound).
fn session() -> Session {
    let mut opts = SessionOptions {
        termination_guard: false,
        ..SessionOptions::default()
    };
    opts.fixpoint.max_facts = None;
    opts.fixpoint.max_iterations = None;
    Session::with_options(opts)
}

struct Timed {
    answers: usize,
    wall: Duration,
}

fn timed_query(s: &mut Session, strategy: Strategy) -> Timed {
    let start = Instant::now();
    let r = s.query(QUERY, strategy).expect("query succeeds");
    assert!(r.complete, "workload must saturate, got {:?}", r.degradation);
    Timed {
        answers: r.rows.len(),
        wall: start.elapsed(),
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    // Many medium chains under the non-linear closure: the full
    // fixpoint pays ~`chains * len^3 / 6` join steps while the DRed
    // repair pays only the one affected chain's share (plus
    // retranslation and index rebuilds, linear in the store), so the
    // gap widens with the chain count.
    let (chains, len) = if test_mode { (20, 15) } else { (150, 30) };
    let strategy = Strategy::BottomUpSemiNaive;

    let base = graphs::with_rules(&graphs::disjoint_chains(chains, len), NONLINEAR_PATH_RULES);
    // The doomed edge sits mid-chain in component 0: retracting it cuts
    // every path crossing it but leaves the other `chains - 1`
    // components (and the prefix/suffix of chain 0) intact.
    let doomed = graphs::link(&format!("c0n{}", len / 2), &format!("c0n{}", len / 2 + 1));
    let doomed_src = doomed.to_string();

    // Serving session: saturate once, then retract and re-query. The
    // timed span covers the whole deletion — DRed patch plus re-query —
    // since that is what a caller waits for.
    let mut incremental = session();
    incremental.load_program(base.clone());
    let cold = timed_query(&mut incremental, strategy);
    let epoch_before = incremental.epoch();
    let start = Instant::now();
    incremental.retract(&doomed_src).expect("retract succeeds");
    let warm = timed_query(&mut incremental, strategy);
    let retract_wall = start.elapsed();
    assert_eq!(incremental.epoch(), epoch_before + 1);
    assert!(
        warm.answers < cold.answers,
        "retraction must remove reachable destinations"
    );

    // Baseline: a fresh session over the reduced program — full
    // translation, compilation and fixpoint inside the timed span.
    let mut reduced = graphs::disjoint_chains(chains, len);
    reduced.clauses.retain(|c| c.to_string() != doomed_src);
    let reduced = graphs::with_rules(&reduced, NONLINEAR_PATH_RULES);
    let mut scratch = session();
    let start = Instant::now();
    scratch.load_program(reduced);
    let full = timed_query(&mut scratch, strategy);
    let full_wall = start.elapsed();
    assert_eq!(full.answers, warm.answers, "retraction answers must match");

    let speedup = full_wall.as_secs_f64() / retract_wall.as_secs_f64().max(1e-9);
    print_table(
        "e12_retract (1-fact retraction re-query vs full rebuild)",
        &["config", "edges", "answers", "wall (us)"],
        &[
            vec![
                "cold load+query".into(),
                (chains * len).to_string(),
                cold.answers.to_string(),
                us(cold.wall),
            ],
            vec![
                "retract + re-query (DRed)".into(),
                (chains * len - 1).to_string(),
                warm.answers.to_string(),
                us(retract_wall),
            ],
            vec![
                "full rebuild".into(),
                (chains * len - 1).to_string(),
                full.answers.to_string(),
                us(full_wall),
            ],
        ],
    );
    println!("\nspeedup (full rebuild / retract): {speedup:.1}x");

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_retract.json");
    dump_json(
        out,
        &[
            ("mode", format!("\"{}\"", if test_mode { "test" } else { "full" })),
            ("chains", chains.to_string()),
            ("edges", (chains * len).to_string()),
            ("answers", warm.answers.to_string()),
            ("cold_us", us(cold.wall)),
            ("retract_us", us(retract_wall)),
            ("full_us", us(full_wall)),
            ("speedup", format!("{speedup:.2}")),
        ],
    )
    .expect("benchmark dump written");
    println!("wrote {out}");

    if !test_mode {
        let floor = std::env::var("BENCH_RETRACT_MIN_SPEEDUP")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(10.0);
        assert!(
            speedup >= floor,
            "retraction re-query must be at least {floor}x faster than a \
             full rebuild, measured {speedup:.1}x"
        );
    }
}
