//! E9 — stratified negation: the reachability complement costs one extra
//! stratum over the positive fixpoint (constant-factor, not asymptotic).

use clogic_bench::graphs;
use clogic_bench::measure::translate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_stratified_negation");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let base = graphs::two_chains(n);
        let positive = CompiledProgram::compile(
            &translate(
                &graphs::with_rules(
                    &base,
                    "reached: n0.\n\
                     reached: Y :- reached: X, node: X[linkto => Y].\n",
                ),
                true,
            ),
            builtin_symbols(),
        );
        let with_negation = CompiledProgram::compile(
            &translate(
                &graphs::with_rules(
                    &base,
                    "reached: n0.\n\
                     reached: Y :- reached: X, node: X[linkto => Y].\n\
                     unreachable: X :- node: X, \\+ reached: X.\n",
                ),
                true,
            ),
            builtin_symbols(),
        );
        group.bench_with_input(BenchmarkId::new("positive_closure", n), &n, |b, _| {
            b.iter(|| {
                let ev = evaluate(&positive, FixpointOptions::default()).unwrap();
                assert!(ev.facts.total > 0);
            })
        });
        group.bench_with_input(BenchmarkId::new("with_complement", n), &n, |b, _| {
            b.iter(|| {
                let ev = evaluate(&with_negation, FixpointOptions::default()).unwrap();
                assert!(ev.facts.total > 0);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
