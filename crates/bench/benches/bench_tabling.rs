//! E5b — tabled evaluation on cyclic graphs, where plain SLD diverges.
//!
//! Expected shape: tabling terminates with the complete answer set in
//! time polynomial in the cycle size; SLD burns its full step budget and
//! still reports an incomplete search.

use clogic_bench::graphs;
use clogic_bench::measure::translate;
use clogic_core::transform::Transformer;
use clogic_parser::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;
use folog::tabling::{TabledEngine, TablingOptions};
use folog::{CompiledProgram, SldEngine, SldOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5b_tabling");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let program = graphs::with_rules(&graphs::cycle(n), graphs::path_rules_by_endpoints());
        let compiled = CompiledProgram::compile(&translate(&program, true), builtin_symbols());
        let q = parse_query("path: P[src => n0, dest => D]").unwrap();
        let goals = Transformer::new().query(&q);
        group.bench_with_input(BenchmarkId::new("tabled", n), &n, |b, _| {
            b.iter(|| {
                let r = TabledEngine::new(&compiled, TablingOptions::default())
                    .solve(&goals)
                    .unwrap();
                assert_eq!(r.answers.len(), n); // every node reachable
            })
        });
        // SLD with a fixed budget: measures the cost of *failing* to
        // exhaust an infinite SLD tree.
        group.bench_with_input(BenchmarkId::new("sld_budget_20k", n), &n, |b, _| {
            let opts = SldOptions {
                max_depth: Some(100),
                max_steps: Some(20_000),
                ..Default::default()
            };
            b.iter(|| {
                let r = SldEngine::new(&compiled, opts.clone()).solve(&goals).unwrap();
                assert!(!r.complete);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
