//! E7 — cost of the Theorem 1 transformation itself (with and without the
//! §4 optimization) as program size grows.
//!
//! Expected shape: linear in the number of C-logic atoms.

use clogic_bench::measure::translate;
use clogic_bench::objects;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_transform");
    group.sample_size(20);
    for n in [250usize, 1000, 4000] {
        let program = objects::functional_objects(n, 4, 8, 23);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |b, _| {
            b.iter(|| {
                let fo = translate(&program, false);
                assert!(fo.len() > n);
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter(|| {
                let fo = translate(&program, true);
                assert!(fo.len() > n);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
