//! E2 — residuation: whole-molecule queries whose description is split
//! across rules vs the merged extensional store (§4's intensional vs
//! extensional discussion).
//!
//! Expected shape: merged-store answers are near-constant; the split
//! (residuating) cost grows with the number of pieces but stays
//! polynomial thanks to ordered piece selection.

use clogic_bench::objects;
use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
use clogic_parser::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_residuation");
    group.sample_size(20);
    let n = 50usize;
    for pieces in [2usize, 4, 8] {
        let split =
            DirectProgram::compile(&objects::split_descriptions(n, pieces), builtin_symbols());
        let merged =
            DirectProgram::compile(&objects::merged_descriptions(n, pieces), builtin_symbols());
        let q = parse_query(&objects::split_query(n / 2, pieces)).unwrap();
        group.bench_with_input(BenchmarkId::new("split_rules", pieces), &pieces, |b, _| {
            let engine = DirectEngine::new(&split, DirectOptions::default());
            b.iter(|| {
                let r = engine.solve(&q).unwrap();
                assert_eq!(r.answers.len(), 1);
                assert!(r.stats.residuals > 0);
            })
        });
        group.bench_with_input(BenchmarkId::new("merged_store", pieces), &pieces, |b, _| {
            let engine = DirectEngine::new(&merged, DirectOptions::default());
            b.iter(|| {
                let r = engine.solve(&q).unwrap();
                assert_eq!(r.answers.len(), 1);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
