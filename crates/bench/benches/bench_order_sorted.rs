//! E4 — order-sorted resolution (direct engine walks the hierarchy) vs
//! executing type-axiom clauses in the translated program (§4: "using
//! order-sorted resolution may be more efficient in dealing with
//! inheritance hierarchies").
//!
//! Expected shape: the direct engine's cost stays flat as hierarchy depth
//! grows (reachability over declared edges), while the translated route
//! derives one fact per member per level.

use clogic_bench::measure::translate;
use clogic_bench::typed;
use clogic_core::transform::Transformer;
use clogic_engine::{DirectEngine, DirectOptions, DirectProgram};
use clogic_parser::parse_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

const MEMBERS: usize = 200;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_order_sorted");
    group.sample_size(20);
    for depth in [4usize, 16, 64] {
        let program = typed::chain_hierarchy(depth, MEMBERS);
        let direct_program = DirectProgram::compile(&program, builtin_symbols());
        let compiled = CompiledProgram::compile(&translate(&program, true), builtin_symbols());
        let q = parse_query(&typed::top_query(depth)).unwrap();
        let goals = Transformer::new().query(&q);
        group.bench_with_input(
            BenchmarkId::new("order_sorted_direct", depth),
            &depth,
            |b, _| {
                let engine = DirectEngine::new(&direct_program, DirectOptions::default());
                b.iter(|| {
                    let r = engine.solve(&q).unwrap();
                    assert_eq!(r.answers.len(), MEMBERS);
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("type_axioms_bottom_up", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let ev = evaluate(&compiled, FixpointOptions::default()).unwrap();
                    let answers = ev.query(&goals);
                    assert_eq!(answers.len(), MEMBERS);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
