//! E3 — the §4 redundancy-elimination rules: bottom-up evaluation of the
//! plain vs optimized translation of the scaled grammar.
//!
//! Expected shape: the optimized program evaluates strictly faster, with
//! the gap growing with scale (fewer typing atoms to join and derive).

use clogic_bench::grammar;
use clogic_bench::measure::translate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_redundancy_elim");
    group.sample_size(15);
    for scale in [8usize, 32, 96] {
        let program = grammar::grammar(scale, scale, scale / 2);
        let plain = CompiledProgram::compile(&translate(&program, false), builtin_symbols());
        let optimized = CompiledProgram::compile(&translate(&program, true), builtin_symbols());
        group.bench_with_input(BenchmarkId::new("plain", scale), &scale, |b, _| {
            b.iter(|| {
                let ev = evaluate(&plain, FixpointOptions::default()).unwrap();
                assert!(ev.facts.total > 0);
            })
        });
        group.bench_with_input(BenchmarkId::new("optimized", scale), &scale, |b, _| {
            b.iter(|| {
                let ev = evaluate(&optimized, FixpointOptions::default()).unwrap();
                assert!(ev.facts.total > 0);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
