//! E5a — naive vs semi-naive bottom-up evaluation of the recursive `path`
//! program over chains.
//!
//! Expected shape: semi-naive beats naive by a factor growing with chain
//! length (naive re-joins the full `path` relation every round).

use clogic_bench::graphs;
use clogic_bench::measure::translate;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folog::builtins::builtin_symbols;
use folog::{evaluate, CompiledProgram, FixpointOptions, Strategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5a_fixpoint");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let program = graphs::with_rules(&graphs::chain(n), graphs::path_rules_by_endpoints());
        let compiled = CompiledProgram::compile(&translate(&program, true), builtin_symbols());
        let expected = n * (n + 1) / 2; // all i<j pairs
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let ev = evaluate(
                    &compiled,
                    FixpointOptions {
                        strategy: Strategy::Naive,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    ev.facts
                        .relation(clogic_core::sym("path"), 1)
                        .unwrap()
                        .len(),
                    expected
                );
            })
        });
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| {
                let ev = evaluate(
                    &compiled,
                    FixpointOptions {
                        strategy: Strategy::SemiNaive,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    ev.facts
                        .relation(clogic_core::sym("path"), 1)
                        .unwrap()
                        .len(),
                    expected
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
