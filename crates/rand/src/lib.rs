//! Minimal in-repo stand-in for the subset of the `rand` crate API this
//! workspace uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open integer ranges.
//!
//! The build environment has no access to a crates registry, so external
//! dependencies are replaced by local path crates with the same package
//! name. This generator is a deterministic splitmix64 — statistically fine
//! for benchmark data generation, and stable per seed across runs (the
//! bench suite asserts reproducibility). It is **not** cryptographically
//! secure and makes no attempt to match upstream `rand`'s value streams.

#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Draw a value in `[range.start, range.end)` using `next` as the entropy source.
    fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range: empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = range.end.wrapping_sub(range.start) as u64;
                // Modulo bias is irrelevant for test-data generation.
                range.start.wrapping_add((next() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range: empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as $u).wrapping_sub(range.start as $u) as u64;
                range.start.wrapping_add((next() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

/// Random number generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Produce the next 64 bits of output.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(range, &mut || self.next_u64())
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng {
                // Avoid the all-zero fixpoint-free but weak low-entropy start.
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
