//! Recursive-descent parser for C-logic programs.
//!
//! Grammar (terminals in quotes; `…*` = repetition with separators):
//!
//! ```text
//! program  := item*
//! item     := IDENT '<' IDENT '.'                      (subtype declaration)
//!           | ':-' atoms '.'                           (query)
//!           | atomic (':-' atoms)? '.'                 (fact / rule)
//! atoms    := atomic (',' atomic)*
//! atomic   := operand (INFIX operand)?                 (INFIX: is < > =< >= =:= =\= = \= == \==)
//! operand  := arith                                    (arithmetic over terms)
//! term     := (IDENT ':')? base ('[' spec, … ']')?
//! base     := VAR | INT | STRING | IDENT ('(' term, … ')')?
//!           | OP '(' term, … ')'                       (prefix form of operators)
//! spec     := IDENT '=>' (term | '{' term, … '}')
//! ```
//!
//! Disambiguation at formula position: `f(a, b)` with no explicit type
//! prefix and no label brackets is a *predicate* atom (predicates and
//! function symbols are disjoint in the paper, and this matches every
//! example); anything type-prefixed, bracketed, or atomic (`john`, `X`)
//! is a term formula.

use crate::lexer::{tokenize, tokenize_recovering, LexError};
use crate::token::{Spanned, Token};
use clogic_core::formula::{Atomic, DefiniteClause, Query};
use clogic_core::hierarchy::object_type;
use clogic_core::program::Program;
use clogic_core::symbol::Symbol;
use clogic_core::term::{Const, IdTerm, LabelSpec, LabelValue, Term};
use std::fmt;

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// All diagnostics from one parse, in source order. [`parse_source`] and
/// [`parse_program`] recover at the next `.` after an error and keep
/// going, so a single bad clause reports itself without hiding problems in
/// the rest of the file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseErrors {
    /// The individual positioned diagnostics; never empty.
    pub errors: Vec<ParseError>,
}

impl ParseErrors {
    /// The first (source-order) diagnostic.
    pub fn first(&self) -> &ParseError {
        &self.errors[0]
    }
}

impl fmt::Display for ParseErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseErrors {}

impl From<ParseError> for ParseErrors {
    fn from(e: ParseError) -> ParseErrors {
        ParseErrors { errors: vec![e] }
    }
}

impl From<LexError> for ParseErrors {
    fn from(e: LexError) -> ParseErrors {
        ParseError::from(e).into()
    }
}

/// The result of parsing a source file: the program plus any queries that
/// appeared in it, in source order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedSource {
    /// Subtype declarations and clauses.
    pub program: Program,
    /// Queries (`:- ….` items).
    pub queries: Vec<Query>,
}

/// Parses a complete source string, collecting **all** diagnostics: after
/// a lexical or syntax error the parser resynchronizes at the next `.`
/// and continues with the following item, so the returned error lists
/// every problem in the file with its line/column, not just the first.
pub fn parse_source(src: &str) -> Result<ParsedSource, ParseErrors> {
    let (tokens, lex_errors) = tokenize_recovering(src);
    let mut errors: Vec<ParseError> = lex_errors.into_iter().map(ParseError::from).collect();
    let mut p = Parser { tokens, pos: 0 };
    let mut out = ParsedSource::default();
    while !p.at(&Token::Eof) {
        let before = p.pos;
        if let Err(e) = p.item(&mut out) {
            errors.push(e);
            p.recover_to_next_item(before);
        }
    }
    if errors.is_empty() {
        Ok(out)
    } else {
        Err(ParseErrors { errors })
    }
}

/// Parses a program, rejecting queries.
///
/// ```
/// let program = clogic_parser::parse_program(
///     "propernp < noun_phrase.\n\
///      determiner: the[num => {singular, plural}, def => definite].",
/// )
/// .unwrap();
/// assert_eq!(program.clauses.len(), 1);
/// assert_eq!(program.subtype_decls.len(), 1);
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseErrors> {
    let parsed = parse_source(src)?;
    if parsed.queries.is_empty() {
        Ok(parsed.program)
    } else {
        Err(ParseError {
            message: "unexpected query in program".into(),
            line: 0,
            col: 0,
        }
        .into())
    }
}

/// Parses a single query, with or without the leading `:-`; the trailing
/// `.` is optional.
///
/// ```
/// let q = clogic_parser::parse_query(":- person: X[age => A], A >= 18.").unwrap();
/// assert_eq!(q.goals.len(), 2);
/// assert_eq!(q.to_string(), ":- person: X[age => A], >=(A, 18).");
/// ```
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut p = Parser::new(src)?;
    if p.at(&Token::If) {
        p.bump();
    }
    let (goals, neg_goals) = p.signed_atoms()?;
    if p.at(&Token::Dot) {
        p.bump();
    }
    p.expect(Token::Eof)?;
    Ok(Query::with_negation(goals, neg_goals))
}

/// Parses a single term.
pub fn parse_term(src: &str) -> Result<Term, ParseError> {
    let mut p = Parser::new(src)?;
    let t = p.term()?;
    p.expect(Token::Eof)?;
    Ok(t.term)
}

const INFIX_PREDS: &[&str] = &[
    "is", "<", ">", "=<", ">=", "=:=", "=\\=", "=", "\\=", "==", "\\==",
];

/// A parsed operand with the flags the formula-position disambiguation
/// needs.
struct Operand {
    term: Term,
    /// The source had an explicit `type :` prefix.
    explicit_type: bool,
    /// The source had `[…]` label brackets.
    has_labels: bool,
    /// Arithmetic operators were used infix.
    used_arith: bool,
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_ahead(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].token
    }

    fn at(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let s = &self.tokens[self.pos];
        ParseError {
            message: message.into(),
            line: s.line,
            col: s.col,
        }
    }

    /// Resynchronizes after a failed item: skip to just past the next `.`
    /// (the item terminator) so the following item parses on a clean
    /// boundary. `before` is where the failed item started; if the error
    /// consumed nothing, one token is skipped unconditionally to guarantee
    /// progress.
    fn recover_to_next_item(&mut self, before: usize) {
        if self.pos == before && !self.at(&Token::Eof) {
            self.bump();
        }
        while !self.at(&Token::Dot) && !self.at(&Token::Eof) {
            self.bump();
        }
        if self.at(&Token::Dot) {
            self.bump();
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        if self.peek() == &t {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                t.describe(),
                self.peek().describe()
            )))
        }
    }

    fn item(&mut self, out: &mut ParsedSource) -> Result<(), ParseError> {
        // Query?
        if self.at(&Token::If) {
            self.bump();
            let (goals, neg_goals) = self.signed_atoms()?;
            self.expect(Token::Dot)?;
            out.queries.push(Query::with_negation(goals, neg_goals));
            return Ok(());
        }
        // Subtype declaration? IDENT '<' IDENT '.'
        if let (Token::Ident(a), Token::Op(op), Token::Ident(b), Token::Dot) = (
            self.peek().clone(),
            self.peek_ahead(1).clone(),
            self.peek_ahead(2).clone(),
            self.peek_ahead(3).clone(),
        ) {
            let _ = &b;
            if op == "<" {
                self.bump();
                self.bump();
                let Token::Ident(b) = self.bump() else {
                    unreachable!()
                };
                self.expect(Token::Dot)?;
                out.program.declare_subtype(a.as_str(), b.as_str());
                return Ok(());
            }
        }
        // Fact or rule.
        let head = self.atomic()?;
        let (body, neg_body) = if self.at(&Token::If) {
            self.bump();
            self.signed_atoms()?
        } else {
            (Vec::new(), Vec::new())
        };
        self.expect(Token::Dot)?;
        out.program.push(DefiniteClause {
            head,
            body,
            neg_body,
        });
        Ok(())
    }

    /// A comma-separated list of atoms, each optionally prefixed `\+`.
    fn signed_atoms(&mut self) -> Result<(Vec<Atomic>, Vec<Atomic>), ParseError> {
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        loop {
            if matches!(self.peek(), Token::Op(o) if o == "\\+") {
                self.bump();
                neg.push(self.atomic()?);
            } else {
                pos.push(self.atomic()?);
            }
            if self.at(&Token::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        Ok((pos, neg))
    }

    fn atomic(&mut self) -> Result<Atomic, ParseError> {
        let lhs = self.operand()?;
        // Infix built-in predicate?
        if let Token::Op(op) = self.peek().clone() {
            if INFIX_PREDS.contains(&op.as_str()) {
                self.bump();
                let rhs = self.operand()?;
                return Ok(Atomic::pred(op.as_str(), vec![lhs.term, rhs.term]));
            }
        }
        if lhs.used_arith {
            return Err(self.error("arithmetic expression is not a formula"));
        }
        // Formula-position disambiguation.
        if !lhs.explicit_type && !lhs.has_labels {
            if let Term::Id(IdTerm::App { ty, functor, args }) = &lhs.term {
                if *ty == object_type() {
                    return Ok(Atomic::Pred {
                        pred: *functor,
                        args: args.clone(),
                    });
                }
            }
        }
        Ok(Atomic::Term(lhs.term))
    }

    /// operand := arithmetic additive expression over terms.
    fn operand(&mut self) -> Result<Operand, ParseError> {
        let mut lhs = self.mul_operand()?;
        loop {
            let op = match self.peek() {
                Token::Op(o) if o == "+" || o == "-" => o.clone(),
                _ => break,
            };
            self.bump();
            let rhs = self.mul_operand()?;
            lhs = Operand {
                term: Term::app(op.as_str(), vec![lhs.term, rhs.term]),
                explicit_type: false,
                has_labels: false,
                used_arith: true,
            };
        }
        Ok(lhs)
    }

    fn mul_operand(&mut self) -> Result<Operand, ParseError> {
        let mut lhs = self.unary_operand()?;
        loop {
            let op = match self.peek() {
                Token::Op(o) if o == "*" || o == "/" || o == "mod" => o.clone(),
                _ => break,
            };
            self.bump();
            let rhs = self.unary_operand()?;
            lhs = Operand {
                term: Term::app(op.as_str(), vec![lhs.term, rhs.term]),
                explicit_type: false,
                has_labels: false,
                used_arith: true,
            };
        }
        Ok(lhs)
    }

    fn unary_operand(&mut self) -> Result<Operand, ParseError> {
        if let Token::Op(o) = self.peek() {
            if o == "-" && self.peek_ahead(1) != &Token::LParen {
                self.bump();
                let inner = self.unary_operand()?;
                // Constant-fold a negated integer literal.
                if let Term::Id(IdTerm::Const {
                    c: Const::Int(i), ..
                }) = inner.term
                {
                    return Ok(Operand {
                        term: Term::int(-i),
                        explicit_type: false,
                        has_labels: false,
                        used_arith: inner.used_arith,
                    });
                }
                return Ok(Operand {
                    term: Term::app("-", vec![inner.term]),
                    explicit_type: false,
                    has_labels: false,
                    used_arith: true,
                });
            }
        }
        if self.at(&Token::LParen) {
            self.bump();
            let inner = self.operand()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        self.term()
    }

    /// term := (IDENT ':')? base ('[' specs ']')?
    fn term(&mut self) -> Result<Operand, ParseError> {
        // Optional type prefix: IDENT ':' (but not IDENT ':-').
        let mut ty: Option<Symbol> = None;
        let mut explicit_type = false;
        if let (Token::Ident(t), Token::Colon) = (self.peek().clone(), self.peek_ahead(1).clone()) {
            ty = Some(Symbol::new(&t));
            explicit_type = true;
            self.bump();
            self.bump();
        }
        let ty = ty.unwrap_or_else(object_type);
        let base = self.base(ty)?;
        // Optional molecule brackets.
        let mut has_labels = false;
        let term = if self.at(&Token::LBracket) {
            has_labels = true;
            self.bump();
            let mut specs = vec![self.label_spec()?];
            while self.at(&Token::Comma) {
                self.bump();
                specs.push(self.label_spec()?);
            }
            self.expect(Token::RBracket)?;
            Term::Molecule { head: base, specs }
        } else {
            Term::Id(base)
        };
        if self.at(&Token::LBracket) {
            return Err(self.error("a molecule head must not itself be a molecule (t[…][…])"));
        }
        Ok(Operand {
            term,
            explicit_type,
            has_labels,
            used_arith: false,
        })
    }

    fn base(&mut self, ty: Symbol) -> Result<IdTerm, ParseError> {
        match self.peek().clone() {
            Token::Var(v) => {
                self.bump();
                Ok(IdTerm::Var {
                    ty,
                    name: Symbol::new(&v),
                })
            }
            Token::Int(i) => {
                self.bump();
                Ok(IdTerm::Const {
                    ty,
                    c: Const::Int(i),
                })
            }
            Token::Str(s) => {
                self.bump();
                Ok(IdTerm::Const {
                    ty,
                    c: Const::Str(Symbol::new(&s)),
                })
            }
            Token::Ident(name) => {
                self.bump();
                self.application(ty, Symbol::new(&name))
            }
            // Prefix form of operators: +(A, B), -(X), =(A, B) etc.
            Token::Op(op) if self.peek_ahead(1) == &Token::LParen => {
                self.bump();
                self.application(ty, Symbol::new(&op))
            }
            other => Err(self.error(format!("expected a term, found {}", other.describe()))),
        }
    }

    fn application(&mut self, ty: Symbol, functor: Symbol) -> Result<IdTerm, ParseError> {
        if !self.at(&Token::LParen) {
            return Ok(IdTerm::Const {
                ty,
                c: Const::Sym(functor),
            });
        }
        self.bump();
        let mut args = vec![self.operand()?.term];
        while self.at(&Token::Comma) {
            self.bump();
            args.push(self.operand()?.term);
        }
        self.expect(Token::RParen)?;
        Ok(IdTerm::App { ty, functor, args })
    }

    fn label_spec(&mut self) -> Result<LabelSpec, ParseError> {
        let label = match self.bump() {
            Token::Ident(l) => Symbol::new(&l),
            other => {
                return Err(self.error(format!("expected a label, found {}", other.describe())))
            }
        };
        self.expect(Token::Arrow)?;
        if self.at(&Token::LBrace) {
            self.bump();
            let mut terms = vec![self.term()?.term];
            while self.at(&Token::Comma) {
                self.bump();
                terms.push(self.term()?.term);
            }
            self.expect(Token::RBrace)?;
            Ok(LabelSpec {
                label,
                value: LabelValue::Set(terms),
            })
        } else {
            Ok(LabelSpec {
                label,
                value: LabelValue::One(self.operand()?.term),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_core::symbol::sym;

    #[test]
    fn parse_typed_fact() {
        let p = parse_program("name: john.").unwrap();
        assert_eq!(p.clauses.len(), 1);
        assert_eq!(
            p.clauses[0].head,
            Atomic::Term(Term::typed_constant("name", "john"))
        );
    }

    #[test]
    fn parse_molecule_fact() {
        let p = parse_program(r#"person: john[name => "John Smith", age => 28]."#).unwrap();
        let expected = Term::molecule(
            Term::typed_constant("person", "john"),
            vec![
                LabelSpec::one("name", Term::string("John Smith")),
                LabelSpec::one("age", Term::int(28)),
            ],
        )
        .unwrap();
        assert_eq!(p.clauses[0].head, Atomic::Term(expected));
    }

    #[test]
    fn parse_collection_value() {
        let p = parse_program("person: john[children => {person: bob, person: bill}].").unwrap();
        let head = &p.clauses[0].head;
        let Atomic::Term(Term::Molecule { specs, .. }) = head else {
            panic!("not a molecule")
        };
        assert_eq!(
            specs[0].value,
            LabelValue::Set(vec![
                Term::typed_constant("person", "bob"),
                Term::typed_constant("person", "bill")
            ])
        );
    }

    #[test]
    fn parse_subtype_declaration() {
        let p = parse_program("propernp < noun_phrase.\ncommonnp < noun_phrase.").unwrap();
        assert_eq!(
            p.subtype_decls,
            vec![
                (sym("propernp"), sym("noun_phrase")),
                (sym("commonnp"), sym("noun_phrase"))
            ]
        );
    }

    #[test]
    fn parse_rule_with_is() {
        let src = "path: C[src => X, dest => Y, length => L] :- \
                   node: X[linkto => Z], \
                   path: CO[src => Z, dest => Y, length => LO], \
                   L is LO + 1.";
        let p = parse_program(src).unwrap();
        let rule = &p.clauses[0];
        assert_eq!(rule.body.len(), 3);
        assert_eq!(
            rule.body[2],
            Atomic::pred(
                "is",
                vec![
                    Term::var("L"),
                    Term::app("+", vec![Term::var("LO"), Term::int(1)])
                ]
            )
        );
        assert_eq!(rule.head_only_vars(), [sym("C")].into_iter().collect());
    }

    #[test]
    fn predicate_vs_function_disambiguation() {
        // No type prefix, no labels ⇒ predicate atom.
        let p = parse_program("likes(john, mary).").unwrap();
        assert_eq!(
            p.clauses[0].head,
            Atomic::pred(
                "likes",
                vec![Term::constant("john"), Term::constant("mary")]
            )
        );
        // Explicit object: prefix ⇒ a term.
        let p2 = parse_program("object: f(a).").unwrap();
        assert_eq!(
            p2.clauses[0].head,
            Atomic::Term(Term::app("f", vec![Term::constant("a")]))
        );
        // Labels ⇒ a term even without a type prefix.
        let p3 = parse_program("f(a)[l => b].").unwrap();
        assert!(matches!(
            &p3.clauses[0].head,
            Atomic::Term(Term::Molecule { .. })
        ));
        // Type prefix ⇒ a term.
        let p4 = parse_program("path: id(a, b).").unwrap();
        assert_eq!(
            p4.clauses[0].head,
            Atomic::Term(Term::typed_app(
                "path",
                "id",
                vec![Term::constant("a"), Term::constant("b")]
            ))
        );
    }

    #[test]
    fn parse_query_forms() {
        let q = parse_query(":- noun_phrase: X[num => plural].").unwrap();
        assert_eq!(q.goals.len(), 1);
        let q2 = parse_query("noun_phrase: X[num => plural]").unwrap();
        assert_eq!(q, q2);
        let src = parse_source("a.\n:- p(X).\nb.").unwrap();
        assert_eq!(src.program.clauses.len(), 2);
        assert_eq!(src.queries.len(), 1);
    }

    #[test]
    fn parse_program_rejects_queries() {
        assert!(parse_program(":- p(X).").is_err());
    }

    #[test]
    fn parse_comparisons() {
        let q = parse_query("X < 3, Y >= X + 2, Z = f(Y)").unwrap();
        assert_eq!(q.goals.len(), 3);
        assert_eq!(
            q.goals[0],
            Atomic::pred("<", vec![Term::var("X"), Term::int(3)])
        );
        assert_eq!(
            q.goals[1],
            Atomic::pred(
                ">=",
                vec![
                    Term::var("Y"),
                    Term::app("+", vec![Term::var("X"), Term::int(2)])
                ]
            )
        );
        assert_eq!(
            q.goals[2],
            Atomic::pred(
                "=",
                vec![Term::var("Z"), Term::app("f", vec![Term::var("Y")])]
            )
        );
    }

    #[test]
    fn arith_precedence_and_parens() {
        let q = parse_query("X is 1 + 2 * 3").unwrap();
        assert_eq!(
            q.goals[0],
            Atomic::pred(
                "is",
                vec![
                    Term::var("X"),
                    Term::app(
                        "+",
                        vec![
                            Term::int(1),
                            Term::app("*", vec![Term::int(2), Term::int(3)])
                        ]
                    )
                ]
            )
        );
        let q2 = parse_query("X is (1 + 2) * 3").unwrap();
        assert_eq!(
            q2.goals[0],
            Atomic::pred(
                "is",
                vec![
                    Term::var("X"),
                    Term::app(
                        "*",
                        vec![
                            Term::app("+", vec![Term::int(1), Term::int(2)]),
                            Term::int(3)
                        ]
                    )
                ]
            )
        );
    }

    #[test]
    fn negative_literal_folds() {
        let q = parse_query("X is -5 + 2").unwrap();
        assert_eq!(
            q.goals[0],
            Atomic::pred(
                "is",
                vec![
                    Term::var("X"),
                    Term::app("+", vec![Term::int(-5), Term::int(2)])
                ]
            )
        );
    }

    #[test]
    fn prefix_operator_application() {
        // Display prints is(L, +(LO, 1)); the parser accepts it back.
        let q = parse_query("is(L, +(LO, 1))").unwrap();
        assert_eq!(
            q.goals[0],
            Atomic::pred(
                "is",
                vec![
                    Term::var("L"),
                    Term::app("+", vec![Term::var("LO"), Term::int(1)])
                ]
            )
        );
    }

    #[test]
    fn double_molecule_rejected() {
        // student: id[name=>joe][age=>20] is not a term (Example 1).
        let err = parse_program("student: id[name => joe][age => 20].").unwrap_err();
        assert!(
            err.first().message.contains("molecule"),
            "{}",
            err.first().message
        );
    }

    #[test]
    fn nested_molecule_values() {
        let t = parse_term("john[spouse => mary[age => 27]]").unwrap();
        let expected = Term::molecule(
            Term::constant("john"),
            vec![LabelSpec::one(
                "spouse",
                Term::molecule(
                    Term::constant("mary"),
                    vec![LabelSpec::one("age", Term::int(27))],
                )
                .unwrap(),
            )],
        )
        .unwrap();
        assert_eq!(t, expected);
    }

    #[test]
    fn error_positions() {
        let err = parse_program("name: john").unwrap_err(); // missing '.'
        assert!(err.first().message.contains("expected"));
        let err2 = parse_program("p(").unwrap_err();
        assert!(err2.first().line >= 1);
    }

    #[test]
    fn recovery_reports_every_bad_item() {
        // Three bad items on three lines, interleaved with good ones: the
        // parser must resynchronize at each `.` and report all three with
        // their positions.
        let src = "a.\np(.\nb.\nq[l =>.\nc.\nr(1,.\nd.";
        let err = parse_source(src).unwrap_err();
        assert_eq!(err.errors.len(), 3, "{err}");
        assert_eq!(err.errors[0].line, 2);
        assert_eq!(err.errors[1].line, 4);
        assert_eq!(err.errors[2].line, 6);
    }

    #[test]
    fn recovery_combines_lex_and_parse_diagnostics() {
        let src = "a @ b.\np(.\nok.";
        let err = parse_source(src).unwrap_err();
        // One lexical (`@`) + at least one syntactic diagnostic.
        assert!(err.errors.len() >= 2, "{err}");
        assert!(err.errors.iter().any(|e| e.message.contains('@')));
        let rendered = err.to_string();
        assert!(rendered.lines().count() >= 2);
    }

    #[test]
    fn recovery_makes_progress_on_pathological_input() {
        // No `.` anywhere and nothing parseable: must terminate with
        // diagnostics rather than loop.
        let err = parse_source("[[[[[").unwrap_err();
        assert!(!err.errors.is_empty());
    }

    #[test]
    fn paper_example_3_parses() {
        let src = r#"
            name: john.
            name: bob.
            determiner: the[num => {singular, plural}, def => definite].
            determiner: a[num => singular, def => indef].
            determiner: all[num => plural, def => indef].
            noun: student[num => singular].
            noun: students[num => plural].
            propernp: X[pers => 3, num => singular, def => definite] :-
                name: X.
            commonnp: np(Det, Noun)[pers => 3, num => N, def => D] :-
                determiner: Det[num => N, def => D],
                noun: Noun[num => N].
            propernp < noun_phrase.
            commonnp < noun_phrase.
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.clauses.len(), 9);
        assert_eq!(p.subtype_decls.len(), 2);
    }

    #[test]
    fn roundtrip_display_parse() {
        let src = r#"
            person: john[children => {bob, bill}, age => 28].
            path: id(X, Y)[src => X, dest => Y] :- node: X[linkto => Y].
            q(X) :- person: X, X \= bob.
        "#;
        let p = parse_program(src).unwrap();
        let printed = p.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The parser never panics: any input yields Ok or a positioned Err.
        #[test]
        fn parser_total_on_arbitrary_input(src in ".{0,120}") {
            let _ = parse_source(&src);
            let _ = parse_query(&src);
            let _ = parse_term(&src);
        }

        /// Token-shaped random programs: build from valid fragments, and
        /// anything that parses must round-trip through Display.
        #[test]
        fn fragments_roundtrip(
            ty in "[a-z][a-z0-9]{0,5}",
            id in "[a-z][a-z0-9]{0,5}",
            label in "[a-z][a-z0-9]{0,5}",
            value in "[a-z][a-z0-9]{0,5}",
            n in 0i64..100,
        ) {
            let src = format!("{ty}: {id}[{label} => {value}, {label} => {n}].");
            if let Ok(p) = parse_program(&src) {
                let printed = p.to_string();
                let again = parse_program(&printed).unwrap();
                prop_assert_eq!(again, p);
            }
        }
    }
}
