//! Tokens of the C-logic surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Lowercase-initial identifier: type symbols, labels, predicates,
    /// function symbols, constants.
    Ident(String),
    /// Uppercase- or underscore-initial identifier: a variable.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A double-quoted string literal (contents, unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.` — clause terminator.
    Dot,
    /// `:`
    Colon,
    /// `:-`
    If,
    /// `=>` — the label arrow.
    Arrow,
    /// An operator symbol: `+ - * / < > =< >= =:= =\= = \= == \== mod`.
    Op(String),
    /// End of input.
    Eof,
}

impl Token {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier `{s}`"),
            Token::Var(s) => format!("variable `{s}`"),
            Token::Int(i) => format!("integer `{i}`"),
            Token::Str(s) => format!("string {s:?}"),
            Token::LParen => "`(`".into(),
            Token::RParen => "`)`".into(),
            Token::LBracket => "`[`".into(),
            Token::RBracket => "`]`".into(),
            Token::LBrace => "`{`".into(),
            Token::RBrace => "`}`".into(),
            Token::Comma => "`,`".into(),
            Token::Dot => "`.`".into(),
            Token::Colon => "`:`".into(),
            Token::If => "`:-`".into(),
            Token::Arrow => "`=>`".into(),
            Token::Op(s) => format!("operator `{s}`"),
            Token::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}
