//! The lexer for C-logic programs.
//!
//! Prolog-flavoured lexical conventions: lowercase-initial identifiers are
//! symbols, uppercase/underscore-initial are variables, `%` starts a line
//! comment, `"…"` is a string with `\"` and `\\` escapes. Multi-character
//! operators are matched longest-first (`=:=` before `==` before `=`,
//! `=<` vs `=>`, `:-` vs `:`).

use crate::token::{Spanned, Token};
use std::fmt;

/// A lexical error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

/// Tokenizes a source string, stopping at the first lexical error. The
/// result always ends with [`Token::Eof`].
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let (tokens, mut errors) = tokenize_recovering(src);
    if errors.is_empty() {
        Ok(tokens)
    } else {
        Err(errors.remove(0))
    }
}

/// Tokenizes a source string with error **recovery**: a lexical error is
/// recorded and lexing continues at the next sound position, so one bad
/// character (or an unterminated string) yields one diagnostic instead of
/// hiding everything after it. Total — any input, however malformed,
/// produces a token stream ending in [`Token::Eof`] plus zero or more
/// positioned errors; it never panics.
pub fn tokenize_recovering(src: &str) -> (Vec<Spanned>, Vec<LexError>) {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    let mut errors = Vec::new();
    loop {
        lx.skip_trivia();
        let (line, col) = (lx.line, lx.col);
        let before = lx.pos;
        match lx.next_token() {
            Ok(token) => {
                let eof = token == Token::Eof;
                out.push(Spanned { token, line, col });
                if eof {
                    return (out, errors);
                }
            }
            Err(e) => {
                errors.push(e);
                // Every error path consumes the offending input, but
                // guarantee forward progress regardless so recovery can
                // never loop.
                if lx.pos == before {
                    lx.bump();
                }
            }
        }
    }
}

impl Lexer<'_> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        let Some(c) = self.peek() else {
            return Ok(Token::Eof);
        };
        match c {
            b'(' => {
                self.bump();
                Ok(Token::LParen)
            }
            b')' => {
                self.bump();
                Ok(Token::RParen)
            }
            b'[' => {
                self.bump();
                Ok(Token::LBracket)
            }
            b']' => {
                self.bump();
                Ok(Token::RBracket)
            }
            b'{' => {
                self.bump();
                Ok(Token::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Token::RBrace)
            }
            b',' => {
                self.bump();
                Ok(Token::Comma)
            }
            b'.' => {
                self.bump();
                Ok(Token::Dot)
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Ok(Token::If)
                } else {
                    Ok(Token::Colon)
                }
            }
            b'=' => {
                // =>, =<, =:=, =\=, ==, =
                match (self.peek2(), self.peek3()) {
                    (Some(b'>'), _) => {
                        self.bump();
                        self.bump();
                        Ok(Token::Arrow)
                    }
                    (Some(b'<'), _) => {
                        self.bump();
                        self.bump();
                        Ok(Token::Op("=<".into()))
                    }
                    (Some(b':'), Some(b'=')) => {
                        self.bump();
                        self.bump();
                        self.bump();
                        Ok(Token::Op("=:=".into()))
                    }
                    (Some(b'\\'), Some(b'=')) => {
                        self.bump();
                        self.bump();
                        self.bump();
                        Ok(Token::Op("=\\=".into()))
                    }
                    (Some(b'='), _) => {
                        self.bump();
                        self.bump();
                        Ok(Token::Op("==".into()))
                    }
                    _ => {
                        self.bump();
                        Ok(Token::Op("=".into()))
                    }
                }
            }
            b'\\' => {
                // \+, \=, \==
                if self.peek2() == Some(b'+') {
                    self.bump();
                    self.bump();
                    return Ok(Token::Op("\\+".into()));
                }
                if self.peek2() == Some(b'=') {
                    if self.peek3() == Some(b'=') {
                        self.bump();
                        self.bump();
                        self.bump();
                        Ok(Token::Op("\\==".into()))
                    } else {
                        self.bump();
                        self.bump();
                        Ok(Token::Op("\\=".into()))
                    }
                } else {
                    let err = self.error("unexpected `\\`");
                    self.bump();
                    Err(err)
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ok(Token::Op(">=".into()))
                } else {
                    Ok(Token::Op(">".into()))
                }
            }
            b'<' => {
                self.bump();
                Ok(Token::Op("<".into()))
            }
            b'+' | b'*' | b'/' => {
                self.bump();
                Ok(Token::Op((c as char).to_string()))
            }
            b'-' => {
                self.bump();
                Ok(Token::Op("-".into()))
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                // On a bad escape, remember the first error but keep
                // scanning to the closing quote so recovery resumes after
                // the whole literal, not in the middle of it. A newline
                // ends an unterminated literal so one missing quote can't
                // swallow the rest of the file.
                let mut bad_escape: Option<LexError> = None;
                loop {
                    match self.peek() {
                        None | Some(b'\n') => {
                            return Err(bad_escape
                                .unwrap_or_else(|| self.error("unterminated string literal")));
                        }
                        Some(b'"') => {
                            self.bump();
                            break;
                        }
                        Some(b'\\') => {
                            self.bump();
                            match self.peek() {
                                Some(b'"') => {
                                    self.bump();
                                    s.push('"');
                                }
                                Some(b'\\') => {
                                    self.bump();
                                    s.push('\\');
                                }
                                Some(b'n') => {
                                    self.bump();
                                    s.push('\n');
                                }
                                Some(b't') => {
                                    self.bump();
                                    s.push('\t');
                                }
                                Some(c) if c != b'\n' => {
                                    if bad_escape.is_none() {
                                        bad_escape = Some(self.error(format!(
                                            "unknown escape `\\{}`",
                                            c as char
                                        )));
                                    }
                                    self.bump();
                                }
                                // Backslash at end of line/input: the next
                                // loop turn reports the unterminated string.
                                _ => {}
                            }
                        }
                        Some(c) => {
                            self.bump();
                            s.push(c as char);
                        }
                    }
                }
                match bad_escape {
                    Some(err) => Err(err),
                    None => Ok(Token::Str(s)),
                }
            }
            b'0'..=b'9' => {
                let mut n: i64 = 0;
                // Consume the whole digit run even past an overflow so the
                // recovering lexer resumes after the literal.
                let mut overflow: Option<LexError> = None;
                while let Some(d) = self.peek() {
                    if !d.is_ascii_digit() {
                        break;
                    }
                    if overflow.is_none() {
                        match n
                            .checked_mul(10)
                            .and_then(|x| x.checked_add((d - b'0') as i64))
                        {
                            Some(v) => n = v,
                            None => overflow = Some(self.error("integer literal overflows i64")),
                        }
                    }
                    self.bump();
                }
                match overflow {
                    Some(err) => Err(err),
                    None => Ok(Token::Int(n)),
                }
            }
            c if c.is_ascii_lowercase() => {
                let word = self.take_word();
                if word == "mod" || word == "is" {
                    // `is` is an infix predicate and `mod` an infix
                    // operator. (`min`/`max` stay ordinary identifiers:
                    // written `min(A, B)`, they parse as applications and
                    // the arithmetic evaluator knows them by name.)
                    Ok(Token::Op(word))
                } else {
                    Ok(Token::Ident(word))
                }
            }
            c if c.is_ascii_uppercase() || c == b'_' => Ok(Token::Var(self.take_word())),
            _ => {
                // Report (and consume) the full codepoint, not its lead
                // byte, so multibyte input yields a readable diagnostic and
                // recovery lands back on a character boundary.
                let (ch, width) = match std::str::from_utf8(&self.src[self.pos..])
                    .ok()
                    .and_then(|rest| rest.chars().next())
                {
                    Some(ch) => (ch, ch.len_utf8()),
                    None => (char::REPLACEMENT_CHARACTER, 1),
                };
                let err = self.error(format!("unexpected character `{ch}`"));
                for _ in 0..width {
                    self.bump();
                }
                Err(err)
            }
        }
    }

    fn take_word(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        let (tokens, errors) = tokenize_recovering(src);
        assert!(errors.is_empty(), "unexpected lex errors: {errors:?}");
        tokens.into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            toks("name: john."),
            vec![
                Token::Ident("name".into()),
                Token::Colon,
                Token::Ident("john".into()),
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn molecule_tokens() {
        assert_eq!(
            toks("john[age => 28]"),
            vec![
                Token::Ident("john".into()),
                Token::LBracket,
                Token::Ident("age".into()),
                Token::Arrow,
                Token::Int(28),
                Token::RBracket,
                Token::Eof
            ]
        );
    }

    #[test]
    fn rule_and_collection() {
        let t = toks("p: X :- q: X[l => {a, b}].");
        assert!(t.contains(&Token::If));
        assert!(t.contains(&Token::LBrace));
        assert!(t.contains(&Token::RBrace));
        assert_eq!(t.iter().filter(|x| **x == Token::Comma).count(), 1);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            toks("=< => = == =:= =\\= \\= \\== >= > <"),
            vec![
                Token::Op("=<".into()),
                Token::Arrow,
                Token::Op("=".into()),
                Token::Op("==".into()),
                Token::Op("=:=".into()),
                Token::Op("=\\=".into()),
                Token::Op("\\=".into()),
                Token::Op("\\==".into()),
                Token::Op(">=".into()),
                Token::Op(">".into()),
                Token::Op("<".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn arith_and_is() {
        assert_eq!(
            toks("L is LO + 1"),
            vec![
                Token::Var("L".into()),
                Token::Op("is".into()),
                Token::Var("LO".into()),
                Token::Op("+".into()),
                Token::Int(1),
                Token::Eof
            ]
        );
    }

    #[test]
    fn variables_and_underscore() {
        assert_eq!(
            toks("X _y Abc"),
            vec![
                Token::Var("X".into()),
                Token::Var("_y".into()),
                Token::Var("Abc".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""John Smith" "a\"b" "x\\y""#),
            vec![
                Token::Str("John Smith".into()),
                Token::Str("a\"b".into()),
                Token::Str("x\\y".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a. % comment until eol\nb."),
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Dot,
                Token::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let spanned = tokenize("a.\n  b.").unwrap();
        assert_eq!((spanned[0].line, spanned[0].col), (1, 1));
        assert_eq!((spanned[2].line, spanned[2].col), (2, 3)); // `b`
    }

    #[test]
    fn errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("@").is_err());
        assert!(tokenize("99999999999999999999").is_err());
        assert!(tokenize(r#""bad \q escape""#).is_err());
    }

    #[test]
    fn recovery_collects_all_errors_and_keeps_lexing() {
        let (tokens, errors) = tokenize_recovering("a. @ b. # c.");
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].message, "unexpected character `@`");
        assert_eq!((errors[0].line, errors[0].col), (1, 4));
        assert_eq!(errors[1].message, "unexpected character `#`");
        let idents: Vec<_> = tokens
            .iter()
            .filter_map(|s| match &s.token {
                Token::Ident(w) => Some(w.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn recovery_resumes_after_unterminated_string_at_newline() {
        let (tokens, errors) = tokenize_recovering("p(\"oops.\nq(1).");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("unterminated string"));
        // The second line still lexes.
        assert!(tokens.iter().any(|s| s.token == Token::Ident("q".into())));
        assert!(tokens.iter().any(|s| s.token == Token::Int(1)));
    }

    #[test]
    fn recovery_consumes_whole_bad_string_and_number() {
        let (tokens, errors) = tokenize_recovering(r#""bad \q esc" 99999999999999999999 x"#);
        assert_eq!(errors.len(), 2);
        assert!(errors[0].message.contains("unknown escape"));
        assert!(errors[1].message.contains("overflows"));
        // Recovery lands after the bad literals: only `x` and EOF remain.
        let rest: Vec<_> = tokens.iter().map(|s| &s.token).collect();
        assert_eq!(rest, vec![&Token::Ident("x".into()), &Token::Eof]);
    }

    #[test]
    fn recovery_handles_multibyte_garbage_without_panic() {
        let (tokens, errors) = tokenize_recovering("é a λ b");
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].message, "unexpected character `é`");
        assert_eq!(errors[1].message, "unexpected character `λ`");
        let idents = tokens
            .iter()
            .filter(|s| matches!(s.token, Token::Ident(_)))
            .count();
        assert_eq!(idents, 2);
    }

    #[test]
    fn recovery_is_total_on_arbitrary_garbage() {
        // Deterministic pseudo-random byte soup: recovery must neither
        // panic nor loop, for any input.
        let mut state = 0x9E37_79B9u32;
        for len in 0..64usize {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                bytes.push((state >> 24) as u8);
            }
            let src = String::from_utf8_lossy(&bytes).into_owned();
            let (tokens, _errors) = tokenize_recovering(&src);
            assert_eq!(tokens.last().map(|s| &s.token), Some(&Token::Eof));
        }
    }

    #[test]
    fn if_vs_colon() {
        assert_eq!(
            toks(":- a : b"),
            vec![
                Token::If,
                Token::Ident("a".into()),
                Token::Colon,
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }
}
