//! # clogic-parser — concrete syntax for C-logic
//!
//! A lexer and recursive-descent parser for the surface syntax used
//! throughout Chen & Warren's paper:
//!
//! ```text
//! propernp < noun_phrase.
//! determiner: the[num => {singular, plural}, def => definite].
//! path: C[src => X, dest => Y, length => L] :-
//!     node: X[linkto => Z],
//!     path: CO[src => Z, dest => Y, length => LO],
//!     L is LO + 1.
//! :- noun_phrase: X[num => plural].
//! ```
//!
//! Pretty-printing is the `Display` implementation on the core AST; the
//! grammar and printer round-trip (property-tested in `tests/`).

#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod token;

pub use lexer::{tokenize, tokenize_recovering, LexError};
pub use parser::{
    parse_program, parse_query, parse_source, parse_term, ParseError, ParseErrors, ParsedSource,
};
