//! Minimal in-repo stand-in for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build environment has no access to a crates registry, so external
//! dependencies are replaced by local path crates with the same package
//! name. This harness keeps the upstream surface the tests rely on —
//! `proptest!` / `prop_assert*!` / `prop_oneof!`, the [`strategy::Strategy`]
//! trait with `prop_map` / `boxed` / `prop_recursive`, `Just`, integer
//! ranges, tuples, `sample::select`, `collection::vec`, `bool::ANY`, and
//! string strategies from a small regex subset — but generates cases with
//! a deterministic per-test seed and performs **no shrinking**: a failing
//! case is reported by the ordinary `assert!` panic, and the seed can be
//! pinned via the `PROPTEST_SEED` environment variable to reproduce it.

#![warn(missing_docs)]

/// Test-case configuration and the deterministic case RNG.
pub mod test_runner {
    /// Run configuration (subset of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// Deterministic per-case generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a property whose base seed is `seed`.
        pub fn for_case(seed: u64, case: u32) -> Self {
            TestRng {
                state: seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "TestRng::below(0)");
            self.next_u64() % n
        }
    }

    /// Base seed for a property, derived from its fully qualified name
    /// (stable across runs) unless overridden by `PROPTEST_SEED`.
    pub fn case_seed(name: &str) -> u64 {
        if let Some(fixed) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            return fixed;
        }
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::string::StringPattern;
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value-tree/shrinking machinery:
    /// a strategy simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Build recursive structures: starting from `self` as the leaf
        /// strategy, apply `recurse` up to `depth` times, at each level
        /// choosing uniformly between a leaf and a recursive case. The
        /// `_desired_size` / `_expected_branch_size` parameters exist for
        /// signature compatibility and are ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                current = Union::new(vec![leaf.clone(), recurse(current).boxed()]).boxed();
            }
            current
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
    );

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// String-literal strategies: the literal is interpreted as a pattern
    /// from a small regex subset (see [`crate::string`]).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            StringPattern::compile(self).generate(rng)
        }
    }
}

/// Generation from a small regex subset, backing `&'static str` strategies.
///
/// Supported syntax: literal characters, `.` (any printable ASCII plus a
/// few newline/tab/multibyte probes), character classes like `[a-z0-9_]`
/// (ranges and singletons), `\\` escapes, and the repetition suffixes
/// `{m}`, `{m,n}`, `?`, `*`, `+` (the unbounded forms capped at 8).
/// Anything else panics loudly rather than silently generating the wrong
/// distribution.
pub mod string {
    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    enum CharSet {
        Lit(char),
        Any,
        Class(Vec<(char, char)>),
    }

    impl CharSet {
        fn sample(&self, rng: &mut TestRng) -> char {
            match self {
                CharSet::Lit(c) => *c,
                CharSet::Any => {
                    // Printable ASCII plus a few awkward extras to probe
                    // lexers: newline, tab, and non-ASCII codepoints.
                    const EXTRAS: [char; 4] = ['\n', '\t', 'λ', '⇒'];
                    let n = (0x7F - 0x20) as u64 + EXTRAS.len() as u64;
                    let i = rng.below(n);
                    if i < (0x7F - 0x20) as u64 {
                        char::from(0x20 + i as u8)
                    } else {
                        EXTRAS[(i - (0x7F - 0x20) as u64) as usize]
                    }
                }
                CharSet::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                        .sum();
                    let mut i = rng.below(total);
                    for (lo, hi) in ranges {
                        let span = (*hi as u64) - (*lo as u64) + 1;
                        if i < span {
                            return char::from_u32(*lo as u32 + i as u32)
                                .expect("class range stays in scalar values");
                        }
                        i -= span;
                    }
                    unreachable!("class sampling index in bounds")
                }
            }
        }
    }

    /// A compiled pattern: a sequence of (character set, min, max) runs.
    #[derive(Clone, Debug)]
    pub struct StringPattern {
        parts: Vec<(CharSet, usize, usize)>,
    }

    impl StringPattern {
        /// Compile `pattern`; panics on syntax outside the supported subset.
        pub fn compile(pattern: &str) -> StringPattern {
            let mut chars = pattern.chars().peekable();
            let mut parts: Vec<(CharSet, usize, usize)> = Vec::new();
            while let Some(c) = chars.next() {
                let set = match c {
                    '.' => CharSet::Any,
                    '\\' => CharSet::Lit(
                        chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
                    ),
                    '[' => {
                        let mut ranges = Vec::new();
                        loop {
                            let lo = match chars.next() {
                                Some(']') => break,
                                Some('\\') => chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in pattern {pattern:?}")
                                }),
                                Some(ch) => ch,
                                None => panic!("unterminated class in pattern {pattern:?}"),
                            };
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars.next().unwrap_or_else(|| {
                                    panic!("unterminated range in pattern {pattern:?}")
                                });
                                assert!(
                                    lo <= hi,
                                    "inverted range {lo}-{hi} in pattern {pattern:?}"
                                );
                                ranges.push((lo, hi));
                            } else {
                                ranges.push((lo, lo));
                            }
                        }
                        assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                        CharSet::Class(ranges)
                    }
                    '(' | ')' | '|' | '^' | '$' => {
                        panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
                    }
                    other => CharSet::Lit(other),
                };
                // Optional repetition suffix.
                let (min, max) = match chars.peek() {
                    Some('{') => {
                        chars.next();
                        let mut spec = String::new();
                        for d in chars.by_ref() {
                            if d == '}' {
                                break;
                            }
                            spec.push(d);
                        }
                        match spec.split_once(',') {
                            Some((m, n)) => {
                                let m: usize = m.trim().parse().unwrap_or_else(|_| {
                                    panic!("bad repetition {spec:?} in pattern {pattern:?}")
                                });
                                let n: usize = n.trim().parse().unwrap_or_else(|_| {
                                    panic!("bad repetition {spec:?} in pattern {pattern:?}")
                                });
                                assert!(m <= n, "inverted repetition in pattern {pattern:?}");
                                (m, n)
                            }
                            None => {
                                let m: usize = spec.trim().parse().unwrap_or_else(|_| {
                                    panic!("bad repetition {spec:?} in pattern {pattern:?}")
                                });
                                (m, m)
                            }
                        }
                    }
                    Some('?') => {
                        chars.next();
                        (0, 1)
                    }
                    Some('*') => {
                        chars.next();
                        (0, 8)
                    }
                    Some('+') => {
                        chars.next();
                        (1, 8)
                    }
                    _ => (1, 1),
                };
                parts.push((set, min, max));
            }
            StringPattern { parts }
        }

        /// Draw a string matching the pattern.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for (set, min, max) in &self.parts {
                let n = *min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(set.sample(rng));
                }
            }
            out
        }
    }
}

/// Strategies that pick from explicit value pools.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed, non-empty vector.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Strategy producing a uniformly chosen clone of one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select on empty vector");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length bounds for [`vec`]; convertible from `usize` and `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range for collection::vec");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching upstream's `prop::` re-exports.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `fn name(pat in strategy, ...) { body }` items (attributes such as
/// `#[test]` and doc comments are passed through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __seed = $crate::test_runner::case_seed(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__seed, __case);
                $crate::__proptest_bind!(__rng, $($args)*);
                $body
            }
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident,) => {};
    ($rng:ident, $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident, $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Property-scoped assertion; forwards to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-scoped equality assertion; forwards to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-scoped inequality assertion; forwards to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategy expressions with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<i64>> {
        prop::collection::vec(0i64..10, 0..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds; patterns match their spec.
        #[test]
        fn ranges_and_patterns(n in 3u32..9, mut v in small_vec(), s in "[a-z][a-z0-9]{0,5}") {
            prop_assert!((3..9).contains(&n));
            prop_assert!(v.len() < 5);
            v.push(0);
            prop_assert!(!v.is_empty());
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        /// prop_oneof, Just, select, bool::ANY, tuples all compose.
        #[test]
        fn combinators_compose(
            x in prop_oneof![Just(1i64), 10i64..20, Just(99i64)],
            (a, b) in (prop::sample::select(vec!["p", "q"]), prop::bool::ANY),
        ) {
            prop_assert!(x == 1 || (10..20).contains(&x) || x == 99);
            prop_assert!(a == "p" || a == "q");
            let _ = b;
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        use crate::test_runner::TestRng;

        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = (0i64..4).prop_map(Tree::Leaf).boxed().prop_recursive(
            3,
            24,
            2,
            |inner| {
                (inner.clone(), inner)
                    .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
            },
        );
        let mut rng = TestRng::for_case(7, 0);
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 4, "depth bound violated: {t:?}");
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        use crate::test_runner::case_seed;
        assert_eq!(case_seed("a::b"), case_seed("a::b"));
        assert_ne!(case_seed("a::b"), case_seed("a::c"));
    }
}
