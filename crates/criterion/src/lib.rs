//! Minimal in-repo stand-in for the subset of the `criterion` API this
//! workspace's benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId::new`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no access to a crates registry, so external
//! dependencies are replaced by local path crates with the same package
//! name. This harness does a short warm-up, times `sample_size` samples
//! with `Instant`, and prints min/mean/max per benchmark. No statistical
//! analysis, outlier detection, or HTML reports — the goal is that
//! `cargo bench` runs the same bench sources and produces comparable
//! order-of-magnitude numbers.

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("fixpoint", n)`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// A parameter-only id, rendered bare.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one timing sample per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, id, &b.samples);
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Finish the group (no-op beyond matching the upstream API).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{id}: [{min:?} {mean:?} {max:?}] ({} samples)",
        samples.len()
    );
}

/// Benchmark driver; one per `criterion_group!` function list.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report("bench", &id.id, &b.samples);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 5), &5u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
