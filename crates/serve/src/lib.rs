//! # clogic-serve — concurrent serving front-end for C-logic sessions
//!
//! A [`Server`] owns one [`Session`] behind a **lock-free snapshot
//! discipline**: loads (and artifact preparation) serialize behind a
//! mutex, and every successful [`Session::prepare`] publishes an
//! immutable, epoch-stamped [`SessionSnapshot`] into a shared
//! [`SnapshotCell`] with a single pointer swap. Queries fan out across
//! a thread pool and answer **entirely from the snapshot they pinned**
//! ([`SessionSnapshot::query_cached`]) — the read path takes no session
//! lock, clones no artifact, and keeps serving the previous snapshot
//! while a load builds the next one off to the side. The snapshot also
//! carries a cross-strategy answer cache (all six strategies agree on
//! complete answers), counted in `serve.snapshot.cache.{hit,miss}`.
//!
//! Three robustness mechanisms stack on top:
//!
//! * **Admission control.** Submissions land in a bounded queue
//!   ([`ServeOptions::queue_depth`]). When the queue is full the request
//!   is *shed* immediately with a structured [`Degradation`] report
//!   (trip kind [`TripKind::Shed`](folog::TripKind::Shed)) instead of queueing unboundedly —
//!   the same vocabulary the engines use for budget trips, so callers
//!   handle overload and slow queries uniformly. Every shed bumps the
//!   `serve.shed` counter; queue occupancy is the `serve.queue_depth`
//!   gauge.
//! * **Per-request deadlines.** A submission can carry a deadline that
//!   covers *queue wait plus evaluation*: whatever time the job spent
//!   queued is subtracted before the rest is threaded into the engine's
//!   [`Budget`]. An expired deadline still evaluates (with a zero
//!   remaining budget), so every accepted query gets an answer — at
//!   worst a partial one carrying its degradation report. A server-wide
//!   [`CancelToken`] is merged into every request so shutdown can
//!   interrupt in-flight work.
//! * **Circuit-broken persistence.** When the session's storage is
//!   wrapped in [`RetryingStorage`],
//!   transient I/O faults are retried with bounded backoff and repeated
//!   failure opens a circuit breaker. [`Server::load`] degrades
//!   gracefully on a persistence failure: the in-memory session has
//!   already advanced, so the server keeps answering queries **read-only**
//!   and reports the failure (and breaker state) in the [`LoadReport`]
//!   instead of refusing service.
//!
//! Workers never die: evaluation runs under `catch_unwind`, a panic is
//! reported to the submitter as [`ServeError::Panicked`] and counted in
//! `serve.worker_panics`, and the worker moves on to the next job.

#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod manager;
pub mod net;
pub mod protocol;

pub use admission::{AdmissionQueue, AdmitError};
pub use chaos::{ChaosListener, ChaosStream, WireFault};
pub use manager::{ManagerOptions, SessionManager, StorageFactory, TenantState, TenantStatus};
pub use net::{Client, TcpFront, TcpFrontOptions};
pub use protocol::{Request, RequestOp, Response};

use clogic::{Answers, Session, SessionError, SessionSnapshot, SnapshotCell, Strategy};
use clogic_obs::Obs;
use clogic_store::{FileStorage, RecoveryReport, RetryPolicy, RetryingStorage, StoreError};
use folog::{Budget, CancelToken, Degradation};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads evaluating queries (default 4, minimum 1).
    pub workers: usize,
    /// Admission-queue capacity: submissions beyond this many waiting
    /// jobs are shed (default 64, minimum 1).
    pub queue_depth: usize,
    /// Deadline applied to every submission that does not carry its own
    /// (default `None`: only session/engine budgets bound the work).
    pub default_deadline: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            queue_depth: 64,
            default_deadline: None,
        }
    }
}

/// Why the serving layer (not the engine) refused or failed a request.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the request: the queue was full (or the
    /// server was shutting down with the job still queued). The
    /// [`Degradation`] carries trip kind [`TripKind::Shed`](folog::TripKind::Shed) and the queue
    /// occupancy observed at refusal.
    Shed(Degradation),
    /// The server has shut down; no more submissions are accepted.
    Closed,
    /// A worker panicked while evaluating this query. The worker itself
    /// survived; the payload is the panic message.
    Panicked(String),
    /// The session failed the request (parse error, engine error,
    /// persistence error, …).
    Session(SessionError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed(d) => write!(f, "request shed: {d}"),
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            ServeError::Session(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Session(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for ServeError {
    fn from(e: SessionError) -> ServeError {
        ServeError::Session(e)
    }
}

/// What [`Server::load`] did, including how persistence fared.
#[derive(Debug)]
pub struct LoadReport {
    /// Session epoch after the load.
    pub epoch: u64,
    /// The persistence failure, if the in-memory load succeeded but the
    /// write-ahead append (after retries) did not. The session keeps
    /// serving queries read-only; a later load retries persistence (and
    /// probes a half-open breaker).
    pub store_error: Option<StoreError>,
    /// Whether the storage circuit breaker was open after this load.
    pub breaker_open: bool,
}

impl LoadReport {
    /// True when the load reached stable storage (or the session is not
    /// persistent and there was nothing to persist).
    pub fn persisted(&self) -> bool {
        self.store_error.is_none()
    }
}

/// A ticket for a submitted query; redeem with [`Pending::wait`].
pub struct Pending {
    rx: mpsc::Receiver<Result<Answers, ServeError>>,
}

impl Pending {
    /// Blocks until the worker pool answers (or sheds/fails) the query.
    pub fn wait(self) -> Result<Answers, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

struct Job {
    src: String,
    strategy: Strategy,
    deadline: Option<Duration>,
    enqueued: Instant,
    reply: mpsc::Sender<Result<Answers, ServeError>>,
}

struct Shared {
    /// The session, taken only by **writers** (loads, maintenance,
    /// prepare escalation). The query path never touches it.
    session: Mutex<Session>,
    /// The session's snapshot publication cell: workers read the latest
    /// published [`SessionSnapshot`] from here, lock-free with respect
    /// to the session mutex.
    snapshots: Arc<SnapshotCell>,
    admission: AdmissionQueue<Job>,
    cancel_all: CancelToken,
    obs: Obs,
    default_deadline: Option<Duration>,
}

impl Shared {
    // A panic while holding the lock poisons it; the write path only
    // loads programs and prepares artifacts (idempotent), so recover
    // the guard.
    fn lock_session(&self) -> MutexGuard<'_, Session> {
        self.session.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A thread-pool query server over one [`Session`]. See the crate docs
/// for the serving model.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a server over `session`, preparing its artifacts for the
    /// current epoch and spawning the worker pool.
    pub fn start(mut session: Session, opts: ServeOptions) -> Result<Server, SessionError> {
        session.prepare()?;
        let obs = session.obs().clone();
        let snapshots = session.snapshot_cell();
        let shared = Arc::new(Shared {
            session: Mutex::new(session),
            snapshots,
            admission: AdmissionQueue::new(opts.queue_depth, obs.clone()),
            cancel_all: CancelToken::new(),
            obs,
            default_deadline: opts.default_deadline,
        });
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clogic-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Ok(Server { shared, workers })
    }

    /// Starts a persistent server: recovers (or initializes) the store at
    /// `path` through a [`RetryingStorage`] with `policy`, so every WAL
    /// append retries transient faults and repeated failure opens the
    /// circuit breaker instead of wedging loads.
    pub fn persistent(
        path: impl AsRef<std::path::Path>,
        policy: RetryPolicy,
        session_options: clogic::SessionOptions,
        opts: ServeOptions,
    ) -> Result<(Server, RecoveryReport), ServeError> {
        let obs = session_options.obs.clone();
        let file = FileStorage::create(&path).map_err(SessionError::Store)?;
        let storage = RetryingStorage::with_policy(file, policy).with_obs(obs);
        let (session, report) = Session::recover_from(Box::new(storage), session_options)?;
        let server = Server::start(session, opts)?;
        Ok((server, report))
    }

    /// Submits a query for evaluation under `strategy`, subject to the
    /// server's default deadline. Sheds immediately when the admission
    /// queue is full.
    pub fn submit(&self, src: &str, strategy: Strategy) -> Result<Pending, ServeError> {
        self.submit_with_deadline(src, strategy, self.shared.default_deadline)
    }

    /// [`Server::submit`] with an explicit deadline covering queue wait
    /// plus evaluation (`None` = no per-request deadline).
    pub fn submit_with_deadline(
        &self,
        src: &str,
        strategy: Strategy,
        deadline: Option<Duration>,
    ) -> Result<Pending, ServeError> {
        let shared = &self.shared;
        let (reply, rx) = mpsc::channel();
        let job = Job {
            src: src.to_string(),
            strategy,
            deadline,
            enqueued: Instant::now(),
            reply,
        };
        match shared.admission.push(job) {
            Ok(()) => Ok(Pending { rx }),
            Err(AdmitError::Closed) => Err(ServeError::Closed),
            Err(AdmitError::Full(d)) => Err(ServeError::Shed(d)),
        }
    }

    /// Convenience: submit and wait.
    pub fn query(&self, src: &str, strategy: Strategy) -> Result<Answers, ServeError> {
        self.submit(src, strategy)?.wait()
    }

    /// Loads program text into the session and re-prepares the artifacts
    /// for the new epoch, publishing a fresh [`SessionSnapshot`] when
    /// the prepare succeeds. Loads serialize with each other on the
    /// session mutex, but **queries never wait**: workers keep answering
    /// from the previously published snapshot until the swap.
    ///
    /// A **persistence** failure does not fail the load: the in-memory
    /// session has already advanced, so the server stays up — read-only
    /// with respect to durability — and the failure is reported in the
    /// [`LoadReport`] alongside the breaker state. Parse and other
    /// session errors (which leave the session unchanged) are returned
    /// as errors.
    pub fn load(&self, src: &str) -> Result<LoadReport, ServeError> {
        let shared = &self.shared;
        let mut session = shared.lock_session();
        let epoch_before = session.epoch();
        let store_error = match session.load(src) {
            Ok(()) => None,
            Err(SessionError::Store(e)) if session.epoch() > epoch_before => {
                shared.obs.metrics.counter("serve.load.persist_failures").inc();
                Some(e)
            }
            Err(e) => return Err(ServeError::Session(e)),
        };
        session.prepare()?;
        Ok(LoadReport {
            epoch: session.epoch(),
            store_error,
            breaker_open: session.persistence_breaker_open(),
        })
    }

    /// Retracts clauses under the same publish discipline as
    /// [`Server::load`]: the retraction (and the snapshot republish)
    /// happens off to the side while queries keep answering from the
    /// previously published [`SessionSnapshot`] — a reader that pinned
    /// the pre-retraction snapshot keeps serving it untorn until it
    /// drops its `Arc`. A persistence failure is tolerated exactly as in
    /// a load (the in-memory retraction already happened); other errors
    /// — including [`SessionError::NoSuchClause`] — leave the session
    /// unchanged and are returned.
    pub fn retract(&self, src: &str) -> Result<LoadReport, ServeError> {
        let shared = &self.shared;
        let mut session = shared.lock_session();
        let epoch_before = session.epoch();
        let store_error = match session.retract(src) {
            Ok(()) => None,
            Err(SessionError::Store(e)) if session.epoch() > epoch_before => {
                shared
                    .obs
                    .metrics
                    .counter("serve.retract.persist_failures")
                    .inc();
                Some(e)
            }
            Err(e) => return Err(ServeError::Session(e)),
        };
        session.prepare()?;
        Ok(LoadReport {
            epoch: session.epoch(),
            store_error,
            breaker_open: session.persistence_breaker_open(),
        })
    }

    /// Runs `f` with exclusive access to the session — for maintenance
    /// (snapshots, metric snapshots, option changes). Queries are **not**
    /// blocked: they keep answering from the last published
    /// [`SessionSnapshot`] the whole time, so if `f` changed the
    /// program, call [`Session::prepare`] inside `f` — queries see
    /// nothing of the change until a prepare publishes it.
    pub fn with_session<R>(&self, f: impl FnOnce(&mut Session) -> R) -> R {
        f(&mut self.shared.lock_session())
    }

    /// Whether the session's persistence circuit breaker is currently
    /// open (see [`RetryingStorage`]), as captured by the last published
    /// snapshot — answering does not touch the session lock, so status
    /// endpoints stay responsive mid-load. Falls back to asking the
    /// session when nothing has been published yet.
    pub fn breaker_open(&self) -> bool {
        match self.shared.snapshots.load() {
            Some(snap) => snap.breaker_open(),
            None => self.shared.lock_session().persistence_breaker_open(),
        }
    }

    /// The server's observability handle (shared with the session).
    pub fn obs(&self) -> &Obs {
        &self.shared.obs
    }

    /// Stops accepting submissions, cancels in-flight evaluations via
    /// the server-wide [`CancelToken`], sheds everything still queued,
    /// and joins the workers. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let shared = &self.shared;
        shared.cancel_all.cancel();
        for job in shared.admission.close() {
            let err = ServeError::Shed(
                shared
                    .admission
                    .shed(0, "server shutting down".to_string()),
            );
            let _ = job.reply.send(Err(err));
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.admission.pop() {
        // Time-in-queue vs time-evaluating, recorded separately so a
        // disappointing pool speedup is diagnosable from the metrics
        // alone: queue wait dominating means admission/worker-count
        // pressure, evaluation dominating means the shared read path
        // itself is the bottleneck.
        let waited = job.enqueued.elapsed();
        shared
            .obs
            .metrics
            .histogram("serve.queue_wait_us")
            .observe(waited.as_micros() as u64);

        // Per-request budget: the remaining deadline (queue wait already
        // spent) plus the server-wide cancel token. A deadline that
        // expired in the queue becomes a zero budget — the engine starts,
        // trips immediately, and the submitter still gets an answer with
        // its degradation report rather than silence.
        let mut extra = Budget::unlimited();
        extra.cancel = Some(shared.cancel_all.clone());
        if let Some(d) = job.deadline {
            extra.deadline = Some(d.saturating_sub(waited));
        }

        let eval_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_job(shared, &job, &extra)))
            .unwrap_or_else(|payload| {
                shared.obs.metrics.counter("serve.worker_panics").inc();
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Err(ServeError::Panicked(msg))
            });
        shared
            .obs
            .metrics
            .histogram("serve.eval_us")
            .observe(eval_start.elapsed().as_micros() as u64);
        if outcome.is_ok() {
            shared.obs.metrics.counter("serve.answered").inc();
        }
        // The submitter may have dropped its ticket; that's its right.
        let _ = job.reply.send(outcome);
    }
}

fn run_job(shared: &Shared, job: &Job, extra: &Budget) -> Result<Answers, ServeError> {
    // Lock-free fast path: pin the latest published snapshot and answer
    // entirely from it. A load in progress keeps the previous snapshot
    // serving — queries never wait on the writer, and the snapshot's
    // cross-strategy answer cache absorbs repeats.
    let snap = match shared.snapshots.load() {
        Some(snap) => snap,
        None => {
            // Nothing published yet (e.g. the session was mutated
            // through `with_session` without a `prepare`): escalate once
            // to the writer, then pin what it published.
            shared.obs.metrics.counter("serve.prepare_escalations").inc();
            shared.lock_session().prepare()?;
            shared
                .snapshots
                .load()
                .ok_or(ServeError::Session(SessionError::NotPrepared(
                    "session snapshot",
                )))?
        }
    };
    answer_from(shared, &snap, job, extra)
}

fn answer_from(
    shared: &Shared,
    snap: &SessionSnapshot,
    job: &Job,
    extra: &Budget,
) -> Result<Answers, ServeError> {
    let (answers, hit) = snap
        .query_cached(&job.src, job.strategy, extra)
        .map_err(ServeError::Session)?;
    let name = if hit {
        "serve.snapshot.cache.hit"
    } else {
        "serve.snapshot.cache.miss"
    };
    shared.obs.metrics.counter(name).inc();
    Ok(answers)
}

// The whole point of the crate: the server (and its error type) must be
// shareable across threads. A regression fails the build.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Server>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<LoadReport>();
    assert_send::<Pending>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use folog::TripKind;

    fn server() -> Server {
        let mut s = Session::new();
        s.load("person: alice[likes => bob]. person: bob.").unwrap();
        Server::start(s, ServeOptions::default()).unwrap()
    }

    #[test]
    fn answers_queries_from_the_pool() {
        let srv = server();
        for strat in [Strategy::Direct, Strategy::Sld, Strategy::BottomUpSemiNaive] {
            let a = srv.query("person: X", strat).unwrap();
            assert_eq!(a.rows.len(), 2, "{strat:?}");
        }
        srv.shutdown();
    }

    #[test]
    fn sheds_when_queue_is_full() {
        let mut s = Session::new();
        s.load("t: a.").unwrap();
        let srv = Server::start(
            s,
            ServeOptions {
                workers: 1,
                queue_depth: 1,
                default_deadline: None,
            },
        )
        .unwrap();
        // Saturate: the worker may grab one job, but pushing enough
        // submissions faster than they drain must eventually shed.
        let mut shed = None;
        let mut pending = Vec::new();
        for _ in 0..64 {
            match srv.submit("t: X", Strategy::Sld) {
                Ok(p) => pending.push(p),
                Err(e) => {
                    shed = Some(e);
                    break;
                }
            }
        }
        match shed {
            Some(ServeError::Shed(d)) => {
                assert_eq!(d.trip, TripKind::Shed);
                assert_eq!(d.strategy, "serve");
            }
            other => panic!("expected a shed, got {other:?}"),
        }
        for p in pending {
            p.wait().unwrap();
        }
        let snap = srv.obs().metrics.snapshot();
        assert!(snap.counter("serve.shed").unwrap_or(0) >= 1);
        srv.shutdown();
    }

    #[test]
    fn load_bumps_epoch_and_queries_see_it() {
        let srv = server();
        let before = srv.query("person: X", Strategy::Direct).unwrap();
        assert_eq!(before.rows.len(), 2);
        let report = srv.load("person: carol.").unwrap();
        assert!(report.persisted());
        assert!(!report.breaker_open);
        let after = srv.query("person: X", Strategy::Direct).unwrap();
        assert_eq!(after.rows.len(), 3);
        srv.shutdown();
    }

    #[test]
    fn expired_deadline_still_gets_an_answer() {
        let srv = server();
        let a = srv
            .submit_with_deadline("person: X", Strategy::Sld, Some(Duration::ZERO))
            .unwrap()
            .wait()
            .unwrap();
        // Zero budget: the engine trips immediately but still replies.
        assert!(!a.complete || a.rows.len() == 2);
        srv.shutdown();
    }

    #[test]
    fn closed_server_refuses_submissions() {
        let srv = server();
        let shared = Arc::clone(&srv.shared);
        srv.shutdown();
        assert!(!shared.admission.is_open());
    }
}
