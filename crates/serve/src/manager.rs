//! Multi-tenant session management: many named durable sessions
//! multiplexed over one process.
//!
//! A [`SessionManager`] owns a map of *tenants*, each a persistent
//! [`Session`] recovered on demand from its own storage (produced by the
//! injected [`StorageFactory`] and wrapped in a per-tenant
//! [`RetryingStorage`], so every tenant has its **own** retry budget and
//! circuit breaker). The lifecycle per tenant is
//!
//! ```text
//! (unknown) ──open──▶ recovering ──▶ live ──idle, over capacity──▶ evicted
//!                          ▲                                          │
//!                          └───────────── first use after ────────────┘
//! ```
//!
//! * **Live** sessions are resident: writers serialize on an
//!   `Arc<Mutex<Session>>` while queries answer lock-free from the
//!   tenant's published [`SessionSnapshot`](clogic::SessionSnapshot),
//!   exactly as in [`Server`](crate::Server). Status listings read the
//!   snapshots too, so `:tenants` stays responsive while a tenant is
//!   mid-load.
//! * When the number of live sessions exceeds [`ManagerOptions::capacity`],
//!   the least-recently-used *idle* tenants (no outstanding handles) are
//!   **evicted**: compacted into their snapshot (best effort) and dropped
//!   from memory. Eviction is refused — *deferred* — unless the session
//!   is [`fully persisted`](Session::fully_persisted) with its breaker
//!   closed: evicting a session whose in-memory state is ahead of its log
//!   (a mid-outage tenant) would silently lose the unlogged loads.
//! * An evicted tenant is **recovered** lazily on its next open: the
//!   factory re-produces its storage and [`Session::recover_from`]
//!   replays snapshot + WAL, preserving skolem identities. Recovery runs
//!   *outside* the manager lock, so one tenant's slow (or broken)
//!   recovery never blocks its neighbors.
//!
//! **Fault isolation** is the point of the per-tenant plumbing: each
//! session's metrics land in an [`Obs::namespaced`] registry
//! (`tenant.<name>.…`), its breaker state is its own, and a tenant whose
//! storage is down is served read-only (persistence failures surface in
//! its [`LoadReport`], exactly the single-session `Server` contract)
//! while neighbors on healthy storage see zero retries and zero sheds.

use crate::{LoadReport, ServeError};
use clogic::{Answers, Session, SessionError, SessionOptions, SnapshotCell, Strategy};
use clogic_obs::Obs;
use clogic_store::{RetryPolicy, RetryingStorage, Sleeper, Storage, StoreError};
use folog::Budget;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Produces the [`Storage`] backing a named tenant. Must be
/// deterministic per name: re-invoking it after an eviction has to reach
/// the **same** bytes the evicted session persisted (a directory keyed
/// by tenant name; a shared [`MemStorage`](clogic_store::MemStorage)
/// clone in tests).
pub type StorageFactory = Arc<dyn Fn(&str) -> Result<Box<dyn Storage>, StoreError> + Send + Sync>;

/// Tuning for a [`SessionManager`].
#[derive(Clone)]
pub struct ManagerOptions {
    /// Maximum *live* (resident) sessions before LRU eviction kicks in
    /// (default 64, minimum 1). Evicted tenants cost no memory; the
    /// total tenant population is unbounded.
    pub capacity: usize,
    /// Retry/breaker policy applied to every tenant's storage.
    pub retry: RetryPolicy,
    /// Template session options. Per tenant, `obs` is replaced with a
    /// [namespaced](Obs::namespaced) handle under `tenant.<name>.`; the
    /// rest (budget governor, snapshot cadence, engine options) applies
    /// to every tenant alike.
    pub session: SessionOptions,
    /// Backoff sleeper for the per-tenant [`RetryingStorage`];
    /// injectable so tests run fault storms without wall-clock cost.
    pub sleeper: Sleeper,
}

impl Default for ManagerOptions {
    fn default() -> Self {
        ManagerOptions {
            capacity: 64,
            retry: RetryPolicy::default(),
            session: SessionOptions::default(),
            sleeper: Arc::new(std::thread::sleep),
        }
    }
}

/// Where a tenant stands in the lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantState {
    /// Resident in memory, serving queries.
    Live,
    /// Dropped from memory; durable state on storage, recovered on next
    /// open.
    Evicted,
    /// Being recovered (or evicted) right now; opens wait.
    Recovering,
}

impl std::fmt::Display for TenantState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TenantState::Live => "live",
            TenantState::Evicted => "evicted",
            TenantState::Recovering => "recovering",
        })
    }
}

/// One row of [`SessionManager::tenants`] — the `:tenants` listing.
#[derive(Clone, Debug)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Lifecycle state.
    pub state: TenantState,
    /// Load epoch of the tenant's last published snapshot, when live.
    pub epoch: Option<u64>,
    /// Whether the tenant's persistence breaker was open as of its last
    /// published snapshot, when live.
    pub breaker_open: Option<bool>,
}

enum TenantSlot {
    Live {
        /// Writer handle: loads and maintenance serialize here.
        session: Arc<Mutex<Session>>,
        /// The session's snapshot cell: queries and status listings read
        /// the latest published snapshot from here without touching the
        /// session lock.
        snapshots: Arc<SnapshotCell>,
    },
    Evicted,
    Recovering,
}

struct Tenant {
    slot: TenantSlot,
    /// LRU stamp: the manager clock at last open.
    last_used: u64,
}

struct ManagerState {
    tenants: HashMap<String, Tenant>,
    clock: u64,
}

impl ManagerState {
    fn live(&self) -> usize {
        self.tenants
            .values()
            .filter(|t| matches!(t.slot, TenantSlot::Live { .. }))
            .count()
    }

    fn evicted(&self) -> usize {
        self.tenants
            .values()
            .filter(|t| matches!(t.slot, TenantSlot::Evicted))
            .count()
    }
}

/// Many named durable sessions behind one handle. See the [module
/// docs](self) for the lifecycle and isolation model.
pub struct SessionManager {
    factory: StorageFactory,
    opts: ManagerOptions,
    /// Root observability handle; tenant handles are namespaced off it.
    obs: Obs,
    state: Mutex<ManagerState>,
    /// Signalled whenever a Recovering slot resolves (either way).
    changed: Condvar,
}

impl SessionManager {
    /// A manager producing tenant storage through `factory`.
    pub fn new(factory: StorageFactory, opts: ManagerOptions) -> SessionManager {
        let obs = opts.session.obs.clone();
        SessionManager {
            factory,
            opts,
            obs,
            state: Mutex::new(ManagerState {
                tenants: HashMap::new(),
                clock: 0,
            }),
            changed: Condvar::new(),
        }
    }

    /// The root observability handle (tenant metrics appear under
    /// `tenant.<name>.` in its registry; manager gauges under
    /// `manager.`).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Live (resident) session count.
    pub fn resident(&self) -> usize {
        self.lock().live()
    }

    /// Status of every tenant the manager has seen, sorted by name.
    pub fn tenants(&self) -> Vec<TenantStatus> {
        let st = self.lock();
        let mut rows: Vec<TenantStatus> = st
            .tenants
            .iter()
            .map(|(name, t)| {
                let (state, epoch, breaker_open) = match &t.slot {
                    // Read the published snapshot, never the session
                    // lock: a tenant mid-load still reports its last
                    // published epoch instead of blanking out (or
                    // blocking the listing).
                    TenantSlot::Live { snapshots, .. } => match snapshots.load() {
                        Some(snap) => (
                            TenantState::Live,
                            Some(snap.epoch()),
                            Some(snap.breaker_open()),
                        ),
                        None => (TenantState::Live, None, None),
                    },
                    TenantSlot::Evicted => (TenantState::Evicted, None, None),
                    TenantSlot::Recovering => (TenantState::Recovering, None, None),
                };
                TenantStatus {
                    name: name.clone(),
                    state,
                    epoch,
                    breaker_open,
                }
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows
    }

    /// Opens (creating or recovering as needed) the named tenant and
    /// returns its session (writer) handle. Holding the handle pins the
    /// tenant live — drop it promptly, or use the [`load`](Self::load) /
    /// [`query`](Self::query) conveniences which do.
    pub fn open(&self, name: &str) -> Result<Arc<Mutex<Session>>, ServeError> {
        self.open_slot(name).map(|(session, _)| session)
    }

    /// [`open`](Self::open), also returning the tenant's snapshot cell
    /// for the lock-free read path.
    fn open_slot(
        &self,
        name: &str,
    ) -> Result<(Arc<Mutex<Session>>, Arc<SnapshotCell>), ServeError> {
        validate_name(name).map_err(ServeError::Session)?;
        let mut st = self.lock();
        loop {
            st.clock += 1;
            let now = st.clock;
            match st.tenants.get_mut(name) {
                Some(tenant) => match &tenant.slot {
                    TenantSlot::Live { session, snapshots } => {
                        let handles = (Arc::clone(session), Arc::clone(snapshots));
                        tenant.last_used = now;
                        return Ok(handles);
                    }
                    TenantSlot::Recovering => {
                        st = self.changed.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    TenantSlot::Evicted => {
                        tenant.slot = TenantSlot::Recovering;
                        self.obs.metrics.counter("manager.recoveries").inc();
                        break;
                    }
                },
                None => {
                    st.tenants.insert(
                        name.to_string(),
                        Tenant {
                            slot: TenantSlot::Recovering,
                            last_used: 0,
                        },
                    );
                    self.obs.metrics.counter("manager.tenants_created").inc();
                    break;
                }
            }
        }
        drop(st);

        // Build outside the lock: a slow or broken recovery (dead disk,
        // retry storm) must not block other tenants' opens.
        let built = self.build_session(name);
        let mut st = self.lock();
        st.clock += 1;
        let now = st.clock;
        let tenant = st.tenants.get_mut(name).expect("recovering slot present");
        let result = match built {
            Ok(session) => {
                let snapshots = session.snapshot_cell();
                let arc = Arc::new(Mutex::new(session));
                tenant.slot = TenantSlot::Live {
                    session: Arc::clone(&arc),
                    snapshots: Arc::clone(&snapshots),
                };
                tenant.last_used = now;
                Ok((arc, snapshots))
            }
            Err(e) => {
                // The durable state (if any) is untouched; the next open
                // retries recovery.
                tenant.slot = TenantSlot::Evicted;
                self.obs.metrics.counter("manager.recovery_failures").inc();
                Err(ServeError::Session(e))
            }
        };
        self.update_gauges(&st);
        drop(st);
        self.changed.notify_all();
        if result.is_ok() {
            self.evict_over_capacity();
        }
        result
    }

    /// Loads program text into the named tenant. Mirrors
    /// [`Server::load`](crate::Server::load): a persistence failure does
    /// not fail the load — the tenant keeps serving read-only and the
    /// failure (plus breaker state) is reported in the [`LoadReport`].
    pub fn load(&self, name: &str, src: &str) -> Result<LoadReport, ServeError> {
        let arc = self.open(name)?;
        let mut session = arc.lock().unwrap_or_else(|e| e.into_inner());
        let epoch_before = session.epoch();
        let store_error = match session.load(src) {
            Ok(()) => None,
            Err(SessionError::Store(e)) if session.epoch() > epoch_before => {
                self.obs.metrics.counter("manager.persist_failures").inc();
                Some(e)
            }
            Err(e) => return Err(ServeError::Session(e)),
        };
        session.prepare()?;
        Ok(LoadReport {
            epoch: session.epoch(),
            store_error,
            breaker_open: session.persistence_breaker_open(),
        })
    }

    /// Retracts clauses from the named tenant. Mirrors
    /// [`SessionManager::load`]: a persistence failure does not fail the
    /// retraction (the in-memory state already advanced) — it is
    /// reported in the [`LoadReport`] — while any other error leaves the
    /// tenant unchanged.
    pub fn retract(&self, name: &str, src: &str) -> Result<LoadReport, ServeError> {
        let arc = self.open(name)?;
        let mut session = arc.lock().unwrap_or_else(|e| e.into_inner());
        let epoch_before = session.epoch();
        let store_error = match session.retract(src) {
            Ok(()) => None,
            Err(SessionError::Store(e)) if session.epoch() > epoch_before => {
                self.obs.metrics.counter("manager.persist_failures").inc();
                Some(e)
            }
            Err(e) => return Err(ServeError::Session(e)),
        };
        session.prepare()?;
        Ok(LoadReport {
            epoch: session.epoch(),
            store_error,
            breaker_open: session.persistence_breaker_open(),
        })
    }

    /// Queries the named tenant with no extra budget.
    pub fn query(&self, name: &str, src: &str, strategy: Strategy) -> Result<Answers, ServeError> {
        self.query_with_budget(name, src, strategy, &Budget::unlimited())
    }

    /// Queries the named tenant, merging `extra` (per-request deadline,
    /// cancel token) into the session budget. Answers come lock-free
    /// from the tenant's published [`SessionSnapshot`](clogic::SessionSnapshot)
    /// (through its cross-strategy answer cache), with the same
    /// prepare-escalation as the single-session server when nothing has
    /// been published yet.
    pub fn query_with_budget(
        &self,
        name: &str,
        src: &str,
        strategy: Strategy,
        extra: &Budget,
    ) -> Result<Answers, ServeError> {
        let (arc, snapshots) = self.open_slot(name)?;
        let snap = match snapshots.load() {
            Some(snap) => snap,
            None => {
                self.obs.metrics.counter("serve.prepare_escalations").inc();
                arc.lock().unwrap_or_else(|e| e.into_inner()).prepare()?;
                snapshots
                    .load()
                    .ok_or(ServeError::Session(SessionError::NotPrepared(
                        "session snapshot",
                    )))?
            }
        };
        let (answers, hit) = snap
            .query_cached(src, strategy, extra)
            .map_err(ServeError::Session)?;
        let ctr = if hit {
            "serve.snapshot.cache.hit"
        } else {
            "serve.snapshot.cache.miss"
        };
        self.obs.metrics.counter(ctr).inc();
        Ok(answers)
    }

    /// Explicitly evicts the named tenant if it is live, idle and safe
    /// to evict. Returns `true` if evicted, `false` if deferred (held
    /// handles, breaker open, or unpersisted loads) or not live.
    pub fn evict(&self, name: &str) -> Result<bool, ServeError> {
        validate_name(name).map_err(ServeError::Session)?;
        Ok(self.try_evict(name))
    }

    /// Evicts least-recently-used idle tenants until the live count is
    /// back within capacity. One pass: tenants whose eviction is unsafe
    /// are deferred (counted in `manager.eviction_deferrals`), so a
    /// mid-outage tenant can hold the live count above capacity — by
    /// design, never at the cost of losing its unlogged loads.
    fn evict_over_capacity(&self) {
        let candidates: Vec<String> = {
            let st = self.lock();
            let over = st.live().saturating_sub(self.opts.capacity.max(1));
            if over == 0 {
                return;
            }
            let mut live: Vec<(&String, &Tenant)> = st
                .tenants
                .iter()
                .filter(|(_, t)| matches!(t.slot, TenantSlot::Live { .. }))
                .collect();
            live.sort_by_key(|(_, t)| t.last_used);
            live.iter().map(|(name, _)| (*name).clone()).collect()
        };
        for name in candidates {
            {
                let st = self.lock();
                if st.live() <= self.opts.capacity.max(1) {
                    return;
                }
            }
            self.try_evict(&name);
        }
    }

    /// Attempts to evict one tenant; true on success.
    fn try_evict(&self, name: &str) -> bool {
        // Claim the slot (Recovering) so a concurrent open waits instead
        // of racing a recovery against the still-resident session.
        let arc = {
            let mut st = self.lock();
            let Some(tenant) = st.tenants.get_mut(name) else {
                return false;
            };
            let TenantSlot::Live { session: arc, .. } = &tenant.slot else {
                return false;
            };
            // Idle = the map holds the only handle; anything else means
            // a query or load is in flight (or a caller pinned it).
            if Arc::strong_count(arc) != 1 {
                self.obs.metrics.counter("manager.eviction_deferrals").inc();
                return false;
            }
            let arc = Arc::clone(arc);
            tenant.slot = TenantSlot::Recovering;
            arc
        };

        // Safety predicate, checked outside the manager lock: every load
        // must be durably logged and the breaker closed. A best-effort
        // compaction keeps recovery replay short; its failure does not
        // block eviction as long as the WAL still covers the state.
        let safe = {
            let mut session = arc.lock().unwrap_or_else(|e| e.into_inner());
            if session.fully_persisted() && !session.persistence_breaker_open() {
                let _ = session.snapshot();
                session.fully_persisted() && !session.persistence_breaker_open()
            } else {
                false
            }
        };

        let mut st = self.lock();
        st.clock += 1;
        let now = st.clock;
        let tenant = st.tenants.get_mut(name).expect("claimed slot present");
        let evicted = if safe {
            drop(arc);
            tenant.slot = TenantSlot::Evicted;
            self.obs.metrics.counter("manager.evictions").inc();
            true
        } else {
            let snapshots = arc.lock().unwrap_or_else(|e| e.into_inner()).snapshot_cell();
            tenant.slot = TenantSlot::Live {
                session: arc,
                snapshots,
            };
            // Freshen the LRU stamp so the next pass tries a different
            // candidate instead of re-deferring this one forever.
            tenant.last_used = now;
            self.obs.metrics.counter("manager.eviction_deferrals").inc();
            false
        };
        self.update_gauges(&st);
        drop(st);
        self.changed.notify_all();
        evicted
    }

    fn build_session(&self, name: &str) -> Result<Session, SessionError> {
        let obs = self.obs.namespaced(&format!("tenant.{name}."));
        let storage = (self.factory)(name).map_err(SessionError::Store)?;
        let retry = RetryingStorage::with_sleeper(
            storage,
            self.opts.retry.clone(),
            Arc::clone(&self.opts.sleeper),
        )
        .with_obs(obs.clone());
        let mut session_options = self.opts.session.clone();
        session_options.obs = obs;
        let (mut session, _report) = Session::recover_from(Box::new(retry), session_options)?;
        session.prepare()?;
        Ok(session)
    }

    fn update_gauges(&self, st: &ManagerState) {
        let m = &self.obs.metrics;
        m.gauge("manager.sessions.live").set(st.live() as u64);
        m.gauge("manager.sessions.evicted").set(st.evicted() as u64);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ManagerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Tenant names become metric prefixes and (for file-backed factories)
/// directory names, so they are restricted to a safe alphabet.
fn validate_name(name: &str) -> Result<(), SessionError> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name != "."
        && name != ".."
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if ok {
        Ok(())
    } else {
        Err(SessionError::Store(StoreError::new(
            "open-tenant",
            name,
            "invalid tenant name (want 1-128 chars of [A-Za-z0-9._-], not `.`/`..`)",
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clogic_store::MemStorage;
    use std::collections::HashMap as Map;

    /// A factory handing each tenant its own MemStorage, stable across
    /// evictions (clones share bytes).
    fn mem_factory() -> (StorageFactory, Arc<Mutex<Map<String, MemStorage>>>) {
        let stores: Arc<Mutex<Map<String, MemStorage>>> = Arc::new(Mutex::new(Map::new()));
        let stores2 = Arc::clone(&stores);
        let factory: StorageFactory = Arc::new(move |name| {
            let mut stores = stores2.lock().unwrap();
            Ok(Box::new(
                stores.entry(name.to_string()).or_default().clone(),
            ) as Box<dyn Storage>)
        });
        (factory, stores)
    }

    fn no_sleep_opts(capacity: usize) -> ManagerOptions {
        ManagerOptions {
            capacity,
            sleeper: Arc::new(|_| {}),
            ..ManagerOptions::default()
        }
    }

    #[test]
    fn tenants_are_isolated_namespaces() {
        let (factory, _) = mem_factory();
        let mgr = SessionManager::new(factory, no_sleep_opts(8));
        mgr.load("alice", "t: a.").unwrap();
        mgr.load("bob", "t: b. t: c.").unwrap();
        assert_eq!(mgr.query("alice", "t: X", Strategy::Sld).unwrap().rows.len(), 1);
        assert_eq!(mgr.query("bob", "t: X", Strategy::Sld).unwrap().rows.len(), 2);
        // Per-tenant metrics landed under their namespaces.
        let snap = mgr.obs().metrics.snapshot();
        assert_eq!(snap.counter("tenant.alice.session.loads"), Some(1));
        assert_eq!(snap.counter("tenant.bob.session.loads"), Some(1));
    }

    #[test]
    fn eviction_recovers_lazily_with_identical_answers() {
        let (factory, _) = mem_factory();
        let mgr = SessionManager::new(factory, no_sleep_opts(1));
        mgr.load("a", "p: x[f => y].").unwrap();
        let before = mgr.query("a", "p: X", Strategy::Direct).unwrap();
        // Opening a second tenant pushes `a` out (capacity 1).
        mgr.load("b", "q: z.").unwrap();
        let rows: Map<String, TenantState> = mgr
            .tenants()
            .into_iter()
            .map(|t| (t.name, t.state))
            .collect();
        assert_eq!(rows["a"], TenantState::Evicted);
        assert_eq!(rows["b"], TenantState::Live);
        assert_eq!(mgr.resident(), 1);
        // First query after eviction recovers transparently.
        let after = mgr.query("a", "p: X", Strategy::Direct).unwrap();
        assert_eq!(before, after);
        let snap = mgr.obs().metrics.snapshot();
        assert!(snap.counter("manager.evictions").unwrap_or(0) >= 1);
        assert!(snap.counter("manager.recoveries").unwrap_or(0) >= 1);
    }

    #[test]
    fn pinned_tenants_are_not_evicted() {
        let (factory, _) = mem_factory();
        let mgr = SessionManager::new(factory, no_sleep_opts(1));
        mgr.load("a", "t: a.").unwrap();
        let pin = mgr.open("a").unwrap();
        mgr.load("b", "t: b.").unwrap();
        // `a` was not evictable (handle outstanding): both stay live.
        assert_eq!(mgr.resident(), 2);
        assert!(
            mgr.obs()
                .metrics
                .snapshot()
                .counter("manager.eviction_deferrals")
                .unwrap_or(0)
                >= 1
        );
        drop(pin);
        assert!(mgr.evict("a").unwrap());
        assert_eq!(mgr.resident(), 1);
    }

    #[test]
    fn invalid_names_are_refused() {
        let (factory, _) = mem_factory();
        let mgr = SessionManager::new(factory, no_sleep_opts(4));
        for bad in ["", ".", "..", "a/b", "a b", "tenant\n"] {
            assert!(mgr.open(bad).is_err(), "{bad:?} should be refused");
        }
    }
}
