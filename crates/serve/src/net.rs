//! Length-prefixed JSONL-over-TCP front-end for a [`SessionManager`],
//! hardened against hostile and merely unlucky peers.
//!
//! A [`TcpFront`] binds a listener and runs one **non-blocking accept
//! loop** thread: it accepts connections, accumulates bytes per
//! connection, splits complete frames (see [`protocol`] for the
//! framing), and pushes each request into the same bounded
//! [`AdmissionQueue`] the in-process server uses — so network traffic is
//! subject to exactly the overload policy as local submissions: when the
//! queue is full the request is shed *immediately* with a structured
//! error response instead of buffering unboundedly. A worker pool drains
//! the queue, dispatches to the manager, and writes each response back
//! under a per-connection write lock (workers finish out of order;
//! responses interleave but never tear).
//!
//! # Connection governance
//!
//! The wire is the only boundary an adversary reaches without
//! authenticating, so every resource a connection can pin is bounded and
//! every stall is reaped (policy in [`TcpFrontOptions`], accounting in
//! the `net.*` metrics namespace):
//!
//! * **Accept-time shedding** — at most
//!   [`max_connections`](TcpFrontOptions::max_connections) connections
//!   are registered; a connect beyond the cap receives one best-effort
//!   error frame and is dropped (`net.reaped.overflow`), so a
//!   connection flood cannot grow the conn table or its buffers.
//! * **Slow-read (slowloris) reaping** — a peer that starts a frame
//!   must finish it within
//!   [`frame_timeout`](TcpFrontOptions::frame_timeout); trickling bytes
//!   does not reset the clock (`net.reaped.slow_read`).
//! * **Idle reaping** — a connection with no partial frame, no response
//!   in flight, and no bytes for
//!   [`idle_timeout`](TcpFrontOptions::idle_timeout) is closed
//!   (`net.reaped.idle`).
//! * **Read-buffer caps** — a connection's accumulation buffer never
//!   exceeds [`read_buf_cap`](TcpFrontOptions::read_buf_cap)
//!   (`net.reaped.buffer`); oversized frame prefixes are refused before
//!   any allocation, as before (`net.reaped.frame_error`).
//! * **Write budgets** — a worker writing a response spends at most
//!   [`write_budget`](TcpFrontOptions::write_budget) blocked on a slow
//!   consumer; on exhaustion (`net.reaped.write_stall`) or any
//!   mid-frame write failure the connection is marked **dead**: no
//!   later response is ever written into the torn stream (which would
//!   desynchronize framing for everything after it), and the accept
//!   loop reaps the carcass.
//!
//! Deadlines propagate end to end: a request's `deadline_ms` covers
//! **queue wait plus evaluation**, exactly as
//! [`Server::submit_with_deadline`](crate::Server::submit_with_deadline)
//! — time spent in the admission queue is subtracted before the rest is
//! handed to the engine budget, so a request that waited out its
//! deadline trips immediately (still answering, with its degradation
//! report) instead of burning a full budget the client has stopped
//! waiting for. Shutdown **drains with a deadline**: the front stops
//! accepting and reading, lets workers finish what was admitted for up
//! to [`drain_deadline`](TcpFrontOptions::drain_deadline), then sheds
//! the remainder with structured errors. A `health` wire op reports the
//! front's vitals without touching any session lock.
//!
//! The accept loop uses readiness-free polling (non-blocking reads plus
//! a 1 ms idle sleep) rather than an OS selector: the dependency-free
//! choice, costing at most one wake-up per millisecond when idle — fine
//! for the test/bench scale this repo targets and trivially replaceable
//! behind the same structure.

use crate::admission::{AdmissionQueue, AdmitError};
use crate::manager::SessionManager;
use crate::protocol::{self, Request, RequestOp, Response};
use clogic_obs::{Counter, Gauge, Json, Obs};
use folog::Budget;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for a [`TcpFront`]: pool sizing plus the connection-governance
/// policy (see the [module docs](self) for what each bound defends
/// against).
#[derive(Clone, Debug)]
pub struct TcpFrontOptions {
    /// Worker threads dispatching requests to the manager (default 4).
    pub workers: usize,
    /// Admission-queue capacity shared by every connection (default 64).
    pub queue_depth: usize,
    /// Maximum registered connections; a connect beyond this is shed at
    /// accept time with one best-effort error frame (default 256,
    /// minimum 1).
    pub max_connections: usize,
    /// Per-connection read-buffer cap in bytes; exceeding it reaps the
    /// connection (default `MAX_FRAME + 4`, i.e. one maximal frame —
    /// the framing already refuses larger declared lengths).
    pub read_buf_cap: usize,
    /// A connection with no partial frame, no response in flight and no
    /// bytes read for this long is reaped (default 60 s).
    pub idle_timeout: Duration,
    /// A peer that begins a frame must complete it within this long —
    /// the slowloris bound; trickling bytes does not reset it (default
    /// 10 s).
    pub frame_timeout: Duration,
    /// Longest a worker may spend blocked writing one response to a
    /// slow consumer before the connection is marked dead (default 2 s).
    pub write_budget: Duration,
    /// On shutdown, how long to let workers finish already-admitted
    /// requests before shedding the remainder (default 1 s).
    pub drain_deadline: Duration,
}

impl Default for TcpFrontOptions {
    fn default() -> Self {
        TcpFrontOptions {
            workers: 4,
            queue_depth: 64,
            max_connections: 256,
            read_buf_cap: protocol::MAX_FRAME as usize + 4,
            idle_timeout: Duration::from_secs(60),
            frame_timeout: Duration::from_secs(10),
            write_budget: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(1),
        }
    }
}

/// The `net.*` instrument handles, registered once at start-up so every
/// counter is visible (at zero) in the very first metrics snapshot.
struct NetMetrics {
    /// `net.connections.open` — registered connections right now.
    conns_open: Gauge,
    /// `net.connections.accepted` — connections ever registered.
    accepted: Counter,
    /// `net.connections.closed` — peer-initiated closes and read errors.
    closed: Counter,
    /// `net.frames.in` — complete request frames decoded.
    frames_in: Counter,
    /// `net.frames.out` — complete response frames written.
    frames_out: Counter,
    /// `net.reaped.overflow` — connects shed at the connection cap.
    reaped_overflow: Counter,
    /// `net.reaped.idle` — idle-timeout reaps.
    reaped_idle: Counter,
    /// `net.reaped.slow_read` — slowloris (frame-timeout) reaps.
    reaped_slow_read: Counter,
    /// `net.reaped.buffer` — read-buffer-cap reaps.
    reaped_buffer: Counter,
    /// `net.reaped.frame_error` — unframeable streams dropped.
    reaped_frame_error: Counter,
    /// `net.reaped.write_stall` — write-budget kills of slow consumers.
    reaped_write_stall: Counter,
    /// `net.write_errors` — mid-frame write failures marking conns dead.
    write_errors: Counter,
}

impl NetMetrics {
    fn new(obs: &Obs) -> NetMetrics {
        let m = &obs.metrics;
        NetMetrics {
            conns_open: m.gauge("net.connections.open"),
            accepted: m.counter("net.connections.accepted"),
            closed: m.counter("net.connections.closed"),
            frames_in: m.counter("net.frames.in"),
            frames_out: m.counter("net.frames.out"),
            reaped_overflow: m.counter("net.reaped.overflow"),
            reaped_idle: m.counter("net.reaped.idle"),
            reaped_slow_read: m.counter("net.reaped.slow_read"),
            reaped_buffer: m.counter("net.reaped.buffer"),
            reaped_frame_error: m.counter("net.reaped.frame_error"),
            reaped_write_stall: m.counter("net.reaped.write_stall"),
            write_errors: m.counter("net.write_errors"),
        }
    }
}

/// The write half of a connection, shared by the workers answering its
/// requests.
struct Conn {
    writer: Mutex<TcpStream>,
    /// Set on any mid-frame write failure or write-budget exhaustion:
    /// the stream may hold a torn partial frame, so nothing must ever
    /// be written to it again (a later response would be parsed against
    /// the torn frame's leftover length prefix). The accept loop reaps
    /// dead connections.
    dead: AtomicBool,
    /// Requests admitted but not yet answered — an idle-looking socket
    /// waiting on a slow query is *not* idle.
    in_flight: AtomicU64,
    /// Longest one response write may spend blocked on the peer.
    write_budget: Duration,
    /// `net.reaped.write_stall` handle.
    stall_kills: Counter,
    /// `net.write_errors` handle.
    write_errors: Counter,
}

impl Conn {
    /// Frames and writes one response; returns `false` when the
    /// connection is (or just became) dead. The socket is non-blocking
    /// (the write half shares the read half's file description, so it
    /// cannot be anything else — see [`register`]), so a full send
    /// buffer surfaces as `WouldBlock`; the budgeted retry loop naps
    /// briefly between attempts and **kills the connection** when the
    /// budget runs out — a worker is never parked indefinitely behind a
    /// consumer that stopped reading. Any failure mid-frame (including
    /// `Ok(0)` and hard errors) also marks the connection dead instead
    /// of silently leaving a torn frame on the stream.
    fn send(&self, resp: &Response) -> bool {
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        let frame = protocol::encode_frame(&resp.render_json());
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Re-check under the lock: another worker may have torn the
        // stream while we waited for it.
        if self.dead.load(Ordering::Acquire) {
            return false;
        }
        let start = Instant::now();
        let mut sent = 0;
        while sent < frame.len() {
            match writer.write(&frame[sent..]) {
                Ok(0) => {
                    self.write_errors.inc();
                    self.dead.store(true, Ordering::Release);
                    return false;
                }
                Ok(n) => sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if start.elapsed() >= self.write_budget {
                        self.stall_kills.inc();
                        self.dead.store(true, Ordering::Release);
                        return false;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.write_errors.inc();
                    self.dead.store(true, Ordering::Release);
                    return false;
                }
            }
        }
        true
    }
}

struct NetJob {
    conn: Arc<Conn>,
    payload: Vec<u8>,
    /// When the frame was admitted — queue wait is subtracted from the
    /// request's deadline, mirroring the in-process server.
    enqueued: Instant,
}

/// Everything the accept loop, the workers and the front handle share.
struct FrontShared {
    manager: Arc<SessionManager>,
    admission: AdmissionQueue<NetJob>,
    stats: NetMetrics,
    /// Hard stop: accept loop exits, queue closes.
    stop: AtomicBool,
    /// Graceful phase: stop accepting and reading, keep answering.
    draining: AtomicBool,
    /// Jobs a worker has popped but not yet answered (drain barrier).
    in_flight: AtomicU64,
}

/// A running TCP front-end over a [`SessionManager`]. Shuts down on
/// drop; see the [module docs](self) for the serving and governance
/// model.
pub struct TcpFront {
    addr: SocketAddr,
    shared: Arc<FrontShared>,
    drain_deadline: Duration,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `manager`.
    pub fn start(
        manager: Arc<SessionManager>,
        addr: &str,
        opts: TcpFrontOptions,
    ) -> std::io::Result<TcpFront> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(FrontShared {
            admission: AdmissionQueue::new(opts.queue_depth, manager.obs().clone()),
            stats: NetMetrics::new(manager.obs()),
            manager,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
        });
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("clogic-net-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn net worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            let opts = opts.clone();
            std::thread::Builder::new()
                .name("clogic-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &opts))
                .expect("spawn accept loop")
        };
        Ok(TcpFront {
            addr,
            shared,
            drain_deadline: opts.drain_deadline,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Drains (see [`TcpFrontOptions::drain_deadline`]), sheds whatever
    /// did not finish in time, and joins the threads. Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let shared = &self.shared;
        // Phase 1 — drain: no new connections or frames, but workers
        // keep answering what was already admitted, up to the deadline.
        shared.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + self.drain_deadline;
        let mut settled = 0u32;
        while Instant::now() < deadline {
            if shared.admission.is_empty() && shared.in_flight.load(Ordering::Acquire) == 0 {
                // Require the quiescent state to hold for two
                // consecutive polls: a worker between `pop` and its
                // in-flight increment is invisible for one instant.
                settled += 1;
                if settled >= 2 {
                    break;
                }
            } else {
                settled = 0;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // Phase 2 — stop: close the queue, shed the remainder with
        // structured errors, join every thread.
        shared.stop.store(true, Ordering::Release);
        for job in shared.admission.close() {
            job.conn.send(&Response::Error {
                message: "server shutting down".to_string(),
            });
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One open connection in the accept loop, with its governance clocks.
struct Reading {
    stream: TcpStream,
    conn: Arc<Conn>,
    buf: Vec<u8>,
    /// Last instant any byte arrived (or the accept instant).
    last_byte: Instant,
    /// When the currently-buffered partial frame began — the slowloris
    /// clock. `None` while the buffer is empty.
    frame_start: Option<Instant>,
}

/// What `pump` concluded about a connection this tick.
enum Pump {
    Keep,
    /// Peer closed (or the read errored) — its right; not a reap.
    Closed,
    /// The stream is unframeable; drop it.
    FrameError,
}

fn accept_loop(listener: &TcpListener, shared: &FrontShared, opts: &TcpFrontOptions) {
    let max_conns = opts.max_connections.max(1);
    let mut conns: Vec<Reading> = Vec::new();
    while !shared.stop.load(Ordering::Acquire) {
        if shared.draining.load(Ordering::Acquire) {
            // Drain phase: responses still flow (workers write directly
            // to the sockets), but nothing new is accepted or read.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let mut active = false;
        // Accept everything pending this tick (bounded per tick so a
        // connect storm cannot starve the pumps below).
        for _ in 0..64 {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    active = true;
                    if conns.len() >= max_conns {
                        shared.stats.reaped_overflow.inc();
                        refuse(stream, conns.len(), max_conns);
                        continue;
                    }
                    if let Ok(conn) = register(&stream, shared, opts) {
                        shared.stats.accepted.inc();
                        shared.stats.conns_open.inc();
                        conns.push(Reading {
                            stream,
                            conn,
                            buf: Vec::new(),
                            last_byte: Instant::now(),
                            frame_start: None,
                        });
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let now = Instant::now();
        conns.retain_mut(|c| {
            let keep = match pump(c, shared, &mut active) {
                Pump::Keep => govern(c, now, shared, opts),
                Pump::Closed => {
                    shared.stats.closed.inc();
                    false
                }
                Pump::FrameError => {
                    shared.stats.reaped_frame_error.inc();
                    false
                }
            };
            if !keep {
                shared.stats.conns_open.dec();
            }
            keep
        });
        if !active {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for _ in &conns {
        shared.stats.conns_open.dec();
    }
}

/// Best-effort structured refusal of a connect beyond the cap: one
/// non-blocking write into the empty socket buffer, then drop.
fn refuse(stream: TcpStream, open: usize, cap: usize) {
    let _ = stream.set_nonblocking(true);
    let frame = protocol::encode_frame(
        &Response::Error {
            message: format!("connection shed: {open} open, capacity {cap}"),
        }
        .render_json(),
    );
    let mut stream = stream;
    let _ = stream.write(&frame);
}

/// Puts the connection in non-blocking mode and clones a write half for
/// the workers. The clone duplicates the fd onto the *same* open file
/// description, so `O_NONBLOCK` is shared: the write half is necessarily
/// non-blocking too, which [`Conn::send`] handles with a budgeted retry
/// loop. (Setting the clone back to blocking would silently make the
/// read half blocking as well and wedge the accept loop on the first
/// idle connection.)
fn register(
    stream: &TcpStream,
    shared: &FrontShared,
    opts: &TcpFrontOptions,
) -> std::io::Result<Arc<Conn>> {
    stream.set_nonblocking(true)?;
    let writer = stream.try_clone()?;
    Ok(Arc::new(Conn {
        writer: Mutex::new(writer),
        dead: AtomicBool::new(false),
        in_flight: AtomicU64::new(0),
        write_budget: opts.write_budget,
        stall_kills: shared.stats.reaped_write_stall.clone(),
        write_errors: shared.stats.write_errors.clone(),
    }))
}

/// Applies the governance policy to one connection; `false` reaps it.
fn govern(c: &mut Reading, now: Instant, shared: &FrontShared, opts: &TcpFrontOptions) -> bool {
    // A worker already declared the stream torn; the write path counted
    // the kill (`net.reaped.write_stall` / `net.write_errors`).
    if c.conn.dead.load(Ordering::Acquire) {
        return false;
    }
    if c.buf.len() > opts.read_buf_cap {
        shared.stats.reaped_buffer.inc();
        return false;
    }
    if let Some(started) = c.frame_start {
        if now.duration_since(started) > opts.frame_timeout {
            shared.stats.reaped_slow_read.inc();
            return false;
        }
    } else if c.conn.in_flight.load(Ordering::Acquire) == 0
        && now.duration_since(c.last_byte) > opts.idle_timeout
    {
        shared.stats.reaped_idle.inc();
        return false;
    }
    true
}

/// Reads whatever is available and admits every complete frame.
fn pump(c: &mut Reading, shared: &FrontShared, active: &mut bool) -> Pump {
    let mut chunk = [0u8; 4096];
    loop {
        match c.stream.read(&mut chunk) {
            Ok(0) => return Pump::Closed,
            Ok(n) => {
                c.buf.extend_from_slice(&chunk[..n]);
                c.last_byte = Instant::now();
                if c.frame_start.is_none() {
                    c.frame_start = Some(c.last_byte);
                }
                *active = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Pump::Closed,
        }
    }
    loop {
        match protocol::decode_frame(&mut c.buf) {
            Ok(Some(payload)) => {
                *active = true;
                shared.stats.frames_in.inc();
                // Whatever bytes remain start the *next* frame: restart
                // its completion clock at the decode instant.
                c.frame_start = (!c.buf.is_empty()).then(Instant::now);
                c.conn.in_flight.fetch_add(1, Ordering::AcqRel);
                match shared.admission.push(NetJob {
                    conn: Arc::clone(&c.conn),
                    payload,
                    enqueued: Instant::now(),
                }) {
                    Ok(()) => {}
                    Err(AdmitError::Full(d)) => {
                        c.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
                        c.conn.send(&Response::Error {
                            message: format!("request shed: {d}"),
                        });
                    }
                    Err(AdmitError::Closed) => {
                        c.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
                        return Pump::Closed;
                    }
                }
            }
            Ok(None) => return Pump::Keep,
            Err(message) => {
                c.conn.send(&Response::Error { message });
                return Pump::FrameError;
            }
        }
    }
}

fn worker_loop(shared: &FrontShared) {
    while let Some(job) = shared.admission.pop() {
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        let waited = job.enqueued.elapsed();
        shared
            .manager
            .obs()
            .metrics
            .histogram("net.queue_wait_us")
            .observe(waited.as_micros() as u64);
        let resp = handle(shared, &job.payload, waited);
        if job.conn.send(&resp) {
            shared.stats.frames_out.inc();
        }
        job.conn.in_flight.fetch_sub(1, Ordering::AcqRel);
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn handle(shared: &FrontShared, payload: &[u8], waited: Duration) -> Response {
    let manager = &shared.manager;
    let req = match Request::parse(payload) {
        Ok(req) => req,
        Err(message) => return Response::Error { message },
    };
    match req.op {
        RequestOp::Load { src } => match manager.load(&req.tenant, &src) {
            Ok(report) => Response::Loaded {
                epoch: report.epoch,
                persisted: report.persisted(),
                breaker_open: report.breaker_open,
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        RequestOp::Retract { src } => match manager.retract(&req.tenant, &src) {
            Ok(report) => Response::Loaded {
                epoch: report.epoch,
                persisted: report.persisted(),
                breaker_open: report.breaker_open,
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        RequestOp::Query {
            src,
            strategy,
            deadline_ms,
        } => {
            // The deadline covers queue wait plus evaluation, exactly as
            // `Server::submit_with_deadline`: subtract what the job
            // already spent queued. An expired deadline still evaluates
            // (zero remaining budget), so every admitted query gets an
            // answer — at worst a partial one with its degradation
            // report.
            let mut extra = Budget::unlimited();
            if let Some(ms) = deadline_ms {
                extra.deadline = Some(Duration::from_millis(ms).saturating_sub(waited));
            }
            match manager.query_with_budget(&req.tenant, &src, strategy, &extra) {
                Ok(answers) => Response::from_answers(&answers),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        RequestOp::Status => Response::Status {
            tenants: manager.tenants(),
        },
        RequestOp::Health => Response::Health {
            open_connections: shared.stats.conns_open.get(),
            queued: shared.admission.len() as u64,
            resident: manager.resident() as u64,
            draining: shared.draining.load(Ordering::Acquire),
        },
    }
}

/// A minimal blocking client for the wire protocol — what the tests,
/// benches and README examples speak through.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a [`TcpFront`]. The client blocks indefinitely for
    /// responses; use [`Client::connect_timeout`] to bound waits against
    /// a server that might stall.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            buf: Vec::new(),
        })
    }

    /// [`Client::connect`] with per-operation read/write timeouts: a
    /// stalled or misbehaving server makes [`Client::request`] return a
    /// structured timeout error instead of hanging forever.
    pub fn connect_timeout(addr: SocketAddr, io_timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request and blocks for its response. Note responses on
    /// a connection pipelining multiple outstanding requests may arrive
    /// out of order; this simple client sends one at a time.
    ///
    /// Every failure mode of a misbehaving server comes back as a
    /// structured `Err` — a response torn mid-frame is `connection
    /// closed`, a reset surfaces the I/O error, an oversized frame is a
    /// framing error, and (with [`Client::connect_timeout`]) a stalled
    /// server is a timeout. The client never panics on wire data.
    pub fn request(&mut self, req: &Request) -> Result<Json, String> {
        let frame = protocol::encode_frame(&req.render_json());
        self.stream
            .write_all(&frame)
            .map_err(|e| format!("write: {e}"))?;
        loop {
            if let Some(payload) =
                protocol::decode_frame(&mut self.buf).map_err(|e| format!("frame: {e}"))?
            {
                let text =
                    std::str::from_utf8(&payload).map_err(|e| format!("invalid UTF-8: {e}"))?;
                return protocol::parse_json(text);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("connection closed".to_string()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err("timed out waiting for the response".to_string())
                }
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A socketpair over loopback: (governed write half, peer).
    fn pair(budget: Duration) -> (Arc<Conn>, TcpStream, Obs) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let obs = Obs::new();
        let conn = Arc::new(Conn {
            writer: Mutex::new(server_side),
            dead: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            write_budget: budget,
            stall_kills: obs.metrics.counter("net.reaped.write_stall"),
            write_errors: obs.metrics.counter("net.write_errors"),
        });
        (conn, peer, obs)
    }

    #[test]
    fn send_kills_the_connection_when_the_write_budget_runs_out() {
        // The peer never reads, so loopback buffers eventually fill and
        // the non-blocking writes report WouldBlock until the budget is
        // spent. A response big enough to overwhelm any default socket
        // buffer pair forces that within one send.
        let (conn, peer, obs) = pair(Duration::from_millis(50));
        let huge = Response::Error {
            message: "x".repeat(8 * 1024 * 1024),
        };
        let start = Instant::now();
        assert!(!conn.send(&huge), "send into a stalled peer must fail");
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "budget must bound the stall"
        );
        assert!(conn.dead.load(Ordering::Acquire));
        assert_eq!(
            obs.metrics.snapshot().counter("net.reaped.write_stall"),
            Some(1)
        );
        // Dead means dead: no further bytes are ever written.
        assert!(!conn.send(&Response::Error {
            message: "after".into()
        }));
        drop(peer);
    }

    #[test]
    fn send_marks_the_connection_dead_on_write_error() {
        let (conn, peer, obs) = pair(Duration::from_secs(5));
        drop(peer); // peer resets the connection
        let big = Response::Error {
            message: "y".repeat(4 * 1024 * 1024),
        };
        // The first send may need a second attempt before the kernel
        // notices the reset; both must end with a dead connection and
        // no torn-frame retries.
        let _ = conn.send(&big);
        let _ = conn.send(&big);
        assert!(conn.dead.load(Ordering::Acquire));
        assert!(
            obs.metrics
                .snapshot()
                .counter("net.write_errors")
                .unwrap_or(0)
                >= 1
        );
        assert!(!conn.send(&Response::Error { message: "z".into() }));
    }
}
