//! Length-prefixed JSONL-over-TCP front-end for a [`SessionManager`].
//!
//! A [`TcpFront`] binds a listener and runs one **non-blocking accept
//! loop** thread: it accepts connections, accumulates bytes per
//! connection, splits complete frames (see [`protocol`]
//! for the framing), and pushes each request into the same bounded
//! [`AdmissionQueue`] the in-process server uses — so network traffic is
//! subject to exactly the overload policy as local submissions: when the
//! queue is full the request is shed *immediately* with a structured
//! error response instead of buffering unboundedly. A worker pool drains
//! the queue, dispatches to the manager, and writes each response back
//! under a per-connection write lock (workers finish out of order;
//! responses interleave but never tear).
//!
//! The accept loop uses readiness-free polling (non-blocking reads plus
//! a 1 ms idle sleep) rather than an OS selector: the dependency-free
//! choice, costing at most one wake-up per millisecond when idle — fine
//! for the test/bench scale this repo targets and trivially replaceable
//! behind the same structure.

use crate::admission::{AdmissionQueue, AdmitError};
use crate::manager::SessionManager;
use crate::protocol::{self, Request, RequestOp, Response};
use clogic_obs::Json;
use folog::Budget;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for a [`TcpFront`].
#[derive(Clone, Debug)]
pub struct TcpFrontOptions {
    /// Worker threads dispatching requests to the manager (default 4).
    pub workers: usize,
    /// Admission-queue capacity shared by every connection (default 64).
    pub queue_depth: usize,
}

impl Default for TcpFrontOptions {
    fn default() -> Self {
        TcpFrontOptions {
            workers: 4,
            queue_depth: 64,
        }
    }
}

/// The write half of a connection, shared by the workers answering its
/// requests.
struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Frames and writes one response; write errors mean the peer went
    /// away, which is its right. The socket is non-blocking (the write
    /// half shares the read half's file description, so it cannot be
    /// anything else — see [`register`]), so a full send buffer surfaces
    /// as `WouldBlock` and is retried after a short nap rather than
    /// spinning.
    fn send(&self, resp: &Response) {
        let frame = protocol::encode_frame(&resp.render_json());
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let mut sent = 0;
        while sent < frame.len() {
            match writer.write(&frame[sent..]) {
                Ok(0) => return,
                Ok(n) => sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

struct NetJob {
    conn: Arc<Conn>,
    payload: Vec<u8>,
}

/// A running TCP front-end over a [`SessionManager`]. Shuts down on
/// drop; see the [module docs](self) for the serving model.
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    admission: Arc<AdmissionQueue<NetJob>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TcpFront {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `manager`.
    pub fn start(
        manager: Arc<SessionManager>,
        addr: &str,
        opts: TcpFrontOptions,
    ) -> std::io::Result<TcpFront> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let admission = Arc::new(AdmissionQueue::new(
            opts.queue_depth,
            manager.obs().clone(),
        ));
        let workers = (0..opts.workers.max(1))
            .map(|i| {
                let admission = Arc::clone(&admission);
                let manager = Arc::clone(&manager);
                std::thread::Builder::new()
                    .name(format!("clogic-net-{i}"))
                    .spawn(move || worker_loop(&admission, &manager))
                    .expect("spawn net worker")
            })
            .collect();
        let accept = {
            let stop = Arc::clone(&stop);
            let admission = Arc::clone(&admission);
            std::thread::Builder::new()
                .name("clogic-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &stop, &admission))
                .expect("spawn accept loop")
        };
        Ok(TcpFront {
            addr,
            stop,
            admission,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, sheds queued requests, and joins the threads.
    /// Also runs on drop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        for job in self.admission.close() {
            job.conn.send(&Response::Error {
                message: "server shutting down".to_string(),
            });
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// One open connection in the accept loop.
struct Reading {
    stream: TcpStream,
    conn: Arc<Conn>,
    buf: Vec<u8>,
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    admission: &Arc<AdmissionQueue<NetJob>>,
) {
    let mut conns: Vec<Reading> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let mut active = false;
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Ok(conn) = register(&stream) {
                    conns.push(Reading {
                        stream,
                        conn,
                        buf: Vec::new(),
                    });
                    active = true;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(_) => {}
        }
        conns.retain_mut(|c| pump(c, admission, &mut active));
        if !active {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Puts the connection in non-blocking mode and clones a write half for
/// the workers. The clone duplicates the fd onto the *same* open file
/// description, so `O_NONBLOCK` is shared: the write half is necessarily
/// non-blocking too, which [`Conn::send`] handles with a retry loop.
/// (Setting the clone back to blocking would silently make the read half
/// blocking as well and wedge the accept loop on the first idle
/// connection.)
fn register(stream: &TcpStream) -> std::io::Result<Arc<Conn>> {
    stream.set_nonblocking(true)?;
    let writer = stream.try_clone()?;
    Ok(Arc::new(Conn {
        writer: Mutex::new(writer),
    }))
}

/// Reads whatever is available and admits every complete frame; false
/// drops the connection.
fn pump(c: &mut Reading, admission: &Arc<AdmissionQueue<NetJob>>, active: &mut bool) -> bool {
    let mut chunk = [0u8; 4096];
    loop {
        match c.stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => {
                c.buf.extend_from_slice(&chunk[..n]);
                *active = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    loop {
        match protocol::decode_frame(&mut c.buf) {
            Ok(Some(payload)) => {
                *active = true;
                match admission.push(NetJob {
                    conn: Arc::clone(&c.conn),
                    payload,
                }) {
                    Ok(()) => {}
                    Err(AdmitError::Full(d)) => c.conn.send(&Response::Error {
                        message: format!("request shed: {d}"),
                    }),
                    Err(AdmitError::Closed) => return false,
                }
            }
            Ok(None) => return true,
            Err(message) => {
                c.conn.send(&Response::Error { message });
                return false;
            }
        }
    }
}

fn worker_loop(admission: &AdmissionQueue<NetJob>, manager: &SessionManager) {
    while let Some(job) = admission.pop() {
        let resp = handle(manager, &job.payload);
        job.conn.send(&resp);
    }
}

fn handle(manager: &SessionManager, payload: &[u8]) -> Response {
    let req = match Request::parse(payload) {
        Ok(req) => req,
        Err(message) => return Response::Error { message },
    };
    match req.op {
        RequestOp::Load { src } => match manager.load(&req.tenant, &src) {
            Ok(report) => Response::Loaded {
                epoch: report.epoch,
                persisted: report.persisted(),
                breaker_open: report.breaker_open,
            },
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        },
        RequestOp::Query {
            src,
            strategy,
            deadline_ms,
        } => {
            let mut extra = Budget::unlimited();
            if let Some(ms) = deadline_ms {
                extra.deadline = Some(Duration::from_millis(ms));
            }
            match manager.query_with_budget(&req.tenant, &src, strategy, &extra) {
                Ok(answers) => Response::from_answers(&answers),
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            }
        }
        RequestOp::Status => Response::Status {
            tenants: manager.tenants(),
        },
    }
}

/// A minimal blocking client for the wire protocol — what the tests,
/// benches and README examples speak through.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects to a [`TcpFront`].
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
            buf: Vec::new(),
        })
    }

    /// Sends one request and blocks for its response. Note responses on
    /// a connection pipelining multiple outstanding requests may arrive
    /// out of order; this simple client sends one at a time.
    pub fn request(&mut self, req: &Request) -> Result<Json, String> {
        let frame = protocol::encode_frame(&req.render_json());
        self.stream
            .write_all(&frame)
            .map_err(|e| format!("write: {e}"))?;
        loop {
            if let Some(payload) =
                protocol::decode_frame(&mut self.buf).map_err(|e| format!("frame: {e}"))?
            {
                let text =
                    std::str::from_utf8(&payload).map_err(|e| format!("invalid UTF-8: {e}"))?;
                return protocol::parse_json(text);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err("connection closed".to_string()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("read: {e}")),
            }
        }
    }
}
