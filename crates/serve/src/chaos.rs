//! Fault injection at the wire seam.
//!
//! [`ChaosStream`] wraps a [`TcpStream`] and counts every read and write
//! call. When the count reaches a configured trigger it injects one
//! [`WireFault`] (or a burst of them) and then passes everything through
//! untouched — the same one-hiccup-then-heal model as
//! `clogic_store::ChaosStorage`, applied to the network instead of the
//! disk. Sweeping the trigger across the I/O-call count of a clean
//! exchange visits every read/write boundary of the protocol, which is
//! how `tests/net_chaos.rs` proves the front-end and the client survive
//! faults at all of them.
//!
//! [`ChaosListener`] wraps a [`TcpListener`] and hands every accepted
//! connection a [`ChaosStream`] sharing one fault schedule, for
//! server-side sweeps.
//!
//! Faults are **direction-aware**: a fault that the current call cannot
//! express (a short *write* during a *read*, say) is skipped without
//! consuming a burst slot — it lands on the next call that can express
//! it, exactly like `ChaosStorage::strike_if`.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The kind of wire fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFault {
    /// A read delivers at most one byte even when more is buffered —
    /// the fragmentation an unlucky network hands a frame reassembler.
    PartialRead,
    /// A write takes only a prefix of the buffer and reports the short
    /// count — legal per [`Write::write`], but code that assumes one
    /// call moves one frame tears its framing here.
    ShortWrite,
    /// The call stalls for the configured delay, then proceeds — a
    /// congested or rate-limited path.
    Delay,
    /// The connection is shut down both ways and the call errors with
    /// [`io::ErrorKind::ConnectionReset`] — a peer that vanished.
    Reset,
    /// The first byte of the written buffer has its top bit flipped —
    /// on a frame boundary that inflates the length prefix past the
    /// frame cap, so the receiver must refuse it as unframeable.
    Corrupt,
}

impl WireFault {
    /// All injectable faults, for sweep loops.
    pub const ALL: [WireFault; 5] = [
        WireFault::PartialRead,
        WireFault::ShortWrite,
        WireFault::Delay,
        WireFault::Reset,
        WireFault::Corrupt,
    ];

    /// Whether a read call can express this fault.
    fn on_read(self) -> bool {
        matches!(self, WireFault::PartialRead | WireFault::Delay | WireFault::Reset)
    }

    /// Whether a write call can express this fault.
    fn on_write(self) -> bool {
        !matches!(self, WireFault::PartialRead)
    }
}

/// The shared fault schedule: one counter and one burst budget, shared
/// by every stream cloned from the same origin (or accepted from the
/// same [`ChaosListener`]) so a sweep can account for faults after the
/// streams have moved into the system under test.
#[derive(Clone)]
struct Schedule {
    ops: Arc<AtomicU64>,
    fired: Arc<AtomicU64>,
    trigger: u64,
    burst: u64,
    fault: WireFault,
    delay: Duration,
}

impl Schedule {
    fn new(trigger: u64, burst: u64, fault: WireFault) -> Schedule {
        Schedule {
            ops: Arc::new(AtomicU64::new(0)),
            fired: Arc::new(AtomicU64::new(0)),
            trigger: trigger.max(1),
            burst,
            fault,
            delay: Duration::from_millis(50),
        }
    }

    /// Counts one I/O call; true when the fault fires on it. Calls that
    /// cannot express the fault are counted but spend no burst slot.
    fn strike_if(&self, can_fault: bool) -> bool {
        let n = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        let fired = self.fired.load(Ordering::Relaxed);
        if can_fault && n >= self.trigger && fired < self.burst {
            self.fired.store(fired + 1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// A [`TcpStream`] wrapper that injects a [`WireFault`] starting at the
/// `trigger`-th I/O call (1-based). A trigger of 0 never fires, which
/// turns the wrapper into a pure call counter for measuring clean
/// exchanges — the probe configuration sweeps start from.
pub struct ChaosStream {
    inner: TcpStream,
    sched: Schedule,
}

impl ChaosStream {
    /// Wraps `inner`, injecting `fault` exactly once, at I/O call number
    /// `trigger`. A trigger of 0 never fires (pure call counter).
    pub fn new(inner: TcpStream, trigger: u64, fault: WireFault) -> ChaosStream {
        ChaosStream::intermittent(inner, trigger, u64::from(trigger != 0), fault)
    }

    /// Wraps `inner`, injecting `fault` on `burst` consecutive
    /// expressible calls starting at call number `trigger`, after which
    /// the wire heals. A trigger of 0 means from the very first call;
    /// `burst == 0` never fires.
    pub fn intermittent(
        inner: TcpStream,
        trigger: u64,
        burst: u64,
        fault: WireFault,
    ) -> ChaosStream {
        ChaosStream {
            inner,
            sched: Schedule::new(trigger, burst, fault),
        }
    }

    /// Connects to `addr` and wraps the stream one-shot, a convenience
    /// for client-side sweeps.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        trigger: u64,
        fault: WireFault,
    ) -> io::Result<ChaosStream> {
        Ok(ChaosStream::new(TcpStream::connect(addr)?, trigger, fault))
    }

    /// How long a [`WireFault::Delay`] stalls (default 50 ms).
    pub fn with_delay(mut self, delay: Duration) -> ChaosStream {
        self.sched.delay = delay;
        self
    }

    /// I/O calls performed so far (including the faulted ones).
    pub fn ops(&self) -> u64 {
        self.sched.ops.load(Ordering::Relaxed)
    }

    /// A handle on the call counter that stays readable after the
    /// stream moves into the system under test.
    pub fn op_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.sched.ops)
    }

    /// Whether the fault has fired at least once.
    pub fn tripped(&self) -> bool {
        self.sched.fired.load(Ordering::Relaxed) > 0
    }

    /// Faults injected so far (≤ `burst`); stays readable after the
    /// stream moves away.
    pub fn fault_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.sched.fired)
    }

    /// True once the whole burst has been delivered and the wire is
    /// passing bytes through again.
    pub fn healed(&self) -> bool {
        self.sched.fired.load(Ordering::Relaxed) >= self.sched.burst
    }

    /// The wrapped stream, for socket options the wrapper does not
    /// mirror (timeouts, nonblocking mode).
    pub fn get_ref(&self) -> &TcpStream {
        &self.inner
    }

    fn reset(&mut self) -> io::Error {
        let _ = self.inner.shutdown(Shutdown::Both);
        io::Error::new(io::ErrorKind::ConnectionReset, "injected wire reset")
    }
}

impl Read for ChaosStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let can = self.sched.fault.on_read() && !buf.is_empty();
        if self.sched.strike_if(can) {
            match self.sched.fault {
                WireFault::PartialRead => return self.inner.read(&mut buf[..1]),
                WireFault::Delay => std::thread::sleep(self.sched.delay),
                WireFault::Reset => return Err(self.reset()),
                WireFault::ShortWrite | WireFault::Corrupt => unreachable!(),
            }
        }
        self.inner.read(buf)
    }
}

impl Write for ChaosStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let can = self.sched.fault.on_write() && !buf.is_empty();
        if self.sched.strike_if(can) {
            match self.sched.fault {
                WireFault::ShortWrite => {
                    let n = (buf.len() / 2).max(1);
                    return self.inner.write(&buf[..n]);
                }
                WireFault::Corrupt => {
                    let mut copy = buf.to_vec();
                    copy[0] ^= 0x80;
                    return self.inner.write(&copy);
                }
                WireFault::Delay => std::thread::sleep(self.sched.delay),
                WireFault::Reset => return Err(self.reset()),
                WireFault::PartialRead => unreachable!(),
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A [`TcpListener`] wrapper whose accepted connections all share one
/// fault schedule: the `trigger`-th I/O call *across every accepted
/// stream* faults, then `burst - 1` more, then the wire heals. The
/// shared counter is what lets a server-side sweep say "the third I/O
/// call the server performs, whichever connection it lands on, fails".
pub struct ChaosListener {
    inner: TcpListener,
    sched: Schedule,
}

impl ChaosListener {
    /// Binds `addr` and installs the shared schedule (see
    /// [`ChaosStream::intermittent`] for trigger/burst semantics).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        trigger: u64,
        burst: u64,
        fault: WireFault,
    ) -> io::Result<ChaosListener> {
        Ok(ChaosListener {
            inner: TcpListener::bind(addr)?,
            sched: Schedule::new(trigger, burst, fault),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts one connection, wrapped in the shared schedule.
    pub fn accept(&self) -> io::Result<(ChaosStream, SocketAddr)> {
        let (stream, peer) = self.inner.accept()?;
        Ok((
            ChaosStream {
                inner: stream,
                sched: self.sched.clone(),
            },
            peer,
        ))
    }

    /// I/O calls performed so far across every accepted stream.
    pub fn ops(&self) -> u64 {
        self.sched.ops.load(Ordering::Relaxed)
    }

    /// Faults injected so far across every accepted stream.
    pub fn fault_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.sched.fired)
    }

    /// True once the whole burst has been delivered.
    pub fn healed(&self) -> bool {
        self.sched.fired.load(Ordering::Relaxed) >= self.sched.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A connected loopback pair: (chaos-wrapped side, plain peer).
    fn pair(trigger: u64, burst: u64, fault: WireFault) -> (ChaosStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (side, _) = listener.accept().unwrap();
        (ChaosStream::intermittent(side, trigger, burst, fault), peer)
    }

    #[test]
    fn trigger_zero_only_counts() {
        let (mut chaos, mut peer) = pair(0, 0, WireFault::Reset);
        chaos.write_all(b"abc").unwrap();
        let mut buf = [0u8; 3];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(chaos.ops(), 1);
        assert!(!chaos.tripped());
    }

    #[test]
    fn partial_read_delivers_one_byte_then_heals() {
        let (mut chaos, mut peer) = pair(1, 1, WireFault::PartialRead);
        peer.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(chaos.read(&mut buf).unwrap(), 1); // fault: 1 byte
        assert_eq!(buf[0], b'h');
        assert!(chaos.healed());
        assert_eq!(chaos.read(&mut buf).unwrap(), 4); // healed: the rest
        assert_eq!(&buf[..4], b"ello");
    }

    #[test]
    fn short_write_moves_a_prefix_and_reports_it() {
        let (mut chaos, mut peer) = pair(1, 1, WireFault::ShortWrite);
        let n = chaos.write(b"abcdef").unwrap();
        assert_eq!(n, 3, "half the buffer");
        chaos.write_all(b"xyz").unwrap(); // healed
        let mut buf = [0u8; 6];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcxyz");
    }

    #[test]
    fn corrupt_flips_the_top_bit_of_the_first_byte() {
        let (mut chaos, mut peer) = pair(1, 1, WireFault::Corrupt);
        assert_eq!(chaos.write(b"\x00\x01").unwrap(), 2);
        let mut buf = [0u8; 2];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"\x80\x01");
    }

    #[test]
    fn reset_shuts_the_wire_down() {
        let (mut chaos, mut peer) = pair(1, 1, WireFault::Reset);
        let err = chaos.write(b"abc").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // The peer sees EOF (or a reset) — the wire is really gone.
        let mut buf = [0u8; 4];
        assert!(matches!(peer.read(&mut buf), Ok(0) | Err(_)));
    }

    #[test]
    fn read_cannot_express_a_short_write_so_the_fault_waits() {
        let (mut chaos, mut peer) = pair(1, 1, WireFault::ShortWrite);
        peer.write_all(b"ab").unwrap();
        let mut buf = [0u8; 2];
        chaos.read_exact(&mut buf).unwrap(); // counted, no slot spent
        assert!(!chaos.tripped());
        assert_eq!(chaos.write(b"abcd").unwrap(), 2); // fault lands here
        assert!(chaos.tripped());
    }

    #[test]
    fn listener_shares_one_schedule_across_connections() {
        let listener = ChaosListener::bind("127.0.0.1:0", 2, 1, WireFault::Reset).unwrap();
        let addr = listener.local_addr().unwrap();
        let _c1 = TcpStream::connect(addr).unwrap();
        let _c2 = TcpStream::connect(addr).unwrap();
        let (mut s1, _) = listener.accept().unwrap();
        let (mut s2, _) = listener.accept().unwrap();
        s1.write_all(b"a").unwrap(); // op 1: clean
        let err = s2.write(b"b").unwrap_err(); // op 2: fault, on the *other* stream
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(listener.healed());
        assert_eq!(listener.ops(), 2);
        s1.write_all(b"c").unwrap(); // healed
    }

    #[test]
    fn delay_stalls_then_delivers() {
        let (chaos, mut peer) = pair(1, 1, WireFault::Delay);
        let mut chaos = chaos.with_delay(Duration::from_millis(5));
        let start = std::time::Instant::now();
        chaos.write_all(b"abc").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        let mut buf = [0u8; 3];
        peer.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
    }
}
