//! The bounded admission queue shared by every serving front-end.
//!
//! Extracted from [`Server`](crate::Server) so the TCP front-end
//! ([`net`](crate::net)) feeds the *same* mechanism instead of growing a
//! second, subtly different overload policy: one bounded queue, one shed
//! vocabulary ([`Degradation`] with trip kind [`TripKind::Shed`]), one
//! set of metrics (`serve.submitted`, `serve.shed`, `serve.queue_depth`).

use clogic_obs::Obs;
use folog::{Degradation, TripKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a job was refused admission.
#[derive(Debug)]
pub enum AdmitError {
    /// The queue has been closed (server shutting down).
    Closed,
    /// The queue was full; the [`Degradation`] carries the occupancy
    /// observed at refusal.
    Full(Degradation),
}

/// A bounded MPMC job queue with shed-on-full admission control.
///
/// Producers [`push`](AdmissionQueue::push); worker threads
/// [`pop`](AdmissionQueue::pop) (blocking) until
/// [`close`](AdmissionQueue::close) is called, after which `pop` drains
/// what remains and then returns `None`. Occupancy is mirrored into the
/// `serve.queue_depth` gauge, accepted jobs bump `serve.submitted`, and
/// refusals bump `serve.shed`.
pub struct AdmissionQueue<J> {
    queue: Mutex<VecDeque<J>>,
    available: Condvar,
    open: AtomicBool,
    depth: usize,
    obs: Obs,
}

impl<J> AdmissionQueue<J> {
    /// An open queue admitting at most `depth` waiting jobs (min 1).
    pub fn new(depth: usize, obs: Obs) -> AdmissionQueue<J> {
        AdmissionQueue {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            open: AtomicBool::new(true),
            depth: depth.max(1),
            obs,
        }
    }

    /// Whether the queue still accepts jobs.
    pub fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    /// The shed error for refusing at `occupancy`, counted in
    /// `serve.shed`. Public so fronts can shed for reasons of their own
    /// (shutdown drains) with the same vocabulary.
    pub fn shed(&self, occupancy: usize, detail: String) -> Degradation {
        self.obs.metrics.counter("serve.shed").inc();
        Degradation {
            trip: TripKind::Shed,
            strategy: "serve",
            elapsed: Duration::ZERO,
            work: occupancy as u64,
            detail,
        }
    }

    /// Admits `job`, or refuses with [`AdmitError::Closed`] /
    /// [`AdmitError::Full`].
    pub fn push(&self, job: J) -> Result<(), AdmitError> {
        if !self.is_open() {
            return Err(AdmitError::Closed);
        }
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= self.depth {
            let occupancy = queue.len();
            drop(queue);
            return Err(AdmitError::Full(self.shed(
                occupancy,
                format!(
                    "admission queue full: {occupancy} waiting, capacity {}",
                    self.depth
                ),
            )));
        }
        queue.push_back(job);
        self.obs.metrics.counter("serve.submitted").inc();
        self.obs.metrics.gauge("serve.queue_depth").inc();
        drop(queue);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed and
    /// empty.
    pub fn pop(&self) -> Option<J> {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = queue.pop_front() {
                self.obs.metrics.gauge("serve.queue_depth").dec();
                return Some(job);
            }
            if !self.is_open() {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admission and wakes every blocked `pop`; returns the jobs
    /// still waiting so the caller can shed them individually.
    pub fn close(&self) -> Vec<J> {
        self.open.store(false, Ordering::Release);
        let drained: Vec<J> = {
            let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.drain(..).collect()
        };
        for _ in &drained {
            self.obs.metrics.gauge("serve.queue_depth").dec();
        }
        self.available.notify_all();
        drained
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_depth_then_sheds() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(2, Obs::new());
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(AdmitError::Full(d)) => {
                assert_eq!(d.trip, TripKind::Shed);
                assert_eq!(d.work, 2);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_and_unblocks() {
        let q: AdmissionQueue<u32> = AdmissionQueue::new(4, Obs::new());
        q.push(1).unwrap();
        q.push(2).unwrap();
        let drained = q.close();
        assert_eq!(drained, vec![1, 2]);
        assert!(matches!(q.push(3), Err(AdmitError::Closed)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn metrics_track_occupancy() {
        let obs = Obs::new();
        let q: AdmissionQueue<u32> = AdmissionQueue::new(1, obs.clone());
        q.push(1).unwrap();
        let _ = q.push(2);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("serve.submitted"), Some(1));
        assert_eq!(snap.counter("serve.shed"), Some(1));
        assert_eq!(snap.gauge("serve.queue_depth"), Some(1));
        q.pop();
        assert_eq!(obs.metrics.snapshot().gauge("serve.queue_depth"), Some(0));
    }
}
