//! The wire protocol of the multi-tenant front-end: length-prefixed
//! JSON frames.
//!
//! **Framing.** Each message is one JSON object preceded by its byte
//! length as a 4-byte big-endian integer:
//!
//! ```text
//! ┌──────────────┬─────────────────────────┐
//! │ len: u32 BE  │ payload: len JSON bytes │
//! └──────────────┴─────────────────────────┘
//! ```
//!
//! Length-prefixing (rather than newline-delimiting) keeps the reader a
//! dumb byte accumulator: no escaping concerns, partial frames are
//! detected by arithmetic, and an oversized length ([`MAX_FRAME`]) is
//! refused before any allocation.
//!
//! **Requests** name a tenant and an operation:
//!
//! ```json
//! {"tenant": "alice", "op": "load",  "src": "person: alice."}
//! {"tenant": "alice", "op": "query", "src": "person: X",
//!  "strategy": "sld", "deadline_ms": 250}
//! {"tenant": "alice", "op": "status"}
//! ```
//!
//! **Responses** mirror [`crate::LoadReport`] / [`clogic::Answers`] /
//! the tenant listing, always carrying an `"ok"` flag; see [`Response`].
//!
//! The crate renders JSON with [`clogic_obs::Json`] and parses it with
//! the small recursive-descent [`parse_json`] here — the obs crate is
//! deliberately render-only, and this stays dependency-free.

use crate::manager::TenantStatus;
use clogic::{Answers, Strategy};
use clogic_obs::Json;

/// Upper bound on a single frame's payload (16 MiB). A length prefix
/// beyond this is a protocol error, not an allocation request.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Prepends the 4-byte big-endian length prefix to `payload`'s bytes.
pub fn encode_frame(payload: &Json) -> Vec<u8> {
    let body = payload.to_string().into_bytes();
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// Strips one complete frame off the front of `buf`, returning its
/// payload. `Ok(None)` means more bytes are needed; `Err` means the
/// stream is unframeable (oversized length) and the connection should
/// drop.
pub fn decode_frame(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, String> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds the {MAX_FRAME} limit"));
    }
    let total = 4 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = buf[4..total].to_vec();
    buf.drain(..total);
    Ok(Some(payload))
}

/// The operation a [`Request`] asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestOp {
    /// Load program text into the tenant.
    Load {
        /// C-logic source to load.
        src: String,
    },
    /// Retract previously loaded clauses from the tenant.
    Retract {
        /// C-logic source naming the clauses to retract (post-
        /// skolemization text, as the program renders them).
        src: String,
    },
    /// Evaluate a query against the tenant.
    Query {
        /// The query source.
        src: String,
        /// Evaluation strategy.
        strategy: Strategy,
        /// Optional deadline covering queue wait plus evaluation.
        deadline_ms: Option<u64>,
    },
    /// Report the tenant's status (and the whole tenant listing).
    Status,
    /// Probe the serving process itself: open connections, queue depth,
    /// resident sessions, drain state. Server-scoped — the `tenant`
    /// field is optional and ignored.
    Health,
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// The tenant the operation targets.
    pub tenant: String,
    /// What to do.
    pub op: RequestOp,
}

impl Request {
    /// Parses a request from a frame payload.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("invalid UTF-8: {e}"))?;
        let json = parse_json(text)?;
        let op_name = get_str(&json, "op")?;
        // `health` is server-scoped: the tenant field is optional (and
        // ignored). Every other op addresses a tenant.
        let tenant = match (get(&json, "tenant"), op_name) {
            (Some(Json::Str(s)), _) => s.clone(),
            (Some(other), _) => {
                return Err(format!("field \"tenant\" must be a string, got {other}"))
            }
            (None, "health") => String::new(),
            (None, _) => return Err("missing field \"tenant\"".to_string()),
        };
        let op = match op_name {
            "load" => RequestOp::Load {
                src: get_str(&json, "src")?.to_string(),
            },
            "retract" => RequestOp::Retract {
                src: get_str(&json, "src")?.to_string(),
            },
            "query" => RequestOp::Query {
                src: get_str(&json, "src")?.to_string(),
                strategy: match get(&json, "strategy") {
                    Some(Json::Str(s)) => parse_strategy(s)
                        .ok_or_else(|| format!("unknown strategy {s:?}"))?,
                    Some(other) => return Err(format!("strategy must be a string, got {other}")),
                    None => Strategy::Sld,
                },
                deadline_ms: match get(&json, "deadline_ms") {
                    Some(Json::U64(ms)) => Some(*ms),
                    Some(other) => {
                        return Err(format!("deadline_ms must be an integer, got {other}"))
                    }
                    None => None,
                },
            },
            "status" => RequestOp::Status,
            "health" => RequestOp::Health,
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok(Request { tenant, op })
    }

    /// Renders the request as a frame payload (client side).
    pub fn render_json(&self) -> Json {
        let mut fields = Vec::new();
        if !self.tenant.is_empty() || !matches!(self.op, RequestOp::Health) {
            fields.push(("tenant".to_string(), Json::Str(self.tenant.clone())));
        }
        match &self.op {
            RequestOp::Load { src } => {
                fields.push(("op".into(), Json::Str("load".into())));
                fields.push(("src".into(), Json::Str(src.clone())));
            }
            RequestOp::Retract { src } => {
                fields.push(("op".into(), Json::Str("retract".into())));
                fields.push(("src".into(), Json::Str(src.clone())));
            }
            RequestOp::Query {
                src,
                strategy,
                deadline_ms,
            } => {
                fields.push(("op".into(), Json::Str("query".into())));
                fields.push(("src".into(), Json::Str(src.clone())));
                fields.push((
                    "strategy".into(),
                    Json::Str(strategy_name(*strategy).into()),
                ));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".into(), Json::U64(*ms)));
                }
            }
            RequestOp::Status => fields.push(("op".into(), Json::Str("status".into()))),
            RequestOp::Health => fields.push(("op".into(), Json::Str("health".into()))),
        }
        Json::Object(fields)
    }
}

/// One response frame, rendered with [`Response::render_json`].
#[derive(Clone, Debug)]
pub enum Response {
    /// Query answers.
    Answers {
        /// One object per answer row: variable → rendered ground term.
        rows: Vec<Vec<(String, String)>>,
        /// Whether the strategy explored its whole search space.
        complete: bool,
        /// Why evaluation stopped early, when `complete` is false.
        degradation: Option<String>,
    },
    /// A load landed (possibly read-only — check `persisted`).
    Loaded {
        /// Tenant epoch after the load.
        epoch: u64,
        /// Whether the load reached stable storage.
        persisted: bool,
        /// Whether the tenant's persistence breaker is open.
        breaker_open: bool,
    },
    /// The tenant listing.
    Status {
        /// One row per known tenant.
        tenants: Vec<TenantStatus>,
    },
    /// The serving process's own vitals (the `health` op).
    Health {
        /// Connections currently registered with the accept loop.
        open_connections: u64,
        /// Requests waiting in the admission queue.
        queued: u64,
        /// Sessions resident in memory.
        resident: u64,
        /// Whether the front is draining toward shutdown.
        draining: bool,
    },
    /// The request failed; the connection survives.
    Error {
        /// What went wrong.
        message: String,
    },
}

impl Response {
    /// Builds the answers response from an evaluation result.
    pub fn from_answers(a: &Answers) -> Response {
        Response::Answers {
            rows: a
                .rows
                .iter()
                .map(|row| {
                    row.bindings
                        .iter()
                        .map(|(var, term)| (var.to_string(), term.to_string()))
                        .collect()
                })
                .collect(),
            complete: a.complete,
            degradation: a.degradation.as_ref().map(|d| d.to_string()),
        }
    }

    /// Renders the response for framing.
    pub fn render_json(&self) -> Json {
        match self {
            Response::Answers {
                rows,
                complete,
                degradation,
            } => Json::Object(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "rows".into(),
                    Json::Array(
                        rows.iter()
                            .map(|row| {
                                Json::Object(
                                    row.iter()
                                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
                ("complete".into(), Json::Bool(*complete)),
                (
                    "degradation".into(),
                    match degradation {
                        Some(d) => Json::Str(d.clone()),
                        None => Json::Null,
                    },
                ),
            ]),
            Response::Loaded {
                epoch,
                persisted,
                breaker_open,
            } => Json::Object(vec![
                ("ok".into(), Json::Bool(true)),
                ("epoch".into(), Json::U64(*epoch)),
                ("persisted".into(), Json::Bool(*persisted)),
                ("breaker_open".into(), Json::Bool(*breaker_open)),
            ]),
            Response::Status { tenants } => Json::Object(vec![
                ("ok".into(), Json::Bool(true)),
                (
                    "tenants".into(),
                    Json::Array(
                        tenants
                            .iter()
                            .map(|t| {
                                Json::Object(vec![
                                    ("name".into(), Json::Str(t.name.clone())),
                                    ("state".into(), Json::Str(t.state.to_string())),
                                    (
                                        "epoch".into(),
                                        t.epoch.map(Json::U64).unwrap_or(Json::Null),
                                    ),
                                    (
                                        "breaker_open".into(),
                                        t.breaker_open.map(Json::Bool).unwrap_or(Json::Null),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Health {
                open_connections,
                queued,
                resident,
                draining,
            } => Json::Object(vec![
                ("ok".into(), Json::Bool(true)),
                ("open_connections".into(), Json::U64(*open_connections)),
                ("queued".into(), Json::U64(*queued)),
                ("resident".into(), Json::U64(*resident)),
                ("draining".into(), Json::Bool(*draining)),
            ]),
            Response::Error { message } => Json::Object(vec![
                ("ok".into(), Json::Bool(false)),
                ("error".into(), Json::Str(message.clone())),
            ]),
        }
    }
}

/// The wire name of a strategy (lowercase, as the REPL spells them).
pub fn strategy_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Direct => "direct",
        Strategy::Sld => "sld",
        Strategy::BottomUpNaive => "naive",
        Strategy::BottomUpSemiNaive => "seminaive",
        Strategy::Tabled => "tabled",
        Strategy::Magic => "magic",
    }
}

/// Parses a wire strategy name (the same vocabulary as the REPL).
pub fn parse_strategy(name: &str) -> Option<Strategy> {
    match name.trim().to_ascii_lowercase().as_str() {
        "direct" => Some(Strategy::Direct),
        "sld" => Some(Strategy::Sld),
        "naive" => Some(Strategy::BottomUpNaive),
        "seminaive" | "semi-naive" => Some(Strategy::BottomUpSemiNaive),
        "tabled" | "tabling" => Some(Strategy::Tabled),
        "magic" => Some(Strategy::Magic),
        _ => None,
    }
}

/// Looks up `key` in a JSON object.
pub fn get<'a>(json: &'a Json, key: &str) -> Option<&'a Json> {
    match json {
        Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn get_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    match get(json, key) {
        Some(Json::Str(s)) => Ok(s),
        Some(other) => Err(format!("field {key:?} must be a string, got {other}")),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Parses a JSON document into a [`Json`] value — the counterpart of
/// [`Json`]'s renderer, kept here because `clogic-obs` is deliberately
/// render-only. Accepts exactly one value plus surrounding whitespace.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at offset {pos}, found {:?}",
            b as char,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected {:?} at offset {pos}", *c as char)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            expect(bytes, pos, b'\\')?;
                            expect(bytes, pos, b'u')?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("invalid escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 character (the input is a &str, so
                // boundaries are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("valid UTF-8"));
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let hex = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| "invalid \\u escape")?;
    let v = u32::from_str_radix(hex, 16).map_err(|_| format!("invalid \\u escape {hex:?}"))?;
    *pos = end;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if let Ok(u) = text.parse::<u64>() {
        return Ok(Json::U64(u));
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("invalid number {text:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_split() {
        let a = Json::Object(vec![("x".into(), Json::U64(1))]);
        let b = Json::Str("héllo \"quoted\"\n".into());
        let mut buf = encode_frame(&a);
        buf.extend_from_slice(&encode_frame(&b));
        let first = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(parse_json(std::str::from_utf8(&first).unwrap()).unwrap(), a);
        let second = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(
            parse_json(std::str::from_utf8(&second).unwrap()).unwrap(),
            b
        );
        assert!(buf.is_empty());
        assert_eq!(decode_frame(&mut buf).unwrap(), None);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let full = encode_frame(&Json::U64(42));
        for cut in 0..full.len() {
            let mut partial = full[..cut].to_vec();
            assert_eq!(decode_frame(&mut partial).unwrap(), None, "cut {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_refused() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"whatever");
        assert!(decode_frame(&mut buf).is_err());
    }

    #[test]
    fn json_parser_round_trips_the_renderer() {
        let value = Json::Object(vec![
            ("null".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            ("n".into(), Json::U64(18_446_744_073_709_551_615)),
            ("f".into(), Json::F64(1.5)),
            ("s".into(), Json::Str("tab\there \\ \"q\" ☃".into())),
            (
                "arr".into(),
                Json::Array(vec![Json::U64(1), Json::Null, Json::Str("x".into())]),
            ),
            ("empty_obj".into(), Json::Object(vec![])),
            ("empty_arr".into(), Json::Array(vec![])),
        ]);
        let parsed = parse_json(&value.to_string()).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn json_parser_handles_escapes_and_negatives() {
        let parsed = parse_json(r#"{"u": "é😀", "neg": -2.5}"#).unwrap();
        assert_eq!(get(&parsed, "u"), Some(&Json::Str("é😀".into())));
        assert_eq!(get(&parsed, "neg"), Some(&Json::F64(-2.5)));
    }

    #[test]
    fn request_round_trip() {
        for req in [
            Request {
                tenant: "alice".into(),
                op: RequestOp::Load {
                    src: "t: a.".into(),
                },
            },
            Request {
                tenant: "alice".into(),
                op: RequestOp::Retract {
                    src: "t: a.".into(),
                },
            },
            Request {
                tenant: "bob".into(),
                op: RequestOp::Query {
                    src: "t: X".into(),
                    strategy: Strategy::Magic,
                    deadline_ms: Some(250),
                },
            },
            Request {
                tenant: "c".into(),
                op: RequestOp::Status,
            },
            Request {
                tenant: String::new(),
                op: RequestOp::Health,
            },
        ] {
            let rendered = req.render_json().to_string();
            assert_eq!(Request::parse(rendered.as_bytes()).unwrap(), req);
        }
    }

    #[test]
    fn bad_requests_are_rejected_with_reasons() {
        for (payload, needle) in [
            (r#"{"op": "load", "src": "t: a."}"#, "tenant"),
            (r#"{"tenant": "a", "op": "dance"}"#, "unknown op"),
            (
                r#"{"tenant": "a", "op": "query", "src": "q", "strategy": "zen"}"#,
                "unknown strategy",
            ),
            ("not json", "invalid literal"),
        ] {
            let err = Request::parse(payload.as_bytes()).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn health_is_server_scoped_but_tolerates_a_tenant() {
        // Tenant-less health parses; a tenant-bearing one does too.
        let req = Request::parse(br#"{"op": "health"}"#).unwrap();
        assert_eq!(req.op, RequestOp::Health);
        assert_eq!(req.tenant, "");
        let req = Request::parse(br#"{"tenant": "a", "op": "health"}"#).unwrap();
        assert_eq!(req.op, RequestOp::Health);
        // Other ops still require the tenant field.
        let err = Request::parse(br#"{"op": "status"}"#).unwrap_err();
        assert!(err.contains("tenant"), "{err}");
        let rendered = Response::Health {
            open_connections: 3,
            queued: 1,
            resident: 2,
            draining: false,
        }
        .render_json();
        assert_eq!(get(&rendered, "ok"), Some(&Json::Bool(true)));
        assert_eq!(get(&rendered, "open_connections"), Some(&Json::U64(3)));
        assert_eq!(get(&rendered, "draining"), Some(&Json::Bool(false)));
    }

    #[test]
    fn all_strategies_have_wire_names() {
        for s in Strategy::ALL {
            assert_eq!(parse_strategy(strategy_name(s)), Some(s));
        }
    }
}
