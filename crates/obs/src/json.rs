//! A minimal JSON value with a stable rendering — the serialized form
//! behind [`crate::Render::render_json`]. No parser, no derive macros, no
//! external dependency: the stack's reports only ever need to *produce*
//! JSON, and the object-key order is whatever the builder chose, so the
//! output is deterministic.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (the stack's counters are all `u64`).
    U64(u64),
    /// A float, rendered with enough precision to round-trip timings.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is preserved as built.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::F64(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    write!(f, "null") // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape(s, &mut buf);
                write!(f, "\"{buf}\"")
            }
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    let mut buf = String::with_capacity(k.len());
                    escape(k, &mut buf);
                    write!(f, "\"{buf}\": {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stably() {
        let j = Json::Object(vec![
            ("b".into(), Json::U64(2)),
            ("a".into(), Json::Array(vec![Json::Bool(true), Json::Null])),
            ("s".into(), Json::str("he said \"hi\"\n")),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"b": 2, "a": [true, null], "s": "he said \"hi\"\n"}"#
        );
    }

    #[test]
    fn floats_and_control_chars() {
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::str("\u{1}").to_string(), "\"\\u0001\"");
    }
}
