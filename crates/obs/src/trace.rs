//! A span-based structured tracer.
//!
//! A [`Tracer`] is either disabled (the default — starting a span is one
//! relaxed atomic load and nothing is allocated) or enabled with a
//! [`Subscriber`] that receives [`TraceEvent`]s. Spans are RAII guards:
//! [`Tracer::span`] emits a `SpanStart` event and returns a [`Span`]
//! whose `Drop` emits the matching `SpanEnd` with the measured duration.
//! One-shot facts that aren't worth a span are emitted with
//! [`Tracer::event`].
//!
//! Three subscribers cover the stack's needs:
//!
//! * [`NullSubscriber`] — events are built and immediately dropped; used
//!   by the overhead bench to measure the cost of *instrumentation* as
//!   opposed to the cost of a sink;
//! * [`MemorySubscriber`] — a bounded ring buffer (oldest events evicted
//!   first) that [`Session::explain`](../../clogic/session/struct.Session.html)
//!   drains into the query profile;
//! * [`JsonlSubscriber`] — renders each event as one JSON line into a
//!   [`LineSink`]. `clogic-store` adapts its `Storage` trait to
//!   `LineSink`, so traces can be written through the same fault-injected
//!   I/O seam as the WAL; sink errors are counted, never propagated (a
//!   failing trace sink must not fail the traced operation).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span began.
    SpanStart,
    /// A span ended; `dur_us` is set.
    SpanEnd,
    /// A point event inside (or outside) any span.
    Instant,
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEventKind::SpanStart => write!(f, "start"),
            TraceEventKind::SpanEnd => write!(f, "end"),
            TraceEventKind::Instant => write!(f, "event"),
        }
    }
}

/// One structured trace event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global sequence number (per tracer), dense from 0.
    pub seq: u64,
    /// Span id this event belongs to (`SpanStart`/`SpanEnd`), or the
    /// enclosing span for `Instant` events (0 = no span).
    pub span: u64,
    /// The parent span id (0 = root).
    pub parent: u64,
    /// Event kind.
    pub kind: TraceEventKind,
    /// Span or event name (static, from the span taxonomy in DESIGN.md §11).
    pub name: &'static str,
    /// Microseconds since the tracer was created.
    pub at_us: u64,
    /// Span duration in microseconds (only for `SpanEnd`).
    pub dur_us: Option<u64>,
    /// Structured payload fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A trace field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

impl TraceEvent {
    /// The event as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        use crate::json::Json;
        let mut obj = vec![
            ("seq".to_string(), Json::U64(self.seq)),
            ("span".to_string(), Json::U64(self.span)),
            ("parent".to_string(), Json::U64(self.parent)),
            ("kind".to_string(), Json::str(self.kind.to_string())),
            ("name".to_string(), Json::str(self.name)),
            ("at_us".to_string(), Json::U64(self.at_us)),
        ];
        if let Some(d) = self.dur_us {
            obj.push(("dur_us".to_string(), Json::U64(d)));
        }
        if !self.fields.is_empty() {
            let fields = self
                .fields
                .iter()
                .map(|(k, v)| {
                    let jv = match v {
                        FieldValue::U64(n) => Json::U64(*n),
                        FieldValue::Str(s) => Json::str(s.clone()),
                    };
                    (k.to_string(), jv)
                })
                .collect();
            obj.push(("fields".to_string(), Json::Object(fields)));
        }
        Json::Object(obj).to_string()
    }
}

/// Receives trace events. Implementations must be cheap and must never
/// panic on the record path.
pub trait Subscriber: Send + Sync + fmt::Debug {
    /// Called once per event, in emission order per thread.
    fn on_event(&self, event: &TraceEvent);
}

/// Drops every event (but the events *are* built): measures pure
/// instrumentation overhead.
#[derive(Debug, Default)]
pub struct NullSubscriber;

impl Subscriber for NullSubscriber {
    fn on_event(&self, _event: &TraceEvent) {}
}

/// A bounded in-memory ring buffer of events.
#[derive(Debug)]
pub struct MemorySubscriber {
    buf: Mutex<MemoryBuf>,
}

#[derive(Debug)]
struct MemoryBuf {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl MemorySubscriber {
    /// A ring buffer holding up to `capacity` events; when full, the
    /// oldest event is evicted (and counted as dropped).
    pub fn new(capacity: usize) -> MemorySubscriber {
        MemorySubscriber {
            buf: Mutex::new(MemoryBuf {
                events: std::collections::VecDeque::with_capacity(capacity.min(1024)),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Removes and returns all buffered events.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut buf = self.buf.lock().expect("trace buffer poisoned");
        buf.events.drain(..).collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("trace buffer poisoned").dropped
    }
}

impl Default for MemorySubscriber {
    fn default() -> Self {
        MemorySubscriber::new(4096)
    }
}

impl Subscriber for MemorySubscriber {
    fn on_event(&self, event: &TraceEvent) {
        let mut buf = self.buf.lock().expect("trace buffer poisoned");
        if buf.events.len() >= buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(event.clone());
    }
}

/// Where [`JsonlSubscriber`] writes lines. The stack's storage layer
/// implements this over its own `Storage` trait; tests implement it over
/// a `Vec<String>`.
pub trait LineSink: Send + Sync + fmt::Debug {
    /// Appends one line (no trailing newline included). Errors are
    /// reported as a plain message; the subscriber counts them and drops
    /// the event — tracing must never fail the traced operation.
    fn write_line(&self, line: &str) -> Result<(), String>;
}

/// Renders each event as one JSON line into a [`LineSink`].
#[derive(Debug)]
pub struct JsonlSubscriber {
    sink: Box<dyn LineSink>,
    errors: AtomicU64,
    written: AtomicU64,
}

impl JsonlSubscriber {
    /// A subscriber writing into `sink`.
    pub fn new(sink: Box<dyn LineSink>) -> JsonlSubscriber {
        JsonlSubscriber {
            sink,
            errors: AtomicU64::new(0),
            written: AtomicU64::new(0),
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Events dropped because the sink errored.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl Subscriber for JsonlSubscriber {
    fn on_event(&self, event: &TraceEvent) {
        match self.sink.write_line(&event.to_json_line()) {
            Ok(()) => {
                self.written.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    subscriber: Arc<dyn Subscriber>,
    seq: AtomicU64,
    next_span: AtomicU64,
    origin: Instant,
}

/// The tracer handle. Cloning shares the sequence numbers and subscriber.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    /// `None` = disabled: spans and events cost one branch.
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A disabled tracer (the default).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer emitting into `subscriber`.
    pub fn enabled(subscriber: Arc<dyn Subscriber>) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                subscriber,
                seq: AtomicU64::new(0),
                next_span: AtomicU64::new(1),
                origin: Instant::now(),
            })),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(
        inner: &Arc<TracerInner>,
        kind: TraceEventKind,
        name: &'static str,
        span: u64,
        parent: u64,
        dur_us: Option<u64>,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let event = TraceEvent {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            span,
            parent,
            kind,
            name,
            at_us: inner.origin.elapsed().as_micros() as u64,
            dur_us,
            fields,
        };
        inner.subscriber.on_event(&event);
    }

    /// Starts a span; the returned guard emits `SpanEnd` when dropped.
    /// On a disabled tracer this is a no-op returning an inert guard.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with(name, Vec::new())
    }

    /// [`Tracer::span`] with structured start fields.
    pub fn span_with(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: None,
                id: 0,
                parent: 0,
                name,
                started: None,
                end_fields: Vec::new(),
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        Self::emit(inner, TraceEventKind::SpanStart, name, id, 0, None, fields);
        Span {
            tracer: Some(inner.clone()),
            id,
            parent: 0,
            name,
            started: Some(Instant::now()),
            end_fields: Vec::new(),
        }
    }

    /// Emits a point event.
    pub fn event(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if let Some(inner) = &self.inner {
            Self::emit(inner, TraceEventKind::Instant, name, 0, 0, None, fields);
        }
    }
}

/// An open span; emits its end event (with duration) on drop.
#[derive(Debug)]
pub struct Span {
    tracer: Option<Arc<TracerInner>>,
    id: u64,
    parent: u64,
    name: &'static str,
    started: Option<Instant>,
    end_fields: Vec<(&'static str, FieldValue)>,
}

impl Span {
    /// Attaches a field to the span's end event — the idiom for results
    /// known only when the work finishes (counts, outcomes).
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.tracer.is_some() {
            self.end_fields.push((key, value.into()));
        }
    }

    /// Starts a child span of this span.
    pub fn child(&self, name: &'static str) -> Span {
        let Some(inner) = &self.tracer else {
            return Span {
                tracer: None,
                id: 0,
                parent: 0,
                name,
                started: None,
                end_fields: Vec::new(),
            };
        };
        let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        Tracer::emit(
            inner,
            TraceEventKind::SpanStart,
            name,
            id,
            self.id,
            None,
            Vec::new(),
        );
        Span {
            tracer: Some(inner.clone()),
            id,
            parent: self.id,
            name,
            started: Some(Instant::now()),
            end_fields: Vec::new(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(inner), Some(started)) = (&self.tracer, self.started) {
            Tracer::emit(
                inner,
                TraceEventKind::SpanEnd,
                self.name,
                self.id,
                self.parent,
                Some(started.elapsed().as_micros() as u64),
                std::mem::take(&mut self.end_fields),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut s = t.span("x");
        s.record("n", 1u64);
        drop(s);
        t.event("y", vec![]);
    }

    #[test]
    fn memory_subscriber_pairs_spans() {
        let sub = Arc::new(MemorySubscriber::new(100));
        let t = Tracer::enabled(sub.clone());
        {
            let mut s = t.span("eval");
            s.record("facts", 42u64);
            let _c = s.child("stratum");
        }
        let events = sub.drain();
        assert_eq!(events.len(), 4); // eval start, stratum start/end, eval end
        assert_eq!(events[0].kind, TraceEventKind::SpanStart);
        assert_eq!(events[0].name, "eval");
        let end = events.last().unwrap();
        assert_eq!(end.kind, TraceEventKind::SpanEnd);
        assert_eq!(end.name, "eval");
        assert!(end.dur_us.is_some());
        assert_eq!(end.fields, vec![("facts", FieldValue::U64(42))]);
        // the child knows its parent
        let child_end = &events[2];
        assert_eq!(child_end.name, "stratum");
        assert_eq!(child_end.parent, events[0].span);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let sub = Arc::new(MemorySubscriber::new(2));
        let t = Tracer::enabled(sub.clone());
        t.event("a", vec![]);
        t.event("b", vec![]);
        t.event("c", vec![]);
        assert_eq!(sub.dropped(), 1);
        let names: Vec<_> = sub.drain().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[derive(Debug)]
    struct FlakySink {
        lines: Mutex<Vec<String>>,
        fail: std::sync::atomic::AtomicBool,
    }
    impl LineSink for FlakySink {
        fn write_line(&self, line: &str) -> Result<(), String> {
            if self.fail.load(Ordering::Relaxed) {
                return Err("disk on fire".into());
            }
            self.lines.lock().unwrap().push(line.to_string());
            Ok(())
        }
    }

    #[test]
    fn jsonl_subscriber_counts_errors_and_never_panics() {
        let sink = Box::new(FlakySink {
            lines: Mutex::new(Vec::new()),
            fail: std::sync::atomic::AtomicBool::new(false),
        });
        let sub = Arc::new(JsonlSubscriber::new(sink));
        let t = Tracer::enabled(sub.clone());
        t.event("ok", vec![("n", 7u64.into())]);
        assert_eq!(sub.written(), 1);
        assert_eq!(sub.errors(), 0);
    }

    #[test]
    fn json_line_shape() {
        let e = TraceEvent {
            seq: 3,
            span: 1,
            parent: 0,
            kind: TraceEventKind::SpanEnd,
            name: "eval",
            at_us: 10,
            dur_us: Some(5),
            fields: vec![("facts", FieldValue::U64(2)), ("s", "x".into())],
        };
        assert_eq!(
            e.to_json_line(),
            r#"{"seq": 3, "span": 1, "parent": 0, "kind": "end", "name": "eval", "at_us": 10, "dur_us": 5, "fields": {"facts": 2, "s": "x"}}"#
        );
    }
}
