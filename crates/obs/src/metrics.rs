//! A lock-cheap metrics registry.
//!
//! Three instrument kinds, all named by `&str` keys using the
//! `layer.noun_verb` convention documented in DESIGN.md §11:
//!
//! * [`Counter`] — monotonically increasing `u64` (events, tuples, bytes);
//! * [`Gauge`] — a point-in-time `u64` that can move both ways (sizes);
//! * [`Histogram`] — a distribution over fixed **log₂ buckets** (bucket
//!   *i* counts samples in `[2^i, 2^(i+1))`, with bucket 0 also taking 0),
//!   plus total count and sum. 64 buckets cover the whole `u64` range, so
//!   there is no configuration and no allocation on the record path.
//!
//! Looking an instrument up by name takes a mutex on the registry's name
//! map and is expected to happen once per evaluation (or once ever, if the
//! caller caches the handle); *recording* is atomic-only. Handles are
//! `Arc`s onto the shared cells, so a clone taken before a snapshot keeps
//! counting into the same instrument.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds 1 atomically — for live occupancy gauges (queue depths,
    /// in-flight counts) moved from several threads at once.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts 1 atomically, saturating at 0 (a racy double-decrement
    /// must not wrap an occupancy gauge to `u64::MAX`).
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: covers all of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A histogram over fixed log₂ buckets.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCells>);

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in: `floor(log2(v))`, with 0 → bucket 0.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn read(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// One histogram, frozen.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket *i* counts samples in `[2^i, 2^(i+1))` (0 included in 0).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An estimate of the `q`-quantile (`0.0 ..= 1.0`): the quantile
    /// sample's log₂ bucket is found by rank, then the estimate is
    /// **linearly interpolated** between the bucket's edges by the
    /// rank's position among the bucket's samples. Distinct quantiles
    /// landing in the same (wide) bucket therefore still come out
    /// distinct — p50/p95/p99 of a distribution concentrated in one
    /// multi-second bucket no longer collapse onto the bucket's upper
    /// edge. The estimate is clamped below the bucket's exclusive upper
    /// edge, so it never exceeds the true value by more than the bucket
    /// width. Returns `None` for an empty histogram.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // Rank of the quantile sample, 1-based, clamped into range.
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                // Bucket i covers [lo, hi) = [2^i, 2^(i+1)), except
                // bucket 0 which also takes 0. `hi` is computed in f64
                // so the top bucket (hi = 2^64) cannot overflow.
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (i as f64 + 1.0).exp2();
                let frac = (rank - seen) as f64 / n as f64;
                let est = (lo + frac * (hi - lo)).min(hi - 1.0);
                return Some(est.min(u64::MAX as f64) as u64);
            }
            seen += n;
        }
        None
    }
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: name → instrument. Cloning shares the underlying map, so
/// every layer holding a clone records into the same instruments.
///
/// A registry handle can carry a **namespace prefix**
/// ([`Registry::namespaced`]): every instrument it registers has the
/// prefix prepended to its name, while still landing in the shared map.
/// This is how a multi-tenant layer gives each tenant its own
/// `tenant.<name>.…` metric family without threading tenant names through
/// every engine — the engines keep using their fixed names, the handle
/// does the qualification.
#[derive(Clone, Default)]
pub struct Registry {
    names: Arc<Mutex<BTreeMap<String, Instrument>>>,
    /// Prepended to every instrument name this handle registers. Empty on
    /// a root handle; composes across nested [`Registry::namespaced`]
    /// calls.
    prefix: String,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.names.lock().map(|m| m.len()).unwrap_or(0);
        if self.prefix.is_empty() {
            write!(f, "Registry({n} instruments)")
        } else {
            write!(f, "Registry({n} instruments, prefix `{}`)", self.prefix)
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A handle onto the **same** underlying map whose instrument names
    /// are all prefixed with `prefix` (pass it with its trailing
    /// separator, e.g. `"tenant.alice."`). Prefixes compose: namespacing
    /// an already-namespaced handle appends.
    pub fn namespaced(&self, prefix: &str) -> Registry {
        Registry {
            names: Arc::clone(&self.names),
            prefix: format!("{}{prefix}", self.prefix),
        }
    }

    /// The namespace prefix of this handle (empty for a root handle).
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The instrument name `name` resolves to under this handle's prefix.
    fn qualify(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// The counter named `name`, creating it on first use. Panics if the
    /// name is already registered as a different instrument kind — a
    /// naming bug worth failing loudly on.
    pub fn counter(&self, name: &str) -> Counter {
        let mut names = self.names.lock().expect("metrics registry poisoned");
        match names
            .entry(self.qualify(name))
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut names = self.names.lock().expect("metrics registry poisoned");
        match names
            .entry(self.qualify(name))
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut names = self.names.lock().expect("metrics registry poisoned");
        match names
            .entry(self.qualify(name))
            .or_insert_with(|| Instrument::Histogram(Histogram::default()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A consistent-enough snapshot of every instrument (each cell is read
    /// atomically; across cells the snapshot is only as consistent as
    /// relaxed ordering allows — fine for reporting).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let names = self.names.lock().expect("metrics registry poisoned");
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut histograms = BTreeMap::new();
        for (name, inst) in names.iter() {
            match inst {
                Instrument::Counter(c) => {
                    counters.insert(name.clone(), c.get());
                }
                Instrument::Gauge(g) => {
                    gauges.insert(name.clone(), g.get());
                }
                Instrument::Histogram(h) => {
                    histograms.insert(name.clone(), h.read());
                }
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// All instruments, frozen, sorted by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// A gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// A histogram's `(count, sum)`, if registered.
    pub fn histogram(&self, name: &str) -> Option<(u64, u64)> {
        self.histograms.get(name).map(|h| (h.count, h.sum))
    }
}

impl crate::Render for MetricsSnapshot {
    fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} = {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} = {v} (gauge)\n"));
        }
        for (name, h) in &self.histograms {
            let mean = if h.count == 0 {
                0.0
            } else {
                h.sum as f64 / h.count as f64
            };
            out.push_str(&format!(
                "{name} = {{count: {}, sum: {}, mean: {mean:.1}}}\n",
                h.count, h.sum
            ));
        }
        out
    }

    fn render_json(&self) -> crate::Json {
        use crate::Json;
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::U64(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::U64(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let nonzero: Vec<Json> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| {
                        Json::Object(vec![
                            ("bucket".into(), Json::U64(i as u64)),
                            ("count".into(), Json::U64(c)),
                        ])
                    })
                    .collect();
                (
                    k.clone(),
                    Json::Object(vec![
                        ("count".into(), Json::U64(h.count)),
                        ("sum".into(), Json::U64(h.sum)),
                        ("buckets".into(), Json::Array(nonzero)),
                    ]),
                )
            })
            .collect();
        Json::Object(vec![
            ("counters".into(), Json::Object(counters)),
            ("gauges".into(), Json::Object(gauges)),
            ("histograms".into(), Json::Object(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Render;

    #[test]
    fn counters_accumulate_across_clones() {
        let r = Registry::new();
        let c = r.counter("x.events");
        c.inc();
        r.counter("x.events").add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.snapshot().counter("x.events"), Some(5));
    }

    #[test]
    fn gauges_move_both_ways() {
        let r = Registry::new();
        let g = r.gauge("x.size");
        g.set(10);
        g.set(3);
        assert_eq!(r.snapshot().gauge("x.size"), Some(3));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        let r = Registry::new();
        let h = r.histogram("x.delta");
        for v in [0, 1, 2, 5, 1000] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms["x.delta"];
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1008);
        assert_eq!(hs.buckets[0], 2); // 0 and 1
        assert_eq!(hs.buckets[1], 1); // 2
        assert_eq!(hs.buckets[2], 1); // 5
        assert_eq!(hs.buckets[9], 1); // 1000
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn percentiles_walk_log2_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat.us");
        assert_eq!(h.read().percentile(0.5), None, "empty histogram");
        // 90 samples at 3µs (bucket 1: [2,4)), 10 at 1000µs (bucket 9:
        // [512,1024)).
        for _ in 0..90 {
            h.observe(3);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        let snap = h.read();
        // p50 and p90 land in the 3µs bucket [2, 4): interpolated by
        // rank within the bucket, clamped below the exclusive edge.
        assert_eq!(snap.percentile(0.5), Some(3));
        assert_eq!(snap.percentile(0.9), Some(3));
        // p95 and p99 land in the 1000µs bucket [512, 1024) at ranks 5
        // and 9 of its 10 samples: distinct interpolated estimates, not
        // a shared upper edge.
        assert_eq!(snap.percentile(0.95), Some(768));
        assert_eq!(snap.percentile(0.99), Some(972));
        // Quantile 0 is the minimum's bucket; 1.0 clamps to the
        // maximum bucket's exclusive edge.
        assert_eq!(snap.percentile(0.0), Some(2));
        assert_eq!(snap.percentile(1.0), Some(1023));
    }

    #[test]
    fn percentiles_interpolate_within_one_wide_bucket() {
        // The BENCH_serve degeneracy: every sample in one wide bucket
        // (~28s queue waits all in [2^24, 2^25) µs) used to report
        // p50 = p95 = p99 = 33554431. Interpolation keeps them apart.
        let r = Registry::new();
        let h = r.histogram("wait.us");
        for _ in 0..100 {
            h.observe(28_000_000);
        }
        let snap = h.read();
        let (p50, p95, p99) = (
            snap.percentile(0.50).unwrap(),
            snap.percentile(0.95).unwrap(),
            snap.percentile(0.99).unwrap(),
        );
        assert!(p50 < p95 && p95 < p99, "{p50} {p95} {p99}");
        let (lo, hi) = (1u64 << 24, 1u64 << 25);
        for p in [p50, p95, p99] {
            assert!(p >= lo && p < hi, "{p} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn percentiles_are_sane_at_both_bucket_extremes() {
        // Bottom bucket: 0 and 1 both land in bucket 0, whose edges are
        // [0, 2); estimates stay inside it.
        let r = Registry::new();
        let h = r.histogram("lo");
        h.observe(0);
        h.observe(1);
        let snap = h.read();
        assert_eq!(snap.percentile(0.0), Some(1));
        assert!(snap.percentile(1.0).unwrap() < 2);

        // Top bucket: u64::MAX lands in bucket 63 ([2^63, 2^64));
        // interpolation must neither overflow nor exceed u64::MAX.
        let h = r.histogram("hi");
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        let snap = h.read();
        for q in [0.0, 0.5, 1.0] {
            let p = snap.percentile(q).unwrap();
            assert!(p >= 1u64 << 63, "q={q}: {p}");
        }
    }

    #[test]
    fn snapshot_renders_both_forms() {
        let r = Registry::new();
        r.counter("a.n").add(2);
        r.histogram("b.h").observe(7);
        let snap = r.snapshot();
        let text = snap.render_text();
        assert!(text.contains("a.n = 2"));
        assert!(text.contains("b.h"));
        let json = snap.render_json().to_string();
        assert!(json.contains("\"a.n\": 2"), "{json}");
    }
}
