//! The shared rendering contract for structured reports.
//!
//! Every user-facing report in the stack — `Degradation` (folog),
//! `RecoveryReport` (clogic-store), `QueryProfile` and the metrics
//! snapshot (clogic) — implements [`Render`] once, and both the human
//! text and the machine-readable JSON are derived from the same struct
//! fields in the same method pair. The REPL prints `render_text()`, tests
//! and tooling consume `render_json()`; neither can drift from the other
//! without the compiler noticing the type changed.

use crate::json::Json;

/// A report with both a human text form and a stable JSON form.
pub trait Render {
    /// The human-readable rendering (possibly multi-line, `\n`-separated).
    fn render_text(&self) -> String;

    /// The stable machine-readable rendering. Field names are part of the
    /// report's public contract; adding fields is fine, renaming is a
    /// breaking change.
    fn render_json(&self) -> Json;

    /// `render_json()` serialized to a string — what `:metrics --json`
    /// style consumers read.
    fn render_json_string(&self) -> String {
        self.render_json().to_string()
    }
}
