//! Observability substrate for the clogic stack.
//!
//! This crate sits at the very bottom of the dependency graph (it depends
//! on nothing, not even the other clogic crates) and provides three small
//! pieces every layer above instruments itself with:
//!
//! * [`metrics`] — a lock-cheap metrics [`Registry`]: monotonic
//!   [`Counter`]s, point-in-time [`Gauge`]s and log₂-bucketed
//!   [`Histogram`]s, all backed by atomics so recording a value is a
//!   handful of instructions and never blocks. Registration (name →
//!   instrument) takes a mutex; the hot path does not.
//! * [`trace`] — a span-based structured [`Tracer`] with pluggable
//!   [`Subscriber`]s: [`NullSubscriber`] (enabled but dropping events, for
//!   overhead measurement), [`MemorySubscriber`] (bounded ring buffer, the
//!   default sink behind `Session::explain`), and [`JsonlSubscriber`]
//!   (newline-delimited JSON over any [`LineSink`] — `clogic-store`
//!   adapts its `Storage` trait to it, keeping this crate
//!   dependency-free).
//! * [`render`] — the shared [`Render`] trait: one implementation per
//!   report type produces *both* the human text and the stable JSON form,
//!   so the REPL, tests and any machine consumer can never drift apart.
//!
//! The conventions (span taxonomy, metric names and units) are documented
//! in `DESIGN.md` §11.
//!
//! ```
//! use clogic_obs::Obs;
//!
//! let obs = Obs::default();                    // metrics on, tracing off
//! obs.metrics.counter("demo.queries").inc();
//! assert_eq!(obs.metrics.snapshot().counter("demo.queries"), Some(1));
//! ```
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod render;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use render::Render;
pub use trace::{
    JsonlSubscriber, LineSink, MemorySubscriber, NullSubscriber, Span, Subscriber, TraceEvent,
    TraceEventKind, Tracer,
};

/// The handle threaded through the stack: a [`Tracer`] plus a metrics
/// [`Registry`]. Cloning is cheap (two `Arc` bumps) — every engine's
/// options struct carries one by value.
///
/// The default is the *quiet* configuration: metrics recording works (the
/// registry is always live; its cost is a few atomic adds per evaluation,
/// paid only at counter-flush points), tracing is disabled (span creation
/// is a single relaxed load and no event is built).
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Structured tracer; disabled by default.
    pub tracer: Tracer,
    /// Metrics registry; always live.
    pub metrics: Registry,
}

impl Obs {
    /// A quiet handle: live metrics, disabled tracer.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// A handle tracing into `subscriber`.
    pub fn with_subscriber(subscriber: std::sync::Arc<dyn Subscriber>) -> Obs {
        Obs {
            tracer: Tracer::enabled(subscriber),
            metrics: Registry::new(),
        }
    }

    /// A handle sharing this one's tracer and metrics map, but recording
    /// every metric under `prefix` (see [`Registry::namespaced`]). The
    /// multi-tenant serving layer hands each tenant's session an
    /// `obs.namespaced("tenant.<name>.")` handle, so one snapshot of the
    /// root registry shows every tenant's counters side by side.
    pub fn namespaced(&self, prefix: &str) -> Obs {
        Obs {
            tracer: self.tracer.clone(),
            metrics: self.metrics.namespaced(prefix),
        }
    }
}
